"""The Vector microbenchmark: pure bulk OR operations (paper Table 1).

A spec like ``19-16-7s`` runs 2^16 vectors of 2^19 bits through
2^7-operand OR operations (2^9 ops to cover all vectors), sequentially
allocated.  The trace is what Figs. 10-11's Vector columns price; the
functional runner executes a scaled-down instance on a real runtime.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.spec import VectorSpec
from repro.workloads.trace import OpTrace

#: scalar overhead per bulk call (driver entry, loop bookkeeping)
_OPS_PER_CALL = 50.0


def vector_trace(spec) -> OpTrace:
    """Op trace of one Vector benchmark instance."""
    if isinstance(spec, str):
        spec = VectorSpec.parse(spec)
    trace = OpTrace(name=f"vector-{spec.label}")
    trace.bitwise(
        "or",
        max(2, spec.operands_per_op),
        spec.vector_bits,
        access=spec.access,
        count=spec.n_ops,
    )
    trace.cpu(spec.n_ops * _OPS_PER_CALL, label="driver-calls")
    return trace


def vector_run_pim(runtime, spec, seed: int = 0):
    """Execute a (small) Vector instance end-to-end on a PIM runtime.

    Returns (results, oracle) where results[i] is the bits read back from
    op i's destination and oracle[i] the numpy expectation.
    """
    if isinstance(spec, str):
        spec = VectorSpec.parse(spec)
    rng = np.random.default_rng(seed)
    n_bits = spec.vector_bits
    results, oracles = [], []
    for op_index in range(spec.n_ops):
        group = f"vec-{spec.label}-{op_index}"
        operands = []
        data = []
        for _ in range(max(2, spec.operands_per_op)):
            h = runtime.pim_malloc(n_bits, group)
            bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
            runtime.pim_write(h, bits)
            operands.append(h)
            data.append(bits)
        dest = runtime.pim_malloc(n_bits, group)
        runtime.pim_op("or", dest, operands)
        results.append(runtime.pim_read(dest))
        oracles.append(np.bitwise_or.reduce(data))
        for h in operands:
            runtime.pim_free(h)
        runtime.pim_free(dest)
    return results, oracles
