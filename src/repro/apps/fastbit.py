"""FastBit-style bitmap-index database (the paper's Database application).

FastBit (Wu, 2005) answers range queries over scientific data with
equality-encoded bitmap indexes: one bitmap per bin per column, where
bit ``e`` of bin ``b`` says event ``e`` falls in bin ``b``.  A range
predicate is an OR over the covered bins' bitmaps (wide fan-in -> the
multi-row operation), predicates on different columns combine with AND,
and the result cardinality is a popcount.

Two modes, as with BFS: trace mode for evaluation scale, and a functional
mode over real numpy bitmaps (with an optional PIM runtime executing the
bitwise plan end-to-end) for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.star import StarTable
from repro.workloads.trace import OpTrace

#: scalar cost constants
_OPS_PER_RESULT_WORD = 2.0  # popcount + accumulate per 64-bit word
_OPS_PER_QUERY_PLAN = 400.0  # parse + plan + bin lookup per predicate
_OPS_PER_HIT = 20.0  # materialise one matching event (candidate check,
# row fetch, aggregation) -- FastBit's dominant scalar cost


@dataclass(frozen=True)
class RangeQuery:
    """Conjunction of per-column bin ranges: {col: (lo_bin, hi_bin)}."""

    predicates: tuple  # ((name, lo, hi), ...)

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a query needs at least one predicate")
        for name, lo, hi in self.predicates:
            if lo > hi:
                raise ValueError(f"empty range on {name}: [{lo}, {hi}]")

    @property
    def n_predicates(self) -> int:
        return len(self.predicates)


class BitmapIndex:
    """Equality-encoded bitmap index over one binned column."""

    def __init__(self, bin_indices: np.ndarray, n_bins: int):
        bin_indices = np.asarray(bin_indices)
        if bin_indices.ndim != 1:
            raise ValueError("bin indices must be 1-D")
        if bin_indices.size and int(bin_indices.max()) >= n_bins:
            raise ValueError("bin index out of range")
        self.n_bins = n_bins
        self.n_events = bin_indices.size
        self._bitmaps = np.zeros((n_bins, self.n_events), dtype=np.uint8)
        self._bitmaps[bin_indices, np.arange(self.n_events)] = 1

    def bitmap(self, bin_index: int) -> np.ndarray:
        if not 0 <= bin_index < self.n_bins:
            raise IndexError("bin out of range")
        return self._bitmaps[bin_index]

    def range_or(self, lo: int, hi: int) -> np.ndarray:
        """OR of bins [lo, hi] (the range predicate's bitmap)."""
        if not 0 <= lo <= hi < self.n_bins:
            raise IndexError("bad bin range")
        return np.bitwise_or.reduce(self._bitmaps[lo : hi + 1], axis=0)


class FastBitDB:
    """Bitmap-indexed table with range-query evaluation."""

    def __init__(self, table: StarTable, functional: bool = True):
        self.table = table
        self.functional = functional
        self.indexes = {}
        if functional:
            for spec in table.columns:
                self.indexes[spec.name] = BitmapIndex(
                    table.bin_indices(spec.name), spec.n_bins
                )

    # -- query evaluation ------------------------------------------------------

    def query_oracle(self, query: RangeQuery) -> int:
        """Reference evaluation straight off the binned columns."""
        mask = np.ones(self.table.n_events, dtype=bool)
        for name, lo, hi in query.predicates:
            bins = self.table.bin_indices(name)
            mask &= (bins >= lo) & (bins <= hi)
        return int(mask.sum())

    def query_bitmap(self, query: RangeQuery, trace: OpTrace = None) -> int:
        """Evaluate via the bitmap index; optionally record the op trace."""
        if not self.functional:
            raise RuntimeError("index built in trace-only mode")
        n = self.table.n_events
        result = None
        for name, lo, hi in query.predicates:
            predicate_bitmap = self.indexes[name].range_or(lo, hi)
            if trace is not None:
                trace.bitwise("or", max(2, hi - lo + 1), n)
            if result is None:
                result = predicate_bitmap
            else:
                result = result & predicate_bitmap
                if trace is not None:
                    trace.bitwise("and", 2, n)
        hits = int(result.sum())
        if trace is not None:
            trace.cpu(
                query.n_predicates * _OPS_PER_QUERY_PLAN
                + (n / 64.0) * _OPS_PER_RESULT_WORD
                + hits * _OPS_PER_HIT,
                label="count+materialise",
            )
        return hits

    def query_trace_only(self, query: RangeQuery, trace: OpTrace) -> None:
        """Record the op trace of one query without building bitmaps.

        Bitwise events are identical to the functional path; the hit
        count (for the materialisation cost) comes straight off the
        binned columns, which is exact and cheap.
        """
        n = self.table.n_events
        first = True
        for name, lo, hi in query.predicates:
            trace.bitwise("or", max(2, hi - lo + 1), n)
            if not first:
                trace.bitwise("and", 2, n)
            first = False
        hits = self.query_oracle(query)
        trace.cpu(
            query.n_predicates * _OPS_PER_QUERY_PLAN
            + (n / 64.0) * _OPS_PER_RESULT_WORD
            + hits * _OPS_PER_HIT,
            label="count+materialise",
        )

    # -- workload generation -------------------------------------------------------

    def random_queries(self, n_queries: int, seed: int = 7) -> list:
        """STAR-style selection workload: 1-3 predicates per query, range
        widths skewed wide (physicists cut loosely then refine)."""
        if n_queries < 1:
            raise ValueError("n_queries must be positive")
        rng = np.random.default_rng(seed)
        columns = list(self.table.columns)
        queries = []
        max_preds = min(3, len(columns))
        for _ in range(n_queries):
            n_preds = int(rng.integers(1, max_preds + 1))
            chosen = rng.choice(len(columns), size=n_preds, replace=False)
            predicates = []
            for ci in chosen:
                spec = columns[int(ci)]
                width = max(1, int(rng.integers(1, max(2, spec.n_bins // 2))))
                lo = int(rng.integers(0, spec.n_bins - width + 1))
                predicates.append((spec.name, lo, lo + width - 1))
            queries.append(RangeQuery(tuple(predicates)))
        return queries

    def run_workload(self, n_queries: int, seed: int = 7) -> OpTrace:
        """Trace of an n-query workload (the paper's 240/480/720)."""
        trace = OpTrace(name=f"fastbit-{n_queries}")
        for query in self.random_queries(n_queries, seed):
            if self.functional:
                self.query_bitmap(query, trace)
            else:
                self.query_trace_only(query, trace)
        return trace
