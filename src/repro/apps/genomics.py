"""Bit-matrix population genomics on bulk bitwise operations.

The paper's introduction cites bioinformatics as a bitwise-hungry domain
(its [21]): genotype panels are naturally bit-matrices.  We store one
*variant bitmap* per genetic variant -- bit ``s`` says sample ``s``
carries that variant -- and cohort queries become bulk bitwise work:

- *carriers of any of a variant set* (gene burden screen):
  multi-row OR over the set's bitmaps -- one Pinatubo activation;
- *carriers of all of a variant set* (haplotype match): AND chain;
- *case/control discordance*: XOR against a phenotype bitmap;
- counting carriers: popcount of the result.

Synthetic panels follow a neutral-ish site-frequency spectrum (allele
frequency ~ 1/f), so most variants are rare and their bitmaps sparse --
the same shape real panels have.

Trace mode scales to biobank-sized panels; the functional mode executes
every query in PIM memory and checks against numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import OpTrace

#: scalar cost constants
_OPS_PER_CARRIER = 6.0  # materialise one matching sample id
_OPS_PER_QUERY_PLAN = 300.0  # variant lookup, annotation join
_OPS_PER_RESULT_WORD = 2.0  # popcount per 64-bit word


@dataclass
class GenotypePanel:
    """Binary genotype matrix: variants x samples (carrier bitmaps)."""

    bitmaps: np.ndarray  # uint8, shape (n_variants, n_samples)

    def __post_init__(self) -> None:
        self.bitmaps = np.asarray(self.bitmaps, dtype=np.uint8)
        if self.bitmaps.ndim != 2:
            raise ValueError("genotype panel must be 2-D")

    @property
    def n_variants(self) -> int:
        return int(self.bitmaps.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.bitmaps.shape[1])

    def variant(self, v: int) -> np.ndarray:
        return self.bitmaps[v]

    def allele_frequency(self, v: int) -> float:
        return float(self.bitmaps[v].mean())


def synthetic_panel(
    n_variants: int = 256, n_samples: int = 4096, seed: int = 0
) -> GenotypePanel:
    """Panel with a 1/f site-frequency spectrum (most variants rare)."""
    if n_variants < 1 or n_samples < 1:
        raise ValueError("panel dimensions must be positive")
    rng = np.random.default_rng(seed)
    # allele frequencies ~ bounded Pareto-ish: f = f_min^(u)
    u = rng.random(n_variants)
    freqs = 0.5 ** (1.0 + 8.0 * u)  # in (0.002, 0.5]
    bitmaps = (rng.random((n_variants, n_samples)) < freqs[:, None]).astype(
        np.uint8
    )
    return GenotypePanel(bitmaps)


# ---------------------------------------------------------------------------
# queries (numpy oracle + trace)
# ---------------------------------------------------------------------------


def burden_oracle(panel: GenotypePanel, variant_set) -> np.ndarray:
    """Samples carrying ANY variant in the set."""
    variant_set = list(variant_set)
    if not variant_set:
        raise ValueError("empty variant set")
    return np.bitwise_or.reduce(panel.bitmaps[variant_set], axis=0)

def haplotype_oracle(panel: GenotypePanel, variant_set) -> np.ndarray:
    """Samples carrying ALL variants in the set."""
    variant_set = list(variant_set)
    if not variant_set:
        raise ValueError("empty variant set")
    return np.bitwise_and.reduce(panel.bitmaps[variant_set], axis=0)


def burden_trace(
    panel: GenotypePanel, gene_sets, trace: OpTrace = None
) -> OpTrace:
    """Op trace of a burden screen over many gene variant-sets."""
    trace = trace or OpTrace(name="genomics-burden")
    n = panel.n_samples
    for variant_set in gene_sets:
        size = len(list(variant_set))
        if size < 1:
            raise ValueError("empty variant set")
        trace.bitwise("or", max(2, size), n)
        carriers = int(burden_oracle(panel, variant_set).sum())
        trace.cpu(
            _OPS_PER_QUERY_PLAN
            + (n / 64.0) * _OPS_PER_RESULT_WORD
            + carriers * _OPS_PER_CARRIER,
            label="carrier-materialise",
        )
    return trace


def random_gene_sets(panel: GenotypePanel, n_sets: int, seed: int = 0) -> list:
    """Gene-like variant groupings: 4..40 variants per set."""
    if n_sets < 1:
        raise ValueError("n_sets must be positive")
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n_sets):
        size = int(rng.integers(4, min(41, panel.n_variants + 1)))
        sets.append(sorted(rng.choice(panel.n_variants, size, replace=False)))
    return sets


# ---------------------------------------------------------------------------
# functional PIM execution
# ---------------------------------------------------------------------------


class PimGenotypePanel:
    """A genotype panel resident in Pinatubo memory."""

    def __init__(self, runtime, panel: GenotypePanel, group: str = "geno"):
        self.runtime = runtime
        self.panel = panel
        self.group = group
        self.variant_handles = []
        for v in range(panel.n_variants):
            handle = runtime.pim_malloc(panel.n_samples, group)
            runtime.pim_write(handle, panel.variant(v))
            self.variant_handles.append(handle)

    def _scratch(self):
        return self.runtime.pim_malloc(self.panel.n_samples, self.group)

    def burden(self, variant_set) -> np.ndarray:
        """Carriers of ANY variant: one multi-row OR, result to host."""
        handles = [self.variant_handles[v] for v in variant_set]
        if len(handles) < 1:
            raise ValueError("empty variant set")
        if len(handles) == 1:
            return self.runtime.pim_read(handles[0])
        return self.runtime.pim_op_to_host("or", self._scratch(), handles)

    def haplotype(self, variant_set) -> np.ndarray:
        """Carriers of ALL variants: AND chain, final result to host."""
        handles = [self.variant_handles[v] for v in variant_set]
        if len(handles) < 1:
            raise ValueError("empty variant set")
        if len(handles) == 1:
            return self.runtime.pim_read(handles[0])
        return self.runtime.pim_op_to_host("and", self._scratch(), handles)

    def discordance(self, variant: int, phenotype_handle) -> np.ndarray:
        """Samples where carrier status differs from phenotype (XOR)."""
        return self.runtime.pim_op_to_host(
            "xor", self._scratch(),
            [self.variant_handles[variant], phenotype_handle],
        )

    def carrier_count(self, variant_set) -> int:
        return int(self.burden(variant_set).sum())
