"""Bitmap-based breadth-first search (the paper's Graph application).

Every vertex's adjacency row lives as an n-bit bitmap in memory.  When
the frontier is wide enough, one BFS level is bulk bitwise work:

    reach   = OR(adjacency[v] for v in frontier)   # multi-row OR
    next    = reach AND (NOT visited)              # INV + AND
    visited = visited OR next

-- the frontier OR is exactly where Pinatubo's one-step multi-row
operation pays (a 128-vertex frontier is a single PCM activation).  When
the frontier is narrow (the direction-optimising hybrid of the paper's
[5]), the level runs scalar: bitmap ops on an n-bit vector are not worth
their fixed cost for a 2-vertex frontier.

The scalar work between levels -- enumerating set bits into the next
frontier, translating vertices to row addresses for the driver, and (on
loose graphs) *searching for an unvisited bit-vector* to restart from --
is what bounds the overall speedup (paper Fig. 12: dblp profits most,
eswiki/amazon are dominated by the searching).

Two execution modes:

- :func:`bitmap_bfs_trace`: exact level structure (python sets) plus the
  recorded op trace with calibrated scalar work; scales to the full
  synthetic datasets and feeds Figs. 10-12;
- :func:`bitmap_bfs_pim`: the same algorithm end-to-end on a
  :class:`~repro.runtime.api.PimRuntime` with real in-memory bitmaps
  (ground truth for tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.apps.graphs import Graph
from repro.workloads.trace import OpTrace

#: frontier width at which the bitmap (bulk bitwise) path engages
BITMAP_THRESHOLD = 8

#: frontier width above which the bitmap path stops paying: OR-ing f
#: adjacency rows touches f*n bits, so once the frontier has exploded a
#: bottom-up scalar sweep over the unvisited vertices (~m edge checks)
#: is cheaper -- the direction-optimising switch of the paper's [5]
BITMAP_MAX_FRONTIER = 4096

#: scalar-work constants (simple ops per unit, Sniper-calibrated scale)
_OPS_PER_FRONTIER_VERTEX = 600.0  # bit-scan, vertex->row PA translate,
# driver call marshalling -- the per-operand software cost of issuing one
# adjacency row to the PIM operation
_OPS_PER_EDGE_SCALAR = 5.0  # scalar edge probe (top-down walk and
# bottom-up neighbour checks are tight bit-test loops)
_OPS_PER_WORD_SCAN = 2.0  # scanning one 64-bit result word
_OPS_PER_RESTART_WORD = 6.0  # hunting for an unvisited vertex
_OPS_PER_LEVEL_SETUP = 200.0


@dataclass
class BfsResult:
    """Outcome of one bitmap BFS run."""

    levels: list  # frontier sizes per level (across restarts)
    visited_count: int
    restarts: int
    trace: OpTrace
    bitmap_levels: int = 0  # levels that took the bulk bitwise path
    edges_examined: int = 0

    @property
    def n_levels(self) -> int:
        return len(self.levels)


def bfs_reference(graph: Graph, source: int = 0) -> set:
    """Plain queue BFS from one source (oracle for the bitmap variants)."""
    visited = {source}
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.adjacency[u]:
                if v not in visited:
                    visited.add(v)
                    nxt.append(v)
        frontier = nxt
    return visited


def bitmap_bfs_trace(
    graph: Graph,
    source: int = 0,
    restart: bool = True,
    bitmap_threshold: int = BITMAP_THRESHOLD,
    bitmap_max_frontier: int = BITMAP_MAX_FRONTIER,
) -> BfsResult:
    """Exact level structure + op trace for the hybrid bitmap BFS."""
    n = graph.n
    if not 0 <= source < n:
        raise ValueError("source out of range")
    if bitmap_threshold < 2:
        raise ValueError("bitmap_threshold must be >= 2")
    if bitmap_max_frontier < bitmap_threshold:
        raise ValueError("bitmap_max_frontier must be >= bitmap_threshold")
    trace = OpTrace(name=f"bfs-{graph.name}")
    words = max(1, n // 64)

    visited = set()
    levels = []
    restarts = 0
    bitmap_levels = 0
    edges_examined = 0
    seed = source
    scan_cursor = 0
    pending_cpu_ops = 0.0  # coalesced scalar work, flushed per component

    def flush_cpu(label: str) -> None:
        nonlocal pending_cpu_ops
        if pending_cpu_ops > 0:
            trace.cpu(pending_cpu_ops, label=label)
            pending_cpu_ops = 0.0

    while True:
        visited.add(seed)
        frontier = [seed]
        while frontier:
            levels.append(len(frontier))
            level_edges = sum(len(graph.adjacency[u]) for u in frontier)
            edges_examined += level_edges
            if bitmap_threshold <= len(frontier) <= bitmap_max_frontier:
                # bulk path: multi-row OR over the frontier's adjacency
                # rows, then filter against visited and mark
                bitmap_levels += 1
                trace.bitwise("or", len(frontier), n)
                trace.bitwise("inv", 1, n)
                trace.bitwise("and", 2, n)
                trace.bitwise("or", 2, n)
                pending_cpu_ops += (
                    _OPS_PER_LEVEL_SETUP
                    + len(frontier) * _OPS_PER_FRONTIER_VERTEX
                    + words * _OPS_PER_WORD_SCAN
                )
            elif len(frontier) < bitmap_threshold:
                # narrow frontier: plain scalar edge walk, no bitmaps
                pending_cpu_ops += (
                    _OPS_PER_LEVEL_SETUP + level_edges * _OPS_PER_EDGE_SCALAR
                )
            else:
                # exploded frontier: bottom-up scalar sweep over the
                # unvisited vertices (checking neighbours against the
                # frontier bitmap) beats touching f x n bitmap bits
                unvisited = n - len(visited)
                probe_edges = unvisited * max(1.0, graph.avg_degree / 2.0)
                pending_cpu_ops += (
                    _OPS_PER_LEVEL_SETUP + probe_edges * _OPS_PER_EDGE_SCALAR
                )
            nxt = set()
            for u in frontier:
                for v in graph.adjacency[u]:
                    if v not in visited:
                        nxt.add(v)
            visited.update(nxt)
            frontier = sorted(nxt)
        flush_cpu("component-levels")
        if not restart or len(visited) >= n:
            break
        # hunt for the next unvisited vertex ("searching for an unvisited
        # bit-vector", the loose-graph tax).  The reference implementation
        # rescans the visited bitmap from the start on every restart,
        # which is why the searching dominates on fragmented graphs.
        while scan_cursor < n and scan_cursor in visited:
            scan_cursor += 1
        scanned_words = max(1, scan_cursor // 64 + 1)
        pending_cpu_ops += scanned_words * 64 * _OPS_PER_RESTART_WORD
        if scan_cursor >= n:
            flush_cpu("restart-scan")
            break
        seed = scan_cursor
        restarts += 1
    flush_cpu("restart-scan")
    return BfsResult(
        levels=levels,
        visited_count=len(visited),
        restarts=restarts,
        trace=trace,
        bitmap_levels=bitmap_levels,
        edges_examined=edges_examined,
    )


def bitmap_bfs_pim(
    runtime,
    graph: Graph,
    source: int = 0,
    bitmap_threshold: int = 2,
) -> BfsResult:
    """End-to-end bitmap BFS on a real PIM runtime.

    Adjacency rows and all working bitmaps live in PIM memory; every
    wide-frontier level's reach/filter/mark step executes through
    ``pim_op`` (the reach as one multi-row OR over the adjacency rows).
    Narrow frontiers run the same scalar path as the trace mode.
    """
    n = graph.n
    if n > runtime.system.row_bits:
        raise ValueError(
            "functional mode keeps one bitmap per row frame; "
            f"graph n={n} exceeds row_bits={runtime.system.row_bits}"
        )
    group = f"bfs-{graph.name}"
    adjacency = []
    for v in range(n):
        h = runtime.pim_malloc(n, group)
        runtime.pim_write(h, graph.adjacency_bitmap(v))
        adjacency.append(h)
    visited_h = runtime.pim_malloc(n, group)
    reach_h = runtime.pim_malloc(n, group)
    not_visited_h = runtime.pim_malloc(n, group)
    next_h = runtime.pim_malloc(n, group)
    zeros_h = runtime.pim_malloc(n, group)  # identity row for 1-wide ORs

    visited_bits = np.zeros(n, dtype=np.uint8)
    visited_bits[source] = 1
    runtime.pim_write(visited_h, visited_bits)

    levels = []
    bitmap_levels = 0
    edges_examined = 0
    frontier = [source]
    trace = OpTrace(name=f"bfs-pim-{graph.name}")
    with telemetry.span("app.bfs.run", graph=graph.name, n=n) as run_sp:
        while frontier:
            levels.append(len(frontier))
            edges_examined += sum(len(graph.adjacency[u]) for u in frontier)
            with telemetry.span("app.bfs.level", frontier=len(frontier)):
                if len(frontier) >= bitmap_threshold:
                    bitmap_levels += 1
                    operands = [adjacency[v] for v in frontier]
                    if len(operands) == 1:
                        operands = operands + [zeros_h]
                    # one level = one command batch: reach/filter/mark issued
                    # together, dependences preserved by the driver's scheduler
                    runtime.pim_op_many(
                        [
                            ("or", reach_h, operands),
                            ("inv", not_visited_h, [visited_h]),
                            ("and", next_h, [reach_h, not_visited_h]),
                            ("or", visited_h, [visited_h, next_h]),
                        ]
                    )
                    trace.bitwise("or", len(operands), n)
                    next_bits = runtime.pim_read(next_h)
                    frontier = np.nonzero(next_bits)[0].tolist()
                else:
                    nxt = set()
                    visited_host = runtime.pim_read(visited_h)
                    for u in frontier:
                        for v in graph.adjacency[u]:
                            if not visited_host[v]:
                                nxt.add(v)
                    frontier = sorted(nxt)
                    for v in frontier:
                        visited_host[v] = 1
                    runtime.pim_write(visited_h, visited_host)
        run_sp.add(levels=len(levels), bitmap_levels=bitmap_levels)
    visited_final = runtime.pim_read(visited_h)
    return BfsResult(
        levels=levels,
        visited_count=int(visited_final.sum()),
        restarts=0,
        trace=trace,
        bitmap_levels=bitmap_levels,
        edges_examined=edges_examined,
    )
