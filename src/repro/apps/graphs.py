"""Graph container and the synthetic stand-ins for the paper's datasets.

The paper's graph inputs (from the LAW webgraph collection) are not
redistributable offline, so we generate synthetic graphs matching the
structural property that drives the paper's result -- how BFS frontiers
evolve:

- **dblp-2010** (co-authorship, ~326 K nodes, avg deg ~5): one giant
  well-connected community; frontiers explode within a few hops, so most
  levels offer wide multi-row OR fan-in and the bitwise share of runtime
  is high (the paper's best case, 1.37x overall).
- **eswiki-2013** (Spanish Wikipedia links): "loose" -- a large fraction
  of vertices are in tiny components or unreachable, so BFS keeps
  *searching for an unvisited bit-vector* (scalar scan work), which caps
  the overall speedup.
- **amazon-2008** (co-purchase): connected but high-diameter with narrow
  frontiers; bitwise ops are small-fan-in, benefit is modest.

Generators are deterministic under a seed and scale-parameterised; the
default sizes are ~1/20 of the originals (traces scale linearly, so the
*fractions* that matter are preserved).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Graph:
    """Undirected graph as adjacency lists."""

    name: str
    adjacency: list  # list[list[int]]

    def __post_init__(self) -> None:
        n = len(self.adjacency)
        for u, neighbors in enumerate(self.adjacency):
            for v in neighbors:
                if not 0 <= v < n:
                    raise ValueError(f"edge endpoint {v} out of range")

    @property
    def n(self) -> int:
        return len(self.adjacency)

    @property
    def m(self) -> int:
        """Undirected edge count."""
        return sum(len(a) for a in self.adjacency) // 2

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    def adjacency_bitmap(self, v: int) -> np.ndarray:
        """Vertex v's adjacency row as a dense bit array (n bits)."""
        row = np.zeros(self.n, dtype=np.uint8)
        row[self.adjacency[v]] = 1
        return row


def _from_edges(name: str, n: int, edges) -> Graph:
    adjacency = [[] for _ in range(n)]
    seen = set()
    for u, v in edges:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
    return Graph(name=name, adjacency=adjacency)


def _watts_strogatz_edges(n: int, k: int, p: float, rng: np.random.Generator):
    """Ring-of-k-neighbours with random rewiring (small-world)."""
    edges = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < p:
                v = int(rng.integers(0, n))
                while v == u:
                    v = int(rng.integers(0, n))
            edges.append((u, v))
    return edges


def _preferential_edges(n: int, m_per_node: int, rng: np.random.Generator):
    """Barabasi-Albert style scale-free attachment."""
    repeated = list(range(m_per_node))
    edges = []
    for u in range(m_per_node, n):
        chosen = set()
        while len(chosen) < m_per_node:
            chosen.add(int(repeated[int(rng.integers(0, len(repeated)))]))
        for v in chosen:
            edges.append((u, v))
            repeated.extend([u, v])
    return edges


def dblp_like(n: int = 16384, seed: int = 1) -> Graph:
    """Dense-community co-authorship stand-in: giant small-world core."""
    rng = np.random.default_rng(seed)
    edges = _watts_strogatz_edges(n, k=8, p=0.15, rng=rng)
    # add community hubs (papers with many co-authors)
    for _ in range(n // 50):
        hub = int(rng.integers(0, n))
        members = rng.integers(0, n, size=12)
        edges.extend((hub, int(v)) for v in members)
    return _from_edges("dblp", n, edges)


def eswiki_like(n: int = 32768, seed: int = 2) -> Graph:
    """Loose link-graph stand-in: small core + a sea of tiny components."""
    rng = np.random.default_rng(seed)
    core = int(n * 0.30)
    edges = _preferential_edges(core, m_per_node=4, rng=rng)
    # remaining 70%: tiny components (pairs/triples) and isolated vertices
    v = core
    while v < n - 3:
        size = int(rng.integers(1, 4))
        for i in range(size - 1):
            edges.append((v + i, v + i + 1))
        v += size + int(rng.integers(0, 2))  # occasional isolated gap
    return _from_edges("eswiki", n, edges)


def amazon_like(n: int = 24576, seed: int = 3) -> Graph:
    """Co-purchase stand-in: loose product clusters.

    Directed co-purchase semantics leave BFS with many moderate
    components (product families), so runs keep restarting and scanning
    for unvisited vertices -- the paper's "loose connection" behaviour.
    """
    rng = np.random.default_rng(seed)
    edges = []
    v = 0
    while v < n:
        size = int(rng.integers(20, 120))
        size = min(size, n - v)
        if size >= 2:
            # chain-like cluster ("customers also bought" paths) with a
            # few shortcuts: frontiers stay narrow inside each cluster
            for i in range(size - 1):
                edges.append((v + i, v + i + 1))
            for _ in range(size // 10):
                a = v + int(rng.integers(0, size))
                b = v + int(rng.integers(0, size))
                if a != b:
                    edges.append((a, b))
        v += size + int(rng.integers(0, 2))  # occasional isolated product
    return _from_edges("amazon", n, edges)


#: name -> generator, for harness iteration (paper Table 1 order).
PAPER_GRAPHS = {
    "dblp": dblp_like,
    "eswiki": eswiki_like,
    "amazon": amazon_like,
}
