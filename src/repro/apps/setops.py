"""Set-algebra expressions compiled onto bulk bitwise operations.

The programmer-facing query layer: named bit-sets combine with a small
expression language --

    "dogs & (tabby | calico) & ~adopted"

parsed into an AST and evaluated either on numpy (oracle) or on a
:class:`~repro.runtime.api.PimRuntime`.  The compiler knows the one
optimisation that matters on Pinatubo: an OR chain of any width
flattens into a *single multi-row operation* rather than a tree of
2-row steps, so ``a | b | c | ... | z`` costs one activation.

Grammar (standard precedence: ``~`` > ``&`` > ``^`` > ``|``)::

    expr    := xor ( "|" xor )*
    xor     := term ( "^" term )*
    term    := factor ( "&" factor )*
    factor  := "~" factor | "(" expr ")" | NAME
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

_TOKEN_RE = re.compile(r"\s*(?:(?P<name>[A-Za-z_]\w*)|(?P<op>[&|^~()]))")


class SetExpressionError(ValueError):
    """Malformed set expression."""


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Not:
    operand: object


@dataclass(frozen=True)
class BinOp:
    op: str  # "&", "|", "^"
    operands: tuple  # flattened n-ary for associative ops

    def __post_init__(self) -> None:
        if self.op not in ("&", "|", "^"):
            raise SetExpressionError(f"unknown operator {self.op!r}")
        if len(self.operands) < 2:
            raise SetExpressionError("binary op needs at least two operands")


def tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SetExpressionError(
                f"unexpected character {remainder[0]!r} at position {pos}"
            )
        pos = match.end()
        tokens.append(match.group("name") or match.group("op"))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self):
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, token):
        got = self.take()
        if got != token:
            raise SetExpressionError(f"expected {token!r}, got {got!r}")

    def parse(self):
        node = self.expr()
        if self.peek() is not None:
            raise SetExpressionError(f"trailing input at {self.peek()!r}")
        return node

    def _chain(self, sub, op):
        operands = [sub()]
        while self.peek() == op:
            self.take()
            operands.append(sub())
        if len(operands) == 1:
            return operands[0]
        # flatten nested same-op chains: (a|b)|c -> or(a, b, c).
        # All three operators are associative, so this is semantics-
        # preserving; for OR it is also the multi-row win.
        flat = []
        for operand in operands:
            if isinstance(operand, BinOp) and operand.op == op:
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        return BinOp(op, tuple(flat))

    def expr(self):
        return self._chain(self.xor, "|")

    def xor(self):
        return self._chain(self.term, "^")

    def term(self):
        return self._chain(self.factor, "&")

    def factor(self):
        token = self.peek()
        if token == "~":
            self.take()
            return Not(self.factor())
        if token == "(":
            self.take()
            node = self.expr()
            self.expect(")")
            return node
        if token is None or token in ("&", "|", "^", ")"):
            raise SetExpressionError(f"expected a set name, got {token!r}")
        return Var(self.take())


def parse_expression(text: str):
    """Parse a set expression into its AST."""
    tokens = tokenize(text)
    if not tokens:
        raise SetExpressionError("empty expression")
    return _Parser(tokens).parse()


def unparse(node) -> str:
    """Render an AST back to canonical text (reparses to an equal AST)."""
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Not):
        inner = unparse(node.operand)
        if isinstance(node.operand, (Not, Var)):
            return f"~{inner}"
        return f"~({inner})"
    parts = []
    for operand in node.operands:
        text = unparse(operand)
        if isinstance(operand, BinOp) and operand.op != node.op:
            text = f"({text})"
        parts.append(text)
    return f" {node.op} ".join(parts)


def expression_names(node) -> set:
    """Every set name referenced by an expression."""
    if isinstance(node, Var):
        return {node.name}
    if isinstance(node, Not):
        return expression_names(node.operand)
    out = set()
    for operand in node.operands:
        out |= expression_names(operand)
    return out


# -- evaluation ---------------------------------------------------------------


def evaluate_numpy(node, sets: dict) -> np.ndarray:
    """Oracle evaluation over {name: 0/1 array}."""
    if isinstance(node, Var):
        try:
            return np.asarray(sets[node.name], dtype=np.uint8)
        except KeyError:
            raise SetExpressionError(f"unknown set {node.name!r}") from None
    if isinstance(node, Not):
        return (1 - evaluate_numpy(node.operand, sets)).astype(np.uint8)
    ufunc = {
        "&": np.bitwise_and,
        "|": np.bitwise_or,
        "^": np.bitwise_xor,
    }[node.op]
    out = evaluate_numpy(node.operands[0], sets)
    for operand in node.operands[1:]:
        out = ufunc(out, evaluate_numpy(operand, sets))
    return out


class PimSetAlgebra:
    """Named bit-sets resident in PIM memory, queried by expression."""

    def __init__(self, runtime, n_bits: int, group: str = "sets"):
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        self.runtime = runtime
        self.n_bits = n_bits
        self.group = group
        self._sets: dict = {}

    def define(self, name: str, bits) -> None:
        """Create or overwrite a named set."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != self.n_bits:
            raise ValueError(
                f"set {name!r} has {bits.size} bits, expected {self.n_bits}"
            )
        if name not in self._sets:
            self._sets[name] = self.runtime.pim_malloc(self.n_bits, self.group)
        self.runtime.pim_write(self._sets[name], bits)

    def names(self) -> list:
        return sorted(self._sets)

    def _scratch(self):
        return self.runtime.pim_malloc(self.n_bits, self.group)

    def _eval_into(self, node, requests: list):
        """Compile a node to a handle, appending its pim_op requests.

        Requests are emitted in dependency order, so the driver's
        dependence-aware reordering can batch the whole expression (or
        several expressions) into one command stream.
        """
        if isinstance(node, Var):
            try:
                return self._sets[node.name]
            except KeyError:
                raise SetExpressionError(f"unknown set {node.name!r}") from None
        if isinstance(node, Not):
            operand = self._eval_into(node.operand, requests)
            dest = self._scratch()
            requests.append(("inv", dest, [operand]))
            return dest
        operands = [self._eval_into(operand, requests) for operand in node.operands]
        dest = self._scratch()
        op_name = {"&": "and", "|": "or", "^": "xor"}[node.op]
        # the flattened chain maps to one (possibly multi-row) pim_op;
        # the executor decomposes past the technology's fan-in budget
        requests.append((op_name, dest, operands))
        return dest

    def _eval(self, node):
        """Evaluate to a handle; the expression runs as one command batch."""
        requests: list = []
        dest = self._eval_into(node, requests)
        if requests:
            self.runtime.pim_op_many(requests)
        return dest

    def query(self, expression: str) -> np.ndarray:
        """Evaluate an expression; returns the result bits."""
        node = parse_expression(expression)
        handle = self._eval(node)
        return self.runtime.pim_read(handle)

    def query_many(self, expressions) -> list:
        """Evaluate several expressions as **one** batched command stream.

        All expressions' operations are submitted together; the driver
        reorders them (dependences preserved) and prices the stream in a
        single ``execute_batch`` call.  Returns each expression's result
        bits, in order.
        """
        requests: list = []
        roots = []
        for text in expressions:
            roots.append(self._eval_into(parse_expression(text), requests))
        if requests:
            self.runtime.pim_op_many(requests)
        return [self.runtime.pim_read(handle) for handle in roots]

    def count(self, expression: str) -> int:
        """Cardinality of the expression's result set."""
        return int(self.query(expression).sum())

    def count_many(self, expressions) -> list:
        """Cardinalities of several expressions, evaluated as one batch."""
        return [int(bits.sum()) for bits in self.query_many(expressions)]
