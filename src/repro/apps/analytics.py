"""SQL-ish bitmap analytics over the bit-serial arithmetic substrate.

:class:`AnalyticsTable` holds two kinds of resident columns:

- **bit-sliced** numeric columns (``load_column``): ``k`` transposed
  planes per column, queried with arbitrary-constant compares
  (``("cmp", col, op, value)``) and SUM aggregation;
- **equality-encoded** bitmap indexes (``load_index``): one disjoint
  bin vector per distinct value, queried with FastBit-style ranges
  (``("range", col, lo, hi)``) and histogram GROUP BY.

``table.filter(*predicates).count() / .sum(col) / .histogram(col)``
executes the whole query in memory: predicate masks from the
:mod:`repro.arith.kernels` gate recipes, conjunction by mask AND, and
popcount-based reduction over the I/O bus -- every gate priced by the
simulated controller.  All predicate gates land as **one** planner
wave, so identical sub-chains inside a query CSE-fold.  ``verify()``
replays every executed query on the host shadows and asserts exact
agreement.

On a planned+compiled runtime the table additionally runs the
:class:`~repro.arith.compile.AnalyticsCompiler` (see that module for
the honesty rules): a repeated query *shape* compiles into a program
keyed by structure with the comparison constants as runtime
parameters, and steady-state repeats replay with zero planner work --
same answers, same simulated pricing, ~none of the Python.
``compile_analytics=False`` is the escape hatch back to per-call
kernel interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.arith.bitslice import BitSliceTensor
from repro.arith.compile import AnalyticsCompiler, analytics_program_key
from repro.arith.kernels import (
    CMP_OPS,
    ScratchPool,
    combine_masks,
    compare_const,
    copy_plane,
    mask_count,
    masked_histogram,
    masked_sum,
)
from repro.arith.oracle import (
    oracle_compare_const,
    oracle_histogram,
    oracle_masked_sum,
)

__all__ = ["AnalyticsTable", "AnalyticsResult", "analytics_oracle"]

_Q_QUERIES = telemetry.counter("analytics.queries")


@dataclass(frozen=True)
class AnalyticsResult:
    """One executed analytics query and its honest simulated cost."""

    #: scalar aggregate (count, or masked sum; histogram total)
    value: float
    #: per-bin counts for histogram aggregates, else ``None``
    groups: Optional[Tuple[int, ...]]
    #: rows passing the filter
    popcount: int
    #: simulated seconds / joules consumed by this query
    latency_s: float
    energy_j: float
    #: the (filters, aggregate) spec, for verification replay
    spec: tuple = field(repr=False, default=())


def analytics_oracle(
    columns: Dict[str, np.ndarray],
    filters: Sequence[tuple],
    aggregate: tuple,
) -> Tuple[np.ndarray, float, Optional[Tuple[int, ...]]]:
    """Plain-numpy evaluation of one analytics query.

    ``columns`` maps names to raw host values.  Returns
    ``(mask_bits, value, groups)`` -- exactly what the PIM execution
    must reproduce.
    """
    n = len(next(iter(columns.values())))
    mask = np.ones(n, dtype=np.uint8)
    for pred in filters:
        kind = pred[0]
        if kind == "cmp":
            _, col, op, value = pred[:4]
            mask &= oracle_compare_const(columns[col], op, value)
        elif kind == "range":
            _, col, lo, hi = pred[:4]
            vals = np.asarray(columns[col], dtype=np.int64)
            mask &= ((vals >= lo) & (vals <= hi)).astype(np.uint8)
        else:
            raise ValueError(f"unknown predicate kind {kind!r}")
    if aggregate[0] == "count":
        return mask, float(int(mask.sum())), None
    if aggregate[0] == "sum":
        return mask, float(oracle_masked_sum(columns[aggregate[1]], mask)), None
    if aggregate[0] == "hist":
        col = aggregate[1]
        n_bins = int(np.asarray(columns[col]).max()) + 1
        groups = tuple(oracle_histogram(columns[col], n_bins, mask))
        return mask, float(sum(groups)), groups
    raise ValueError(f"unknown aggregate {aggregate[0]!r}")


class AnalyticsTable:
    """A resident table: bit-sliced numeric columns + bitmap indexes."""

    def __init__(
        self,
        runtime,
        n_rows: int,
        group: str = "analytics",
        compile_analytics: bool = True,
    ):
        if n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        self.runtime = runtime
        self.n_rows = int(n_rows)
        self.group = group
        self.pool = ScratchPool(runtime, n_rows, group=f"{group}/scratch")
        self._slices: Dict[str, BitSliceTensor] = {}
        self._indexes: Dict[str, List] = {}
        self._host: Dict[str, np.ndarray] = {}
        self.executed: List[AnalyticsResult] = []
        #: whole-query program compiler; self-disables on unplanned /
        #: uncompiled runtimes (``enabled`` False -> pure interpretation)
        self.compiler = AnalyticsCompiler(runtime)
        if not compile_analytics:
            self.compiler.enabled = False

    # -- loading -------------------------------------------------------------

    def load_column(self, name: str, values, n_bits: int) -> None:
        """Load a numeric column bit-sliced (``n_bits`` planes)."""
        self._check_name(name)
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.n_rows,):
            raise ValueError(f"column {name!r} must have {self.n_rows} rows")
        self._slices[name] = BitSliceTensor.from_ints(
            self.runtime, values, n_bits, group=f"{self.group}/{name}"
        )
        self._host[name] = values.copy()

    def load_index(self, name: str, bin_indices, n_bins: int) -> None:
        """Load an equality-encoded bitmap index (one vector per bin)."""
        self._check_name(name)
        idx = np.asarray(bin_indices, dtype=np.int64)
        if idx.shape != (self.n_rows,):
            raise ValueError(f"index {name!r} must have {self.n_rows} rows")
        if idx.min() < 0 or idx.max() >= n_bins:
            raise ValueError(f"index {name!r} values outside [0, {n_bins})")
        bins = []
        for b in range(n_bins):
            handle = self.runtime.pim_malloc(
                self.n_rows, f"{self.group}/{name}"
            )
            self.runtime.pim_write(handle, (idx == b).astype(np.uint8))
            bins.append(handle)
        self._indexes[name] = bins
        self._host[name] = idx.copy()

    def _check_name(self, name: str) -> None:
        if name in self._slices or name in self._indexes:
            raise ValueError(f"column {name!r} already loaded")

    @property
    def columns(self) -> List[str]:
        return sorted(self._host)

    # -- querying ------------------------------------------------------------

    def filter(self, *predicates) -> "AnalyticsQuery":
        """Start a query; predicates are ``("cmp", col, op, K)`` over
        bit-sliced columns or ``("range", col, lo, hi)`` over indexes."""
        for pred in predicates:
            self._check_predicate(pred)
        return AnalyticsQuery(self, tuple(predicates))

    def _check_predicate(self, pred) -> None:
        if not isinstance(pred, tuple) or not pred:
            raise ValueError(f"malformed predicate {pred!r}")
        if pred[0] == "cmp":
            _, col, op, _value = pred[:4]
            if col not in self._slices:
                raise KeyError(
                    f"no bit-sliced column {col!r}; loaded: "
                    f"{sorted(self._slices)}"
                )
            if op not in CMP_OPS:
                raise ValueError(f"unknown comparison {op!r}")
        elif pred[0] == "range":
            _, col, lo, hi = pred[:4]
            bins = self._indexes.get(col)
            if bins is None:
                raise KeyError(
                    f"no bitmap index {col!r}; loaded: "
                    f"{sorted(self._indexes)}"
                )
            if not 0 <= lo <= hi < len(bins):
                raise ValueError(
                    f"range [{lo}, {hi}] outside the {len(bins)} bins "
                    f"of {col!r}"
                )
        else:
            raise ValueError(f"unknown predicate kind {pred[0]!r}")

    def _build_mask(self, predicates):
        """Predicate masks + conjunction, emitted as one planner wave."""
        pool = self.pool
        requests: list = []
        if not predicates:
            mask = copy_plane(pool, pool.ones, requests)
        else:
            masks = []
            for pred in predicates:
                if pred[0] == "cmp":
                    _, col, op, value = pred[:4]
                    masks.append(
                        compare_const(
                            pool, self._slices[col].planes, op, value, requests
                        )
                    )
                else:
                    _, col, lo, hi = pred[:4]
                    bins = self._indexes[col][lo : hi + 1]
                    dest = pool.take()
                    if len(bins) == 1:
                        requests.append(("or", dest, [bins[0], pool.zero]))
                    else:
                        requests.append(("or", dest, list(bins)))
                    masks.append(dest)
            mask = combine_masks(pool, masks, requests)
        if requests:
            self.runtime.pim_op_many(requests)
        return mask

    def _program_leaves(self, predicates, aggregate) -> list:
        """Every resident handle one query reads (program leaf set)."""
        handles: list = []
        for pred in predicates:
            if pred[0] == "cmp":
                handles.extend(self._slices[pred[1]].planes)
            else:
                handles.extend(self._indexes[pred[1]][pred[2] : pred[3] + 1])
        if aggregate[0] == "sum":
            handles.extend(self._slices[aggregate[1]].planes)
        elif aggregate[0] == "hist":
            handles.extend(self._indexes[aggregate[1]])
        handles.extend(self.pool._constants)
        return handles

    def _run(self, predicates, aggregate) -> AnalyticsResult:
        runtime = self.runtime
        compiler = self.compiler
        tape = None
        if compiler.enabled:
            key, constants = analytics_program_key(predicates, aggregate)
            rec = compiler.replay(key, constants)
            if rec is not None:
                _Q_QUERIES.add()
                result = AnalyticsResult(
                    value=rec.value,
                    groups=rec.groups,
                    popcount=rec.popcount,
                    latency_s=rec.latency_s,
                    energy_j=rec.energy_j,
                    spec=(tuple(predicates), tuple(aggregate)),
                )
                self.executed.append(result)
                return result
            tape = compiler.observe(
                key,
                constants,
                lambda: self._program_leaves(predicates, aggregate),
            )
            if tape is not None and tape.scratch_high_water:
                self.pool.preallocate(tape.scratch_high_water)
        lat0, en0 = runtime.total_latency(), runtime.total_energy()
        with telemetry.span(
            "analytics.query",
            filters=len(predicates),
            aggregate=aggregate[0],
        ):
            mask = self._build_mask(predicates)
            popcount = mask_count(self.pool, mask)
            groups: Optional[Tuple[int, ...]] = None
            if aggregate[0] == "count":
                value = float(popcount)
            elif aggregate[0] == "sum":
                value = float(
                    masked_sum(self.pool, self._slices[aggregate[1]].planes, mask)
                )
            elif aggregate[0] == "hist":
                groups = tuple(
                    masked_histogram(self.pool, self._indexes[aggregate[1]], mask)
                )
                value = float(sum(groups))
            else:
                raise ValueError(f"unknown aggregate {aggregate[0]!r}")
        if tape is not None:
            tape.finish(
                popcount=popcount,
                value=value,
                groups=groups,
                high_water=self.pool.high_water,
            )
        self.pool.recycle()
        self.pool.assert_drained()
        _Q_QUERIES.add()
        result = AnalyticsResult(
            value=value,
            groups=groups,
            popcount=popcount,
            latency_s=runtime.total_latency() - lat0,
            energy_j=runtime.total_energy() - en0,
            spec=(tuple(predicates), tuple(aggregate)),
        )
        self.executed.append(result)
        return result

    # -- verification --------------------------------------------------------

    def verify(self) -> int:
        """Replay every executed query on the host shadows; exact match."""
        for i, result in enumerate(self.executed):
            predicates, aggregate = result.spec
            mask, value, groups = analytics_oracle(
                self._host, predicates, aggregate
            )
            ok = (
                result.popcount == int(mask.sum())
                and result.value == value
                and result.groups == groups
            )
            if not ok:
                raise AssertionError(
                    f"query {i} diverged from the numpy oracle: "
                    f"got (popcount={result.popcount}, value={result.value}, "
                    f"groups={result.groups}), expected "
                    f"({int(mask.sum())}, {value}, {groups})"
                )
        return len(self.executed)

    def free(self) -> None:
        for tensor in self._slices.values():
            tensor.free()
        for bins in self._indexes.values():
            for handle in bins:
                self.runtime.pim_free(handle)
        self._slices.clear()
        self._indexes.clear()
        self.pool.free_all()


class AnalyticsQuery:
    """A filtered view of one table, awaiting its aggregate."""

    def __init__(self, table: AnalyticsTable, predicates: tuple):
        self.table = table
        self.predicates = predicates

    def count(self) -> AnalyticsResult:
        """COUNT(*) of rows passing the filter."""
        return self.table._run(self.predicates, ("count",))

    def sum(self, column: str) -> AnalyticsResult:
        """SUM(column) over rows passing the filter."""
        if column not in self.table._slices:
            raise KeyError(
                f"no bit-sliced column {column!r}; loaded: "
                f"{sorted(self.table._slices)}"
            )
        return self.table._run(self.predicates, ("sum", column))

    def histogram(self, column: str) -> AnalyticsResult:
        """GROUP BY an indexed column: per-bin counts under the filter."""
        if column not in self.table._indexes:
            raise KeyError(
                f"no bitmap index {column!r}; loaded: "
                f"{sorted(self.table._indexes)}"
            )
        return self.table._run(self.predicates, ("hist", column))

    def aggregate(self, spec: tuple) -> AnalyticsResult:
        """Run an aggregate given as a spec tuple (service wire form)."""
        if spec[0] == "count":
            return self.count()
        if spec[0] == "sum":
            return self.sum(spec[1])
        if spec[0] == "hist":
            return self.histogram(spec[1])
        raise ValueError(f"unknown aggregate {spec[0]!r}")
