"""Word-Aligned Hybrid (WAH) bitmap compression.

FastBit's native bitmap representation (Wu, 2005): bits are grouped into
31-bit chunks; a 32-bit word is either a *literal* (MSB 0, 31 payload
bits) or a *fill* (MSB 1, bit 30 the fill value, low 30 bits the run
length in 31-bit groups).  Logical operations run directly on the
compressed streams, skipping over fills without touching their bits.

In the Pinatubo context WAH is the CPU-side counterweight: a software
bitmap engine compresses to cut memory traffic, while Pinatubo operates
on uncompressed rows at full row parallelism.  The ablation bench
(`bench_ablation_compression.py`) quantifies that trade.
"""

from __future__ import annotations

import numpy as np

#: payload bits per word
GROUP_BITS = 31
_LITERAL_MASK = (1 << GROUP_BITS) - 1  # 0x7FFFFFFF
_FILL_FLAG = 1 << 31
_FILL_VALUE = 1 << 30
_FILL_COUNT_MASK = (1 << 30) - 1


def _bits_to_groups(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array into 31-bit group values (last group padded)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("bits must be 1-D")
    pad = (-bits.size) % GROUP_BITS
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
    groups = bits.reshape(-1, GROUP_BITS)
    weights = (1 << np.arange(GROUP_BITS - 1, -1, -1, dtype=np.uint64))
    return (groups.astype(np.uint64) * weights).sum(axis=1).astype(np.uint32)


def _groups_to_bits(groups: np.ndarray, n_bits: int) -> np.ndarray:
    out = np.zeros((len(groups), GROUP_BITS), dtype=np.uint8)
    for j in range(GROUP_BITS):
        out[:, j] = (groups >> np.uint32(GROUP_BITS - 1 - j)) & np.uint32(1)
    return out.reshape(-1)[:n_bits]


def wah_encode(bits: np.ndarray) -> np.ndarray:
    """Compress a 0/1 bit array into WAH words (uint32)."""
    groups = _bits_to_groups(bits)
    words = []
    i = 0
    n = len(groups)
    while i < n:
        value = int(groups[i])
        if value in (0, _LITERAL_MASK):
            run = 1
            while (
                i + run < n
                and groups[i + run] == value
                and run < _FILL_COUNT_MASK
            ):
                run += 1
            if run > 1:
                fill = _FILL_FLAG | run
                if value:
                    fill |= _FILL_VALUE
                words.append(fill)
                i += run
                continue
        words.append(value)
        i += 1
    return np.array(words, dtype=np.uint32)


def wah_decode(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Decompress WAH words back to a 0/1 array of ``n_bits``."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    runs = []
    for word in np.asarray(words, dtype=np.uint32).tolist():
        if word & _FILL_FLAG:
            value = _LITERAL_MASK if word & _FILL_VALUE else 0
            runs.extend([value] * (word & _FILL_COUNT_MASK))
        else:
            runs.append(word & _LITERAL_MASK)
    groups = np.array(runs, dtype=np.uint32)
    expected = -(-n_bits // GROUP_BITS)
    if len(groups) != expected:
        raise ValueError(
            f"stream holds {len(groups)} groups, {expected} needed for {n_bits} bits"
        )
    return _groups_to_bits(groups, n_bits)


def _to_runs(words) -> list:
    """[(group_value, count), ...] from a WAH stream."""
    runs = []
    for word in np.asarray(words, dtype=np.uint32).tolist():
        if word & _FILL_FLAG:
            value = _LITERAL_MASK if word & _FILL_VALUE else 0
            runs.append((value, word & _FILL_COUNT_MASK))
        else:
            runs.append((word & _LITERAL_MASK, 1))
    return runs


def _from_runs(runs) -> np.ndarray:
    """Re-encode (value, count) runs into canonical WAH words."""
    words = []
    pending_value = None
    pending_count = 0

    def flush():
        nonlocal pending_value, pending_count
        while pending_count:
            take = min(pending_count, _FILL_COUNT_MASK)
            if take == 1:
                words.append(pending_value)
            else:
                fill = _FILL_FLAG | take
                if pending_value:
                    fill |= _FILL_VALUE
                words.append(fill)
            pending_count -= take
        pending_value = None

    for value, count in runs:
        if value in (0, _LITERAL_MASK):
            if pending_value == value:
                pending_count += count
            else:
                flush()
                pending_value, pending_count = value, count
        else:
            flush()
            words.extend([value] * count)
    flush()
    return np.array(words, dtype=np.uint32)


def _merge(a_words, b_words, op) -> np.ndarray:
    """Compressed-domain binary op via run merging."""
    runs_a = _to_runs(a_words)
    runs_b = _to_runs(b_words)
    out = []
    ia = ib = 0
    rem_a = rem_b = 0
    va = vb = 0
    while True:
        if rem_a == 0:
            if ia >= len(runs_a):
                break
            va, rem_a = runs_a[ia]
            ia += 1
        if rem_b == 0:
            if ib >= len(runs_b):
                break
            vb, rem_b = runs_b[ib]
            ib += 1
        take = min(rem_a, rem_b)
        out.append((op(va, vb) & _LITERAL_MASK, take))
        rem_a -= take
        rem_b -= take
    if rem_a or rem_b or ia < len(runs_a) or ib < len(runs_b):
        raise ValueError("WAH streams cover different bit counts")
    return _from_runs(out)


def wah_and(a_words, b_words) -> np.ndarray:
    """Bitwise AND of two equal-length WAH streams (stays compressed)."""
    return _merge(a_words, b_words, lambda x, y: x & y)


def wah_or(a_words, b_words) -> np.ndarray:
    """Bitwise OR of two equal-length WAH streams (stays compressed)."""
    return _merge(a_words, b_words, lambda x, y: x | y)


def wah_popcount(words) -> int:
    """Set-bit count straight off the compressed stream."""
    total = 0
    for value, count in _to_runs(words):
        total += count * int(bin(value).count("1"))
    return total


def compression_ratio(bits: np.ndarray) -> float:
    """Uncompressed 32-bit words over WAH words (>1 means it compressed)."""
    bits = np.asarray(bits)
    plain_words = -(-bits.size // 32)
    wah_words = len(wah_encode(bits))
    return plain_words / wah_words if wah_words else float("inf")
