"""Bit-plane image processing on bulk bitwise operations.

The paper's introduction motivates bitwise acceleration with image
processing (fast colour segmentation, Bruce et al.): decompose an
image into bit planes, and per-pixel comparisons/masks become bulk
bitwise operations over n-pixel bit-vectors.

The core primitive is the bit-serial threshold: ``mask = (image > t)``
computed MSB-first over the planes with only AND/OR/INV --

    gt = 0, eq = 1
    for b in MSB..LSB:
        if t_b == 0:  gt |= eq AND plane_b        # pixel bit 1 > t bit 0
        eq &= (plane_b XNOR t_b)                  # still tied
    ==> gt

which runs entirely in PIM memory.  Band masks, channel intersections
and pixel counting follow from AND/INV/popcount.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import OpTrace

PLANES = 8  # uint8 images


def to_bit_planes(image: np.ndarray) -> list:
    """Flatten a uint8 image into 8 bit-vectors, MSB first."""
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise ValueError("expected a uint8 image")
    flat = image.reshape(-1)
    return [
        ((flat >> (PLANES - 1 - b)) & 1).astype(np.uint8) for b in range(PLANES)
    ]


def from_bit_planes(planes, shape) -> np.ndarray:
    """Rebuild a uint8 image from 8 MSB-first bit-vectors."""
    planes = [np.asarray(p, dtype=np.uint8) for p in planes]
    if len(planes) != PLANES:
        raise ValueError(f"expected {PLANES} planes")
    flat = np.zeros(planes[0].shape, dtype=np.uint8)
    for b, plane in enumerate(planes):
        flat |= plane << (PLANES - 1 - b)
    return flat.reshape(shape)


def threshold_bits(t: int) -> list:
    """MSB-first bits of a uint8 threshold."""
    if not 0 <= t <= 255:
        raise ValueError("threshold must be a uint8 value")
    return [(t >> (PLANES - 1 - b)) & 1 for b in range(PLANES)]


def threshold_mask_numpy(planes, t: int) -> np.ndarray:
    """The bit-serial greater-than, in numpy (oracle + CPU reference)."""
    t_bits = threshold_bits(t)
    gt = np.zeros_like(planes[0])
    eq = np.ones_like(planes[0])
    for plane, t_b in zip(planes, t_bits):
        if t_b == 0:
            gt |= eq & plane
            eq = eq & (1 - plane)
        else:
            eq = eq & plane
    return gt


def threshold_mask_pim(runtime, plane_handles, t: int, group: str = "img"):
    """The same comparator, executed with in-memory PIM operations.

    ``plane_handles`` are 8 MSB-first bit-vector handles already living
    in PIM memory; returns the handle of the (pixel > t) mask.
    """
    if len(plane_handles) != PLANES:
        raise ValueError(f"expected {PLANES} plane handles")
    n_bits = plane_handles[0].n_bits
    t_bits = threshold_bits(t)

    gt = runtime.pim_malloc(n_bits, group)  # starts all-zero
    eq = runtime.pim_malloc(n_bits, group)
    ones_seed = runtime.pim_malloc(n_bits, group)
    scratch = runtime.pim_malloc(n_bits, group)
    # eq starts all-ones: INV of the fresh all-zero row
    runtime.pim_op("inv", eq, [ones_seed])

    for plane, t_b in zip(plane_handles, t_bits):
        if t_b == 0:
            # gt |= eq & plane ; eq &= ~plane
            runtime.pim_op("and", scratch, [eq, plane])
            runtime.pim_op("or", gt, [gt, scratch])
            runtime.pim_op("inv", scratch, [plane])
            runtime.pim_op("and", eq, [eq, scratch])
        else:
            runtime.pim_op("and", eq, [eq, plane])
    return gt


def band_mask_pim(runtime, plane_handles, low: int, high: int,
                  group: str = "img"):
    """(low < pixel <= high) as PIM ops: gt(low) AND NOT gt(high)."""
    if low > high:
        raise ValueError("need low <= high")
    gt_low = threshold_mask_pim(runtime, plane_handles, low, group)
    gt_high = threshold_mask_pim(runtime, plane_handles, high, group)
    n_bits = plane_handles[0].n_bits
    not_high = runtime.pim_malloc(n_bits, group)
    band = runtime.pim_malloc(n_bits, group)
    runtime.pim_op("inv", not_high, [gt_high])
    runtime.pim_op("and", band, [gt_low, not_high])
    return band


def threshold_trace(n_pixels: int, t: int) -> OpTrace:
    """Op trace of one threshold over an n-pixel image (for pricing)."""
    if n_pixels < 1:
        raise ValueError("n_pixels must be positive")
    trace = OpTrace(name=f"threshold-{t}")
    trace.bitwise("inv", 1, n_pixels)  # eq init
    for t_b in threshold_bits(t):
        if t_b == 0:
            trace.bitwise("and", 2, n_pixels)
            trace.bitwise("or", 2, n_pixels)
            trace.bitwise("inv", 1, n_pixels)
            trace.bitwise("and", 2, n_pixels)
        else:
            trace.bitwise("and", 2, n_pixels)
    # plane decomposition + mask consumption on the host
    trace.cpu(n_pixels * 0.5, label="plane-io")
    return trace


def synthetic_image(height: int = 64, width: int = 64, seed: int = 0) -> np.ndarray:
    """A gradient + bright blobs test image (uint8)."""
    if height < 1 or width < 1:
        raise ValueError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    gradient = (x * 255.0 / max(1, width - 1)).astype(np.float64)
    image = gradient.copy()
    for _ in range(max(1, (height * width) // 1024)):
        cy, cx = rng.integers(0, height), rng.integers(0, width)
        r = int(rng.integers(3, max(4, min(height, width) // 8)))
        blob = (y - cy) ** 2 + (x - cx) ** 2 <= r**2
        image[blob] = 250.0
    noise = rng.normal(0, 6.0, size=image.shape)
    return np.clip(image + noise, 0, 255).astype(np.uint8)
