"""FastBit on Pinatubo, end to end.

:mod:`repro.apps.fastbit` answers queries functionally (numpy) and via
traces; this module goes the last mile: the whole bitmap index lives in
PIM memory as row-aligned bit-vectors, and every query executes through
the driver as in-memory operations --

- one **multi-row OR** per range predicate (all covered bins in a single
  activation when the fan-in budget allows),
- an **AND** chain across predicates,
- a host-side popcount of the result bitmap (the only data that crosses
  the DDR bus).

This is the "database machine" configuration the paper's Fig. 12
database columns describe, runnable and checkable against the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.apps.fastbit import FastBitDB, RangeQuery
from repro.apps.star import StarTable
from repro.core.stats import OpAccounting


@dataclass
class PimQueryResult:
    """Answer + cost of one query executed in memory."""

    hits: int
    in_memory_steps: int
    latency: float
    energy: float


class PimFastBit:
    """A bitmap-index database resident in Pinatubo memory."""

    def __init__(
        self,
        runtime,
        table: StarTable,
        group: str = "fastbit",
        cache_predicates: bool = False,
    ):
        self.runtime = runtime
        self.table = table
        self.group = group
        self.cache_predicates = cache_predicates
        self._oracle = FastBitDB(table, functional=False)
        self.n_events = table.n_events
        #: column name -> list of bin bitmap handles
        self.bin_handles: Dict[str, list] = {}
        self._scratch: list = []
        #: dead scratch vectors available for reuse (a query's scratch
        #: is recycled once its answer is computed -- every reuse is a
        #: full-row overwrite, so stale contents are never observable)
        self._scratch_pool: list = []
        #: scratch handed out since the last recycle point
        self._query_scratch: list = []
        #: the shared all-zero operand for single-bin predicate copies;
        #: read-only, so one row set serves every query
        self._zero = None
        #: (column, lo, hi) -> materialised predicate handle
        self._predicate_cache: Dict[Tuple[str, int, int], object] = {}
        self.cache_hits = 0
        self._load_index()

    # -- index construction -----------------------------------------------------

    def _load_index(self) -> None:
        """Build the equality-encoded index directly into PIM rows."""
        n = self.n_events
        events = np.arange(n)
        for spec in self.table.columns:
            bins = self.table.bin_indices(spec.name)
            handles = []
            for b in range(spec.n_bins):
                bitmap = np.zeros(n, dtype=np.uint8)
                bitmap[events[bins == b]] = 1
                handle = self.runtime.pim_malloc(n, self.group)
                self.runtime.pim_write(handle, bitmap)
                handles.append(handle)
            self.bin_handles[spec.name] = handles

    @property
    def index_rows(self) -> int:
        """Row frames the resident index occupies."""
        return sum(
            sum(h.n_rows for h in handles) for handles in self.bin_handles.values()
        )

    def _scratch_vector(self):
        if self._scratch_pool:
            handle = self._scratch_pool.pop()
        else:
            handle = self.runtime.pim_malloc(self.n_events, self.group)
            self._scratch.append(handle)
        self._query_scratch.append(handle)
        return handle

    def _zero_vector(self):
        if self._zero is None:
            self._zero = self.runtime.pim_malloc(self.n_events, self.group)
            self._scratch.append(self._zero)
        return self._zero

    def _recycle_query_scratch(self) -> None:
        """Return the finished query's scratch to the reuse pool.

        Cached predicate handles are excluded at registration time (they
        must stay live); everything else is dead once the answer is out.
        """
        self._scratch_pool.extend(self._query_scratch)
        self._query_scratch.clear()

    def release_scratch(self) -> None:
        """Free every scratch row (and the predicate cache living there).

        Long query sessions otherwise accumulate one scratch vector per
        predicate; call this between workloads.
        """
        for handle in self._scratch:
            self.runtime.pim_free(handle)
        self._scratch.clear()
        self._scratch_pool.clear()
        self._query_scratch.clear()
        self._zero = None
        self._predicate_cache.clear()

    # -- query execution ------------------------------------------------------------

    def _predicate_requests(
        self, query: RangeQuery
    ) -> Tuple[list, List[tuple]]:
        """Resolve a query's predicates to handles plus the OR requests
        (driver-submittable tuples) that still need to execute.

        Cached predicates contribute a handle but no request; fresh ones
        register their destination in the cache immediately, so repeated
        predicates inside one batched stream execute only once.
        """
        handles = []
        requests = []
        for name, lo, hi in query.predicates:
            key = (name, lo, hi)
            if self.cache_predicates and key in self._predicate_cache:
                # an earlier query already materialised this range OR;
                # its result row is still resident -- reuse it for free
                self.cache_hits += 1
                handles.append(self._predicate_cache[key])
                continue
            bins = self.bin_handles[name][lo : hi + 1]
            if not bins:
                raise ValueError(f"empty bin range on {name}")
            dest = self._scratch_vector()
            if len(bins) == 1:
                # single-bin predicate: copy via OR with an all-zero row
                requests.append(("or", dest, [bins[0], self._zero_vector()]))
            else:
                requests.append(("or", dest, list(bins)))
            if self.cache_predicates:
                self._predicate_cache[key] = dest
                self._query_scratch.remove(dest)
            handles.append(dest)
        return handles, requests

    def _combine_predicates(
        self, predicate_handles: list, steps: int
    ) -> Tuple[int, int]:
        """AND the materialised predicates; returns (steps, hits)."""
        if len(predicate_handles) == 1:
            answer_bits = self.runtime.pim_read(predicate_handles[0])
        else:
            # intermediate ANDs stay in memory; the final AND streams its
            # result straight to the I/O bus (the paper's alternative
            # emission path) -- no result row is ever programmed
            answer = predicate_handles[0]
            for other in predicate_handles[1:-1]:
                combined = self._scratch_vector()
                result = self.runtime.pim_op("and", combined, [answer, other])
                steps += result.steps
                answer = combined
            scratch = self._scratch_vector()
            answer_bits = self.runtime.pim_op_to_host(
                "and", scratch, [answer, predicate_handles[-1]]
            )
            steps += 1
        return steps, int(answer_bits.sum())

    def query(self, query: RangeQuery) -> PimQueryResult:
        """Execute one conjunctive range query in memory.

        All of the query's uncached range-OR predicates are issued as a
        single command batch through the driver (one
        ``execute_batch`` call) before the AND phase combines them.
        """
        with telemetry.span(
            "app.fastbit.query", predicates=len(query.predicates)
        ) as sp:
            acct_before: OpAccounting = self.runtime.pim_accounting
            lat0, en0 = acct_before.latency, acct_before.energy
            predicate_handles, requests = self._predicate_requests(query)
            steps = 0
            if requests:
                for result in self.runtime.pim_op_many(requests):
                    steps += result.steps
            steps, hits = self._combine_predicates(predicate_handles, steps)
            self._recycle_query_scratch()
            acct = self.runtime.pim_accounting
            sp.add(steps=steps, hits=hits)
            return PimQueryResult(
                hits=hits,
                in_memory_steps=steps,
                latency=acct.latency - lat0,
                energy=acct.energy - en0,
            )

    def query_many(self, queries: Sequence[RangeQuery]) -> List[PimQueryResult]:
        """Execute a stream of queries with stream-level batching.

        Every uncached range-OR predicate across the *whole stream* is
        priced in one command batch; each query's AND phase then combines
        its handles.  Hits and step counts are identical to sequential
        :meth:`query` calls.  Latency/energy may differ in the last few
        decimals: running all ORs up-front changes the scratch rows'
        write history, and differential write-back prices only the
        flipped cells.
        """
        with telemetry.span("app.fastbit.query_many", queries=len(queries)):
            all_requests: List[tuple] = []
            spans = []
            per_query_handles = []
            for query in queries:
                handles, requests = self._predicate_requests(query)
                spans.append((len(all_requests), len(requests)))
                all_requests.extend(requests)
                per_query_handles.append(handles)
            or_results = (
                self.runtime.pim_op_many(all_requests) if all_requests else []
            )

            n_q = len(queries)
            steps_q = [0] * n_q
            lat_q = [0.0] * n_q
            en_q = [0.0] * n_q
            for i, (start, n) in enumerate(spans):
                for r in or_results[start : start + n]:
                    steps_q[i] += r.steps
                    lat_q[i] += r.latency
                    en_q[i] += r.energy

            # the AND chains are sequential within a query but
            # independent across queries: run them level-synchronously,
            # one batched submission per chain depth, so the whole
            # stream's combine phase is a handful of driver calls
            answers = [h[0] for h in per_query_handles]
            level = 1
            while True:
                requests: List[tuple] = []
                idxs = []
                for i, handles in enumerate(per_query_handles):
                    if level <= len(handles) - 2:
                        combined = self._scratch_vector()
                        requests.append(
                            ("and", combined, [answers[i], handles[level]])
                        )
                        idxs.append(i)
                        answers[i] = combined
                if not requests:
                    break
                for i, r in zip(idxs, self.runtime.pim_op_many(requests)):
                    steps_q[i] += r.steps
                    lat_q[i] += r.latency
                    en_q[i] += r.energy
                level += 1

            results = []
            for i, handles in enumerate(per_query_handles):
                acct0 = self.runtime.pim_accounting
                lat0, en0 = acct0.latency, acct0.energy
                if len(handles) == 1:
                    answer_bits = self.runtime.pim_read(handles[0])
                    steps = steps_q[i]
                else:
                    # final AND streams straight to the I/O bus, same as
                    # the sequential path's emission
                    scratch = self._scratch_vector()
                    answer_bits = self.runtime.pim_op_to_host(
                        "and", scratch, [answers[i], handles[-1]]
                    )
                    steps = steps_q[i] + 1
                acct = self.runtime.pim_accounting
                results.append(
                    PimQueryResult(
                        hits=int(answer_bits.sum()),
                        in_memory_steps=steps,
                        latency=lat_q[i] + (acct.latency - lat0),
                        energy=en_q[i] + (acct.energy - en0),
                    )
                )
            # scratch is recycled only once the whole stream is done:
            # every query's predicate rows were materialised up front,
            # so none are dead until the last combine has read them
            self._recycle_query_scratch()
            return results

    def run_workload(self, queries) -> list:
        """Execute a list of queries one at a time; returns their results."""
        return [self.query(q) for q in queries]

    # -- verification ------------------------------------------------------------------

    def verify(self, query: RangeQuery) -> bool:
        """Check one query's PIM answer against the columnar oracle."""
        return self.query(query).hits == self._oracle.query_oracle(query)
