"""Applications of the paper's evaluation (Table 1).

- :mod:`repro.apps.bitvector` -- operator-overloaded bit-vectors over the
  PIM runtime (the user-facing sugar the quickstart uses).
- :mod:`repro.apps.graphs` -- graph container + synthetic generators
  standing in for dblp-2010 / eswiki-2013 / amazon-2008.
- :mod:`repro.apps.bfs` -- bitmap-based BFS (frontier bitmaps, multi-row
  OR over adjacency rows), in trace mode and in functional PIM mode.
- :mod:`repro.apps.star` -- synthetic STAR-like event table.
- :mod:`repro.apps.fastbit` -- FastBit-style bitmap-index database with
  range queries.
- :mod:`repro.apps.vectorbench` -- the Vector microbenchmark.
- :mod:`repro.apps.analytics` -- SQL-ish filter/aggregate analytics over
  bit-sliced columns and bitmap indexes (the :mod:`repro.arith` demo).
"""

from repro.apps.bitvector import HostBitSpace, PimBitVector, bitvector_space
from repro.apps.graphs import (
    Graph,
    PAPER_GRAPHS,
    dblp_like,
    eswiki_like,
    amazon_like,
)
from repro.apps.bfs import BfsResult, bitmap_bfs_trace, bitmap_bfs_pim, bfs_reference
from repro.apps.star import StarTable, ColumnSpec, synthetic_star_table
from repro.apps.fastbit import BitmapIndex, FastBitDB, RangeQuery
from repro.apps.vectorbench import vector_trace, vector_run_pim
from repro.apps.wah import (
    wah_encode,
    wah_decode,
    wah_and,
    wah_or,
    wah_popcount,
    compression_ratio,
)
from repro.apps.imaging import (
    to_bit_planes,
    from_bit_planes,
    threshold_mask_numpy,
    threshold_mask_pim,
    band_mask_pim,
    synthetic_image,
)
from repro.apps.fastbit_pim import PimFastBit, PimQueryResult
from repro.apps.analytics import (
    AnalyticsResult,
    AnalyticsTable,
    analytics_oracle,
)
from repro.apps.setops import (
    PimSetAlgebra,
    SetExpressionError,
    evaluate_numpy,
    parse_expression,
)
from repro.apps.genomics import (
    GenotypePanel,
    PimGenotypePanel,
    synthetic_panel,
    burden_oracle,
    haplotype_oracle,
    burden_trace,
    random_gene_sets,
)

__all__ = [
    "HostBitSpace",
    "PimBitVector",
    "bitvector_space",
    "Graph",
    "PAPER_GRAPHS",
    "dblp_like",
    "eswiki_like",
    "amazon_like",
    "BfsResult",
    "bitmap_bfs_trace",
    "bitmap_bfs_pim",
    "bfs_reference",
    "StarTable",
    "ColumnSpec",
    "synthetic_star_table",
    "BitmapIndex",
    "FastBitDB",
    "RangeQuery",
    "vector_trace",
    "vector_run_pim",
    "wah_encode",
    "wah_decode",
    "wah_and",
    "wah_or",
    "wah_popcount",
    "compression_ratio",
    "to_bit_planes",
    "from_bit_planes",
    "threshold_mask_numpy",
    "threshold_mask_pim",
    "band_mask_pim",
    "synthetic_image",
    "PimFastBit",
    "PimQueryResult",
    "AnalyticsResult",
    "AnalyticsTable",
    "analytics_oracle",
    "PimSetAlgebra",
    "SetExpressionError",
    "evaluate_numpy",
    "parse_expression",
    "GenotypePanel",
    "PimGenotypePanel",
    "synthetic_panel",
    "burden_oracle",
    "haplotype_oracle",
    "burden_trace",
    "random_gene_sets",
]
