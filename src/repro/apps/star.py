"""Synthetic STAR-like event table.

The paper's database workload queries data from the STAR experiment (RHIC
collision events) through FastBit.  The actual data is not available
offline; what the bitmap-index workload depends on is only the *shape* of
the table -- event count and per-column bin cardinalities -- which we
synthesise here.  Physics-style columns with realistic distributions:
steeply-falling energies/momenta (exponential), symmetric charges,
Poisson-ish multiplicities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnSpec:
    """One attribute of the event table."""

    name: str
    n_bins: int  # bitmap-index cardinality after binning
    distribution: str = "exponential"  # exponential | uniform | normal

    def __post_init__(self) -> None:
        if self.n_bins < 2:
            raise ValueError("a binnable column needs >= 2 bins")
        if self.distribution not in ("exponential", "uniform", "normal"):
            raise ValueError(f"unknown distribution {self.distribution!r}")


#: Default STAR-like schema: what a high-energy-physics tag table binds.
STAR_COLUMNS = (
    ColumnSpec("energy", 128, "exponential"),
    ColumnSpec("pt", 64, "exponential"),
    ColumnSpec("eta", 32, "normal"),
    ColumnSpec("n_tracks", 32, "exponential"),
    ColumnSpec("charge_ratio", 16, "normal"),
    ColumnSpec("trigger_id", 8, "uniform"),
)


@dataclass
class StarTable:
    """Binned event table: one uint16 bin index per event per column."""

    columns: tuple  # ColumnSpec per column
    bins: dict  # name -> np.ndarray of bin indices (n_events,)

    @property
    def n_events(self) -> int:
        first = next(iter(self.bins.values()))
        return int(first.shape[0])

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise KeyError(f"no column {name!r}")

    def bin_indices(self, name: str) -> np.ndarray:
        return self.bins[name]


def _sample(spec: ColumnSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    if spec.distribution == "uniform":
        raw = rng.random(n)
    elif spec.distribution == "exponential":
        raw = rng.exponential(0.25, n)
    else:  # normal
        raw = rng.normal(0.5, 0.18, n)
    raw = np.clip(raw, 0.0, 1.0 - 1e-9)
    return (raw * spec.n_bins).astype(np.uint16)


def synthetic_star_table(
    n_events: int = 1 << 20,
    columns=STAR_COLUMNS,
    seed: int = 2016,
) -> StarTable:
    """Generate a binned event table of ``n_events`` rows."""
    if n_events < 1:
        raise ValueError("n_events must be positive")
    rng = np.random.default_rng(seed)
    bins = {spec.name: _sample(spec, n_events, rng) for spec in columns}
    return StarTable(columns=tuple(columns), bins=bins)
