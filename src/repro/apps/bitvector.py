"""Operator-overloaded bit-vectors over the PIM runtime.

The friendliest face of the stack: ``PimBitVector`` wraps a runtime
handle so that ``a | b``, ``a & b``, ``a ^ b`` and ``~a`` each execute as
one in-memory Pinatubo operation, and ``PimBitVector.any_of([...])``
exposes the one-step multi-row OR directly.
"""

from __future__ import annotations

import numpy as np


class PimBitVector:
    """A bit-vector living in PIM memory, with python operators."""

    def __init__(self, runtime, n_bits: int, group: str = "bitvec", handle=None):
        self.runtime = runtime
        self.n_bits = n_bits
        self.group = group
        self.handle = handle or runtime.pim_malloc(n_bits, group)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_bits(cls, runtime, bits, group: str = "bitvec") -> "PimBitVector":
        bits = np.asarray(bits, dtype=np.uint8)
        vec = cls(runtime, bits.size, group)
        runtime.pim_write(vec.handle, bits)
        return vec

    @classmethod
    def zeros(cls, runtime, n_bits: int, group: str = "bitvec") -> "PimBitVector":
        return cls(runtime, n_bits, group)

    def _like(self) -> "PimBitVector":
        return PimBitVector(self.runtime, self.n_bits, self.group)

    def _check_peer(self, other: "PimBitVector") -> None:
        if not isinstance(other, PimBitVector):
            raise TypeError("operand must be a PimBitVector")
        if other.runtime is not self.runtime:
            raise ValueError("operands live in different runtimes")
        if other.n_bits != self.n_bits:
            raise ValueError("operand lengths differ")

    # -- operators --------------------------------------------------------------

    def _binary(self, op: str, other: "PimBitVector") -> "PimBitVector":
        self._check_peer(other)
        out = self._like()
        self.runtime.pim_op(op, out.handle, [self.handle, other.handle])
        return out

    def __or__(self, other):
        return self._binary("or", other)

    def __and__(self, other):
        return self._binary("and", other)

    def __xor__(self, other):
        return self._binary("xor", other)

    def __invert__(self):
        out = self._like()
        self.runtime.pim_op("inv", out.handle, [self.handle])
        return out

    @classmethod
    def any_of(cls, vectors) -> "PimBitVector":
        """One-step multi-row OR of many vectors (Pinatubo's signature op)."""
        vectors = list(vectors)
        if len(vectors) < 2:
            raise ValueError("any_of needs at least two vectors")
        first = vectors[0]
        for v in vectors[1:]:
            first._check_peer(v)
        out = first._like()
        first.runtime.pim_op(
            "or", out.handle, [v.handle for v in vectors]
        )
        return out

    # -- host access ---------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        return self.runtime.pim_read(self.handle, self.n_bits)

    def popcount(self) -> int:
        """Host-side count of set bits (reads the vector back)."""
        return int(self.to_numpy().sum())

    def free(self) -> None:
        self.runtime.pim_free(self.handle)

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:
        return f"PimBitVector(n_bits={self.n_bits}, vid={self.handle.vid})"
