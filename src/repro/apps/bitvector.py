"""Operator-overloaded bit-vectors over any bulk-bitwise backend.

The friendliest face of the stack: ``PimBitVector`` wraps a vector
handle so that ``a | b``, ``a & b``, ``a ^ b`` and ``~a`` each execute as
one in-memory operation, and ``PimBitVector.any_of([...])`` exposes the
one-step multi-row OR directly.

Where the vectors live is chosen by the first argument of every
constructor -- any of:

- a :class:`~repro.runtime.api.PimRuntime` (the classic Pinatubo stack);
- a backend registry name (``"pinatubo"``, ``"simd"``, ``"sdram"``...);
- a :class:`~repro.backends.SystemConfig`;
- an already-built :class:`~repro.backends.BulkBitwiseBackend`.

Names/configs/backends are wrapped in a :class:`HostBitSpace`, which
keeps the bits host-side and prices every operation through the backend
(its ``stats`` list records the :class:`~repro.backends.RunStats` of
each op).  A backend exposing a ``runtime`` (the Pinatubo one) binds to
that runtime directly, so its vectors genuinely live in PIM memory.
Vectors can only combine when they share one space -- build the space
once and reuse it::

    space = bitvector_space("sdram")
    a = PimBitVector.from_bits(space, bits_a)
    b = PimBitVector.from_bits(space, bits_b)
    (a | b).to_numpy()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.backends import BulkBitwiseBackend, SystemConfig, build_system


class _HostHandle:
    """Handle of a vector held by a :class:`HostBitSpace`."""

    __slots__ = ("vid", "n_bits")

    def __init__(self, vid: int, n_bits: int):
        self.vid = vid
        self.n_bits = n_bits


class HostBitSpace:
    """``pim_*`` facade over a protocol backend, bits held host-side.

    Mirrors the :class:`~repro.runtime.api.PimRuntime` programming model
    (malloc/free/write/read/op) so :class:`PimBitVector` runs unchanged
    on cost-model backends; every executed op appends its
    :class:`~repro.backends.RunStats` to :attr:`stats`.
    """

    def __init__(self, backend: BulkBitwiseBackend):
        self.backend = backend
        self.stats: List = []
        self._vectors = {}
        self._next_vid = 0

    def pim_malloc(self, n_bits: int, group: str = "default") -> _HostHandle:
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        handle = _HostHandle(self._next_vid, n_bits)
        self._next_vid += 1
        self._vectors[handle.vid] = np.zeros(n_bits, dtype=np.uint8)
        return handle

    def pim_free(self, handle: _HostHandle) -> None:
        del self._vectors[handle.vid]

    def pim_write(self, handle: _HostHandle, bits) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size > handle.n_bits:
            raise ValueError("data longer than the allocated vector")
        self._vectors[handle.vid][: bits.size] = bits

    def pim_read(
        self, handle: _HostHandle, n_bits: Optional[int] = None
    ) -> np.ndarray:
        n_bits = handle.n_bits if n_bits is None else n_bits
        if n_bits > handle.n_bits:
            raise ValueError("read longer than the allocated vector")
        return self._vectors[handle.vid][:n_bits].copy()

    def pim_op(self, op, dest, sources, *, n_bits: Optional[int] = None):
        """``dest = op(sources)`` through the backend; returns its run.

        ``op`` is a :class:`~repro.core.ops.PimOp` or its string name;
        optional parameters are keyword-only, matching
        :meth:`PimRuntime.pim_op <repro.runtime.api.PimRuntime.pim_op>`.
        """
        run = self.backend.bitwise(
            op, [self._vectors[s.vid] for s in sources]
        )
        self._store(dest, run)
        return run

    def pim_op_many(self, requests) -> List:
        """Batched stream through the backend's ``bitwise_many``."""
        requests = [tuple(r) for r in requests]
        calls = [
            (op, [self._vectors[s.vid] for s in sources])
            for op, _dest, sources, *_rest in requests
        ]
        runs = self.backend.bitwise_many(calls)
        for (op, dest, *_rest), run in zip(requests, runs):
            self._store(dest, run)
        return runs

    def _store(self, dest: _HostHandle, run) -> None:
        self._vectors[dest.vid][: run.bits.size] = run.bits
        self.stats.append(run.stats)

    def total_latency(self) -> float:
        return sum(s.latency for s in self.stats)

    def total_energy(self) -> float:
        return sum(s.energy for s in self.stats)


def bitvector_space(target):
    """Resolve anything vector-shaped code accepts into one space.

    Runtimes (and already-resolved spaces) pass through; registry names
    and :class:`~repro.backends.SystemConfig` build a backend first; a
    backend with a ``runtime`` attribute binds to that runtime, any
    other backend is wrapped in a :class:`HostBitSpace`.
    """
    if hasattr(target, "pim_malloc"):  # PimRuntime or HostBitSpace
        return target
    if isinstance(target, str):
        target = SystemConfig(backend=target)
    if isinstance(target, SystemConfig):
        target = build_system(target)
    if not isinstance(target, BulkBitwiseBackend):
        raise TypeError(
            "expected a runtime, backend name, SystemConfig or backend, "
            f"not {type(target).__name__}"
        )
    runtime = getattr(target, "runtime", None)
    if runtime is not None:
        return runtime
    return HostBitSpace(target)


class PimBitVector:
    """A bit-vector living in a bulk-bitwise space, with operators."""

    def __init__(self, space, n_bits: int, group: str = "bitvec", handle=None):
        self.space = bitvector_space(space)
        self.n_bits = n_bits
        self.group = group
        self.handle = handle or self.space.pim_malloc(n_bits, group)

    @property
    def runtime(self):
        """Backward-compatible alias for :attr:`space`."""
        return self.space

    # -- construction -----------------------------------------------------

    @classmethod
    def from_bits(cls, space, bits, group: str = "bitvec") -> "PimBitVector":
        bits = np.asarray(bits, dtype=np.uint8)
        vec = cls(space, bits.size, group)
        vec.space.pim_write(vec.handle, bits)
        return vec

    @classmethod
    def zeros(cls, space, n_bits: int, group: str = "bitvec") -> "PimBitVector":
        return cls(space, n_bits, group)

    def _like(self) -> "PimBitVector":
        return PimBitVector(self.space, self.n_bits, self.group)

    def _check_peer(self, other: "PimBitVector") -> None:
        if not isinstance(other, PimBitVector):
            raise TypeError("operand must be a PimBitVector")
        if other.space is not self.space:
            raise ValueError("operands live in different spaces")
        if other.n_bits != self.n_bits:
            raise ValueError("operand lengths differ")

    # -- operators --------------------------------------------------------------

    def _binary(self, op: str, other: "PimBitVector") -> "PimBitVector":
        self._check_peer(other)
        out = self._like()
        self.space.pim_op(op, out.handle, [self.handle, other.handle])
        return out

    def __or__(self, other):
        return self._binary("or", other)

    def __and__(self, other):
        return self._binary("and", other)

    def __xor__(self, other):
        return self._binary("xor", other)

    def __invert__(self):
        out = self._like()
        self.space.pim_op("inv", out.handle, [self.handle])
        return out

    @classmethod
    def any_of(cls, vectors) -> "PimBitVector":
        """One-step multi-row OR of many vectors (Pinatubo's signature op)."""
        vectors = list(vectors)
        if len(vectors) < 2:
            raise ValueError("any_of needs at least two vectors")
        first = vectors[0]
        for v in vectors[1:]:
            first._check_peer(v)
        out = first._like()
        first.space.pim_op(
            "or", out.handle, [v.handle for v in vectors]
        )
        return out

    @classmethod
    def apply_many(
        cls, calls: Sequence[Tuple[str, Sequence["PimBitVector"]]]
    ) -> List["PimBitVector"]:
        """Run a stream of ``(op, [vectors])`` as one batched flush.

        All vectors must share one space.  On the Pinatubo runtime the
        stream prices as a single command batch (the PR 1 engine); host
        spaces route it through the backend's ``bitwise_many``.  Returns
        the result vectors in call order.
        """
        calls = [(op, list(vecs)) for op, vecs in calls]
        if not calls:
            return []
        with telemetry.span("app.bitvector.apply_many", calls=len(calls)):
            first = calls[0][1][0]
            outs = []
            requests = []
            for op, vecs in calls:
                for v in vecs:
                    first._check_peer(v)
                out = first._like()
                outs.append(out)
                requests.append(
                    (op, out.handle, [v.handle for v in vecs], first.n_bits)
                )
            first.space.pim_op_many(requests)
            return outs

    # -- host access ---------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        return self.space.pim_read(self.handle, self.n_bits)

    def popcount(self) -> int:
        """Host-side count of set bits (reads the vector back)."""
        return int(self.to_numpy().sum())

    def free(self) -> None:
        self.space.pim_free(self.handle)

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:
        return f"PimBitVector(n_bits={self.n_bits}, vid={self.handle.vid})"
