"""Text rendering of the regenerated figures.

The benchmarks print these tables so ``pytest benchmarks/`` output reads
like the paper's evaluation section.
"""

from __future__ import annotations


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_series(title: str, series: dict, x_label: str = "x") -> str:
    """Render {legend: [(x, y), ...]} as an aligned table."""
    lines = [title]
    legends = sorted(series)
    xs = [x for x, _ in series[legends[0]]]
    header = f"{x_label:>8s} " + " ".join(f"{str(k):>12s}" for k in legends)
    lines.append(header)
    for i, x in enumerate(xs):
        row = f"{str(x):>8s} "
        row += " ".join(f"{_fmt(series[k][i][1]):>12s}" for k in legends)
        lines.append(row)
    return "\n".join(lines)


def format_speedup_table(title: str, data: dict) -> str:
    """Render {workload: {scheme: value}} (fig10/fig11 shape)."""
    lines = [title]
    workloads = [w for w in data if w != "gmean"] + (
        ["gmean"] if "gmean" in data else []
    )
    schemes = list(data[workloads[0]])
    lines.append(f"{'workload':>16s} " + " ".join(f"{s:>14s}" for s in schemes))
    for w in workloads:
        row = f"{w:>16s} "
        row += " ".join(f"{_fmt(data[w][s]):>14s}" for s in schemes)
        lines.append(row)
    return "\n".join(lines)


def render_report(headline: dict, fig13: dict) -> str:
    """One-page summary: measured vs paper headline + area."""
    paper = headline["paper"]
    lines = [
        "Pinatubo reproduction -- headline numbers (measured vs paper)",
        f"  bitwise speedup       : {_fmt(headline['bitwise_speedup'])}x"
        f"  (paper ~{_fmt(paper['bitwise_speedup'])}x)",
        f"  bitwise energy saving : {_fmt(headline['bitwise_energy_saving'])}x"
        f"  (paper ~{_fmt(paper['bitwise_energy_saving'])}x)",
        f"  overall speedup       : {_fmt(headline['overall_speedup'])}x"
        f"  (paper {_fmt(paper['overall_speedup'])}x)",
        f"  overall energy saving : {_fmt(headline['overall_energy_saving'])}x"
        f"  (paper {_fmt(paper['overall_energy_saving'])}x)",
        "",
        "Area overhead (fraction of PCM chip area):",
        f"  Pinatubo: {fig13['pinatubo_fraction'] * 100:.2f}%  (paper 0.9%)",
        f"  AC-PIM  : {fig13['acpim_fraction'] * 100:.2f}%  (paper 6.4%)",
    ]
    for component, fraction in fig13["pinatubo_breakdown"].items():
        lines.append(f"    {component:>12s}: {fraction * 100:.3f}%")
    return "\n".join(lines)
