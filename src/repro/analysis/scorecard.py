"""Reproduction scorecard: every paper claim, checked programmatically.

The benchmark suite asserts these claims test-by-test; the scorecard
packs them into one machine-readable report (for CI dashboards or a
quick `python -m repro.analysis --scorecard`).  Each claim records what
the paper says, what this repo measures, and a boolean verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.figures import (
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
)
from repro.circuits.validate import validate_csa_corners
from repro.nvm.margin import max_multirow_or
from repro.nvm.technology import get_technology


@dataclass(frozen=True)
class Claim:
    """One checked claim."""

    claim_id: str
    paper: str
    measured: str
    holds: bool


@dataclass
class Scorecard:
    claims: list = field(default_factory=list)

    def add(self, claim_id: str, paper: str, measured: str, holds: bool) -> None:
        self.claims.append(Claim(claim_id, paper, measured, bool(holds)))

    @property
    def passed(self) -> int:
        return sum(c.holds for c in self.claims)

    @property
    def total(self) -> int:
        return len(self.claims)

    @property
    def all_hold(self) -> bool:
        return self.total > 0 and self.passed == self.total

    def render(self) -> str:
        lines = [f"Reproduction scorecard: {self.passed}/{self.total} claims hold"]
        width = max(len(c.claim_id) for c in self.claims) if self.claims else 0
        for c in self.claims:
            mark = "PASS" if c.holds else "FAIL"
            lines.append(f"  [{mark}] {c.claim_id:<{width}s}  "
                         f"paper: {c.paper}; measured: {c.measured}")
        return "\n".join(lines)


def build_scorecard(scale: float = 0.05) -> Scorecard:
    """Evaluate every checkable claim.

    ``scale`` sizes the app datasets for the workload-based claims;
    device/area/throughput claims are scale-independent.
    """
    card = Scorecard()

    # device-level claims --------------------------------------------------
    pcm_rows = max_multirow_or(get_technology("pcm"))
    card.add("pcm-128-row-or", "128", str(pcm_rows), pcm_rows == 128)
    stt_rows = max_multirow_or(get_technology("stt"))
    card.add("stt-2-row-or", "2", str(stt_rows), stt_rows == 2)
    for name in ("pcm", "reram", "stt"):
        report = validate_csa_corners(get_technology(name))
        card.add(
            f"csa-corners-{name}",
            "all ops correct over prototype resistance ranges",
            f"{report.n_pass}/{report.n_cases}",
            report.all_pass,
        )

    # Fig. 9 claims -----------------------------------------------------------
    f9 = fig9_data(log_lengths=(10, 12, 14, 16, 19, 20), row_counts=(2, 128))
    two = dict(f9["series"][2])
    top = dict(f9["series"][128])
    card.add(
        "fig9-point-a",
        "slope break at 2^14",
        f"slope {two[16] / two[14]:.2f} after vs {two[12] / two[10]:.2f} before",
        two[16] / two[14] < 0.95 * (two[12] / two[10]),
    )
    card.add(
        "fig9-point-b",
        "plateau beyond 2^19",
        f"{top[20] / top[19]:.3f}x gain at 2^20",
        top[20] / top[19] < 1.05,
    )
    card.add(
        "fig9-beyond-internal",
        "multi-row ops exceed internal bandwidth",
        f"{top[19]:.0f} GBps vs internal {f9['internal_gbps']:.0f} GBps",
        top[19] > f9["internal_gbps"],
    )

    # Fig. 10/11 claims ----------------------------------------------------------
    f10 = fig10_data(scale)
    card.add(
        "fig10-p128-wins",
        "Pinatubo-128 best gmean",
        f"{f10['gmean']['Pinatubo-128']:.1f}x",
        all(
            f10["gmean"]["Pinatubo-128"] > f10["gmean"][s]
            for s in ("S-DRAM", "AC-PIM", "Pinatubo-2")
        ),
    )
    row = f10["vector:14-16-7r"]
    card.add(
        "fig10-random-collapse",
        "Pinatubo-128 == Pinatubo-2 on 14-16-7r",
        f"{row['Pinatubo-128']:.2f} vs {row['Pinatubo-2']:.2f}",
        abs(row["Pinatubo-128"] - row["Pinatubo-2"]) < 1e-6 * row["Pinatubo-2"],
    )
    card.add(
        "fig10-sdram-long-vectors",
        "S-DRAM beats Pinatubo-2 on 19-16-1s",
        f"{f10['vector:19-16-1s']['S-DRAM']:.1f} vs "
        f"{f10['vector:19-16-1s']['Pinatubo-2']:.1f}",
        f10["vector:19-16-1s"]["S-DRAM"] > f10["vector:19-16-1s"]["Pinatubo-2"],
    )
    f11 = fig11_data(scale)
    card.add(
        "fig11-all-save-energy",
        "every PIM scheme saves energy everywhere",
        "min saving >= 1",
        all(
            saving >= 1.0
            for w, r in f11.items()
            if w != "gmean"
            for saving in r.values()
        ),
    )

    # Fig. 12 claims ---------------------------------------------------------------
    f12 = fig12_data(scale)
    g = f12["gmeans"]["all"]["speedup"]
    card.add(
        "fig12-near-ideal",
        "Pinatubo almost achieves the ideal acceleration",
        f"{g['Pinatubo-128']:.3f} vs ideal {g['Ideal']:.3f}",
        g["Pinatubo-128"] >= 0.93 * g["Ideal"],
    )
    card.add(
        "fig12-amdahl-band",
        "overall speedup ~1.12x",
        f"{g['Pinatubo-128']:.3f}x",
        1.0 <= g["Pinatubo-128"] <= 1.5,
    )

    # Fig. 13 claims ------------------------------------------------------------------
    f13 = fig13_data()
    card.add(
        "fig13-pinatubo-area",
        "0.9 %",
        f"{f13['pinatubo_fraction'] * 100:.2f} %",
        abs(f13["pinatubo_fraction"] - 0.009) < 0.002,
    )
    card.add(
        "fig13-acpim-area",
        "6.4 %",
        f"{f13['acpim_fraction'] * 100:.2f} %",
        abs(f13["acpim_fraction"] - 0.064) < 0.008,
    )
    card.add(
        "fig13-intersub-dominates",
        "inter-subarray logic is the biggest add-on",
        next(iter(f13["pinatubo_breakdown"])),
        next(iter(f13["pinatubo_breakdown"])) == "inter-sub",
    )
    return card
