"""Trace one Fig. 10 run end-to-end and export a Chrome trace.

Usage::

    PYTHONPATH=src python -m repro.analysis.trace_fig10 \
        --scale 0.05 --out fig10_trace.json

Enables telemetry, runs two legs, and reconciles the recorded spans
against the independent accounting before writing the trace:

1. a **functional** leg -- a PIM-resident FastBit query batch -- whose
   ``memsim.controller.*`` leaf spans must reconcile with the runtime's
   :class:`~repro.core.stats.OpAccounting` totals (themselves absorbed
   from :class:`~repro.memsim.controller.ExecutionStats`) to 1e-9
   relative;
2. the **analytic** Fig. 10 pricing sweep, whose
   ``workloads.trace.price`` spans must reconcile with the re-summed
   :class:`~repro.workloads.trace.WorkloadCost` totals to the same
   tolerance.

Exits non-zero if either reconciliation fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import telemetry
from repro.analysis.figures import _priced, fig10_data
from repro.apps.fastbit import RangeQuery
from repro.apps.fastbit_pim import PimFastBit
from repro.apps.star import ColumnSpec, synthetic_star_table
from repro.core.pinatubo import PinatuboSystem
from repro.memsim.geometry import MemoryGeometry
from repro.runtime.api import PimRuntime

#: relative tolerance of the span-vs-accounting reconciliation (float
#: summation order differs between the two sides)
RECONCILE_RTOL = 1e-9

_GEOM = MemoryGeometry(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=2,
    subarrays_per_bank=8,
    rows_per_subarray=64,
    mats_per_subarray=1,
    cols_per_mat=2048,
    mux_ratio=8,
)


def _rel_err(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


def _functional_leg() -> PimRuntime:
    """Run a query batch on the PIM-resident FastBit index."""
    table = synthetic_star_table(
        2048,
        columns=(
            ColumnSpec("energy", 16, "exponential"),
            ColumnSpec("charge", 8, "normal"),
        ),
        seed=5,
    )
    runtime = PimRuntime(PinatuboSystem.pcm(geometry=_GEOM))
    db = PimFastBit(runtime, table)
    queries = [
        RangeQuery((("energy", 0, 3),)),
        RangeQuery((("energy", 4, 11), ("charge", 0, 3))),
        RangeQuery((("energy", 0, 15), ("charge", 2, 5))),
    ]
    db.query_many(queries)
    return runtime


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fig10 workload scale (1.0 = paper size)")
    parser.add_argument("--out", default="fig10_trace.json",
                        help="Chrome trace-event JSON output path")
    args = parser.parse_args(argv)

    telemetry.configure(enabled=True)
    telemetry.reset()

    # leg 1: controller leaf spans vs the ExecutionStats-fed accounting.
    # Reconcile before the pricing sweep: some Fig. 10 baselines drive
    # the functional simulator too, and their controller spans would
    # otherwise be charged against this runtime.
    runtime = _functional_leg()
    controller_energy = sum(
        s["energy_j"]
        for name, s in telemetry.aggregate()["spans"].items()
        if name.startswith("memsim.controller.")
    )
    accounted_energy = runtime.total_energy()
    func_err = _rel_err(controller_energy, accounted_energy)

    fig10_data(args.scale)
    spans = telemetry.aggregate()["spans"]

    # leg 2: trace-pricing spans vs the re-summed WorkloadCosts
    priced_energy = sum(
        cost.total_energy + ref.total_energy
        for per_scheme in _priced(args.scale).values()
        for cost, ref in per_scheme.values()
    )
    span_priced_energy = spans["workloads.trace.price"]["energy_j"]
    price_err = _rel_err(span_priced_energy, priced_energy)

    trace = telemetry.export_chrome_trace(args.out)
    json.loads(json.dumps(trace))  # the export must be valid JSON

    print(f"functional leg: controller spans {controller_energy:.6e} J "
          f"vs accounting {accounted_energy:.6e} J (rel err {func_err:.2e})")
    print(f"pricing leg:    price spans {span_priced_energy:.6e} J "
          f"vs workload costs {priced_energy:.6e} J (rel err {price_err:.2e})")
    print(f"wrote {len(trace['traceEvents'])} trace events to {args.out}")

    if func_err > RECONCILE_RTOL or price_err > RECONCILE_RTOL:
        print("RECONCILIATION FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
