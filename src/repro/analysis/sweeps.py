"""Parameter-sensitivity sweeps over the architecture's knobs.

Research use of this repo quickly reaches "what if tWR halved?" or
"how far does the ON/OFF ratio have to fall before multi-row dies?".
This module provides a small generic sweep runner plus canned sweeps for
the knobs DESIGN.md calls out: cell contrast, write latency, mux ratio,
and activation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.core.model import PinatuboModel
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.margin import margin_analysis
from repro.nvm.technology import get_technology


@dataclass(frozen=True)
class SweepPoint:
    """One sampled knob value and its measured metrics."""

    value: float
    metrics: dict


@dataclass
class Sweep:
    """A named series of sweep points."""

    name: str
    parameter: str
    points: list = field(default_factory=list)

    def metric(self, key: str) -> List[float]:
        """One metric's series, in sweep order."""
        return [p.metrics[key] for p in self.points]

    def values(self) -> List[float]:
        return [p.value for p in self.points]

    def is_monotone(self, key: str, increasing: bool = True) -> bool:
        series = self.metric(key)
        pairs = zip(series, series[1:])
        if increasing:
            return all(a <= b for a, b in pairs)
        return all(a >= b for a, b in pairs)

    def table(self) -> str:
        """Aligned text rendering."""
        if not self.points:
            return f"{self.name}: (empty)"
        keys = list(self.points[0].metrics)
        lines = [self.name]
        header = f"{self.parameter:>14s} " + " ".join(f"{k:>14s}" for k in keys)
        lines.append(header)
        for p in self.points:
            row = f"{p.value:>14.4g} "
            row += " ".join(f"{p.metrics[k]:>14.4g}" for k in keys)
            lines.append(row)
        return "\n".join(lines)


def run_sweep(
    name: str,
    parameter: str,
    values,
    measure: Callable[[float], dict],
) -> Sweep:
    """Evaluate ``measure`` at each knob value."""
    values = list(values)
    if not values:
        raise ValueError("sweep needs at least one value")
    sweep = Sweep(name=name, parameter=parameter)
    for value in values:
        metrics = measure(value)
        if not isinstance(metrics, dict) or not metrics:
            raise ValueError("measure must return a non-empty dict")
        sweep.points.append(SweepPoint(value=value, metrics=metrics))
    return sweep


# ---------------------------------------------------------------------------
# canned sweeps
# ---------------------------------------------------------------------------


def on_off_ratio_sweep(ratios=(3, 10, 30, 100, 300, 1000, 3000)) -> Sweep:
    """Cell contrast vs multi-row budget (the technology lever)."""
    base = get_technology("pcm")

    def measure(ratio):
        tech = base.scaled(r_high=base.r_low * ratio, tcam_row_limit=1 << 20)
        analysis = margin_analysis(tech)
        return {
            "electrical_or_limit": analysis.electrical_or_limit(),
            "and_feasible": float(analysis.and_feasible(2)),
        }

    return run_sweep("ON/OFF ratio vs fan-in budget", "on_off", ratios, measure)


def write_time_sweep(
    factors=(0.25, 0.5, 1.0, 2.0), op=("or", 2, 1 << 19)
) -> Sweep:
    """tWR scaling vs op latency (writes dominate small Pinatubo ops)."""
    base = get_technology("pcm")
    op_name, n, bits = op

    def measure(factor):
        tech = base.scaled(write_time=base.write_time * factor)
        model = PinatuboModel(technology=tech)
        cost = model.bitwise_cost(op_name, n, bits)
        return {"latency_us": cost.latency * 1e6, "energy_nj": cost.energy * 1e9}

    return run_sweep("tWR scaling vs 2-row OR", "twr_factor", factors, measure)


def activate_time_sweep(factors=(0.5, 1.0, 2.0, 4.0)) -> Sweep:
    """tRCD scaling vs multi-row op latency (one activation per operand
    row would make tRCD dominant; the latched LWL makes it one-time)."""
    base = get_technology("pcm")

    def measure(factor):
        tech = base.scaled(activate_time=base.activate_time * factor)
        model = PinatuboModel(technology=tech)
        cost = model.bitwise_cost("or", 128, 1 << 19)
        return {"latency_us": cost.latency * 1e6}

    return run_sweep("tRCD scaling vs 128-row OR", "trcd_factor", factors, measure)


def mux_ratio_sweep(ratios=(8, 16, 32, 64)) -> Sweep:
    """Column-mux sharing vs full-row op latency (Fig. 9 point A knob)."""

    def measure(ratio):
        geometry = MemoryGeometry(mux_ratio=int(ratio))
        model = PinatuboModel(geometry=geometry)
        cost = model.bitwise_cost("or", 2, geometry.row_bits)
        return {
            "latency_us": cost.latency * 1e6,
            "sense_steps": geometry.sense_steps_for_bits(geometry.row_bits),
        }

    return run_sweep("SA mux ratio vs full-row OR", "mux_ratio", ratios, measure)
