"""Data builders for every figure in the paper's evaluation.

Experiment index (DESIGN.md Section 4):

- E1  :func:`fig5_data`   reference placement / sensing margins
- E2  :func:`fig6_data`   CSA transient validation
- E3  :func:`fig7_data`   LWL driver transient validation
- E4  :func:`fig9_data`   OR-operation throughput sweep
- E5  :func:`fig10_data`  bitwise speedup vs SIMD per benchmark
- E6  :func:`fig11_data`  bitwise energy saving vs SIMD per benchmark
- E7  :func:`fig12_data`  overall application speedup / energy saving
- E8  :func:`fig13_data`  area overhead and breakdown
- E11 :func:`headline_numbers`  the abstract's headline ratios
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional

from repro.apps.bfs import bitmap_bfs_trace
from repro.apps.fastbit import FastBitDB
from repro.apps.graphs import amazon_like, dblp_like, eswiki_like
from repro.apps.star import synthetic_star_table
from repro.apps.vectorbench import vector_trace
from repro.backends import SystemConfig, build_system
from repro.circuits.csa_sim import CSATransientSim
from repro.circuits.lwl_sim import LWLDriverSim
from repro.circuits.validate import validate_csa_corners
from repro.core.pinatubo import PinatuboSystem
from repro.energy.area import AreaModel
from repro.nvm.margin import MarginAnalysis
from repro.nvm.technology import get_technology
from repro.workloads.spec import PAPER_VECTOR_SPECS


def geomean(values) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# circuit-level experiments (E1-E3)
# ---------------------------------------------------------------------------


def fig5_data(technology_name: str = "pcm", n_rows: int = 2) -> dict:
    """Reference placement + margin limits (paper Fig. 5 and Section 4.2)."""
    tech = get_technology(technology_name)
    analysis = MarginAnalysis(tech)
    cases = analysis.figure5_cases(n_rows)
    return {
        "technology": tech.name,
        "cases": cases,
        "max_or_rows": analysis.max_or_rows(),
        "electrical_or_limit": analysis.electrical_or_limit(),
        "and_feasible": analysis.and_feasible(2),
        "or_margins_log": {
            n: analysis.or_margin_log(n) for n in (2, 8, 32, 128)
        },
    }


def fig6_data(technology_name: str = "pcm", monte_carlo: int = 5) -> dict:
    """CSA waveform sequence + corner validation (paper Fig. 6)."""
    tech = get_technology(technology_name)
    sim = CSATransientSim(tech)
    sequence = sim.figure6_sequence()
    report = validate_csa_corners(tech, monte_carlo=monte_carlo, or_rows=128)
    return {
        "technology": tech.name,
        "sequence": [
            {"mode": e["mode"].value, "a": e["a"], "b": e["b"], "bit": e["bit"]}
            for e in sequence
        ],
        "corner_report": report,
    }


def fig7_data(n_rows: int = 8) -> dict:
    """LWL driver multi-row latch transient (paper Fig. 7)."""
    sim = LWLDriverSim(n_rows=max(16, n_rows * 2))
    rows = list(range(n_rows))
    trace = sim.run_sequence(rows)
    return {
        "activated": rows,
        "latched": list(trace.latched_rows),
        "all_latched": tuple(rows) == trace.latched_rows,
        "trace": trace,
    }


# ---------------------------------------------------------------------------
# throughput sweep (E4)
# ---------------------------------------------------------------------------


def fig9_data(
    log_lengths=range(10, 21),
    row_counts=(2, 4, 8, 16, 32, 64, 128),
) -> dict:
    """OR throughput (GBps) over vector length x multi-row count."""
    reference = PinatuboSystem.pcm()
    series = {}
    for n in row_counts:
        points = []
        for log_len in log_lengths:
            system = PinatuboSystem.pcm()
            acct = system.or_throughput(1 << log_len, n)
            points.append((log_len, acct.throughput_gbps))
        series[n] = points
    return {
        "series": series,
        "ddr_bus_gbps": reference.ddr_bus_bandwidth / 1e9,
        "internal_gbps": reference.internal_bandwidth / 1e9,
    }


# ---------------------------------------------------------------------------
# workload benchmarks (E5-E7)
# ---------------------------------------------------------------------------

#: paper-scale defaults: node counts of dblp-2010 / eswiki-2013 /
#: amazon-2008 (the synthetic generators match their looseness)
GRAPH_SIZES = {"dblp": 326186, "eswiki": 972933, "amazon": 735323}
FASTBIT_EVENTS = 1 << 22
FASTBIT_QUERIES = (240, 480, 720)

_GRAPH_GENERATORS = {
    "dblp": dblp_like,
    "eswiki": eswiki_like,
    "amazon": amazon_like,
}


#: The evaluation matrix, declaratively: scheme name -> (scheme config,
#: SIMD reference config).  Per the paper, the SIMD processor runs on
#: DRAM when compared against S-DRAM and on PCM when compared against
#: AC-PIM / Pinatubo.  Everything below resolves these through the
#: backend registry (:func:`repro.backends.build_system`).
SCHEME_CONFIGS = {
    "S-DRAM": (
        SystemConfig(backend="sdram", geometry="dram"),
        SystemConfig(backend="simd", cpu_memory="dram"),
    ),
    "AC-PIM": (
        SystemConfig(backend="acpim"),
        SystemConfig(backend="simd", cpu_memory="pcm"),
    ),
    "Pinatubo-2": (
        SystemConfig(backend="pinatubo", max_rows=2),
        SystemConfig(backend="simd", cpu_memory="pcm"),
    ),
    "Pinatubo-128": (
        SystemConfig(backend="pinatubo"),
        SystemConfig(backend="simd", cpu_memory="pcm"),
    ),
    "Ideal": (
        SystemConfig(backend="ideal"),
        SystemConfig(backend="simd", cpu_memory="pcm"),
    ),
}


def standard_schemes() -> dict:
    """The four evaluated schemes plus their SIMD references and Ideal.

    Each entry is ``name -> (backend, simd_reference_backend)``, built
    from :data:`SCHEME_CONFIGS` through the backend registry.
    """
    return {
        name: (build_system(config), build_system(ref))
        for name, (config, ref) in SCHEME_CONFIGS.items()
    }


@lru_cache(maxsize=8)
def workload_traces(scale: float = 1.0, seed: Optional[int] = None) -> dict:
    """All evaluation traces: Vector specs, graphs, FastBit query loads.

    ``scale`` < 1 shrinks the app datasets for quick runs (benchmarks use
    1.0; tests use smaller scales).  ``seed`` re-seeds every synthetic
    generator (graphs, star table, query mix) for sensitivity runs; the
    default ``None`` keeps each generator's canonical fixed seed, which
    is what the paper-number figures use.
    """
    traces = {}
    for spec in PAPER_VECTOR_SPECS:
        traces[f"vector:{spec}"] = vector_trace(spec)
    for i, (name, gen) in enumerate(_GRAPH_GENERATORS.items()):
        n = max(1024, int(GRAPH_SIZES[name] * scale))
        kwargs = {} if seed is None else {"seed": seed + i}
        traces[f"graph:{name}"] = bitmap_bfs_trace(gen(n=n, **kwargs), 0).trace
    table_kwargs = {} if seed is None else {"seed": seed + 100}
    table = synthetic_star_table(
        max(4096, int(FASTBIT_EVENTS * scale)), **table_kwargs
    )
    db = FastBitDB(table, functional=False)
    query_kwargs = {} if seed is None else {"seed": seed + 200}
    for q in FASTBIT_QUERIES:
        traces[f"fastbit:{q}"] = db.run_workload(q, **query_kwargs)
    return traces


@lru_cache(maxsize=8)
def _priced(scale: float = 1.0, seed: Optional[int] = None) -> dict:
    """{workload: {scheme: (WorkloadCost scheme, WorkloadCost simd_ref)}}"""
    traces = workload_traces(scale, seed)
    schemes = standard_schemes()
    out = {}
    for wname, trace in traces.items():
        per_scheme = {}
        for sname, (scheme, simd_ref) in schemes.items():
            per_scheme[sname] = (trace.price(scheme), trace.price(simd_ref))
        out[wname] = per_scheme
    return out


def fig10_data(scale: float = 1.0) -> dict:
    """Bitwise-operation speedup over SIMD, per benchmark and scheme."""
    data = {}
    for wname, per_scheme in _priced(scale).items():
        data[wname] = {}
        for sname, (cost, ref) in per_scheme.items():
            if sname == "Ideal":
                continue
            if cost.bitwise_latency <= 0:
                data[wname][sname] = float("inf")
            else:
                data[wname][sname] = ref.bitwise_latency / cost.bitwise_latency
    data["gmean"] = {
        sname: geomean(
            row[sname] for w, row in data.items() if w != "gmean"
        )
        for sname in next(iter(data.values()))
    }
    return data


def fig11_data(scale: float = 1.0) -> dict:
    """Bitwise-operation energy saving over SIMD, per benchmark/scheme."""
    data = {}
    for wname, per_scheme in _priced(scale).items():
        data[wname] = {}
        for sname, (cost, ref) in per_scheme.items():
            if sname == "Ideal":
                continue
            if cost.bitwise_energy <= 0:
                data[wname][sname] = float("inf")
            else:
                data[wname][sname] = ref.bitwise_energy / cost.bitwise_energy
    data["gmean"] = {
        sname: geomean(
            row[sname] for w, row in data.items() if w != "gmean"
        )
        for sname in next(iter(data.values()))
    }
    return data


def fig12_data(scale: float = 1.0) -> dict:
    """Overall application speedup and energy saving (graph + fastbit).

    The non-bitwise part runs on the host in every scheme, so this is the
    Amdahl picture; Ideal is the zero-cost-bitwise ceiling.
    """
    apps = [
        w for w in workload_traces(scale) if w.startswith(("graph:", "fastbit:"))
    ]
    priced = _priced(scale)
    speedup = {}
    energy = {}
    for wname in apps:
        speedup[wname] = {}
        energy[wname] = {}
        for sname, (cost, ref) in priced[wname].items():
            speedup[wname][sname] = ref.total_latency / cost.total_latency
            energy[wname][sname] = ref.total_energy / cost.total_energy
    schemes = list(next(iter(speedup.values())))
    graph_apps = [w for w in apps if w.startswith("graph:")]
    fastbit_apps = [w for w in apps if w.startswith("fastbit:")]
    gmeans = {}
    for label, group in (
        ("graph", graph_apps),
        ("fastbit", fastbit_apps),
        ("all", apps),
    ):
        gmeans[label] = {
            "speedup": {
                s: geomean(speedup[w][s] for w in group) for s in schemes
            },
            "energy": {
                s: geomean(energy[w][s] for w in group) for s in schemes
            },
        }
    return {"speedup": speedup, "energy": energy, "gmeans": gmeans}


# ---------------------------------------------------------------------------
# area (E8) and headline (E11)
# ---------------------------------------------------------------------------


def fig13_data() -> dict:
    """Area overhead totals and Pinatubo's component breakdown."""
    model = AreaModel()
    pinatubo = model.pinatubo()
    acpim = model.acpim()
    return {
        "pinatubo_fraction": pinatubo.overhead_fraction,
        "acpim_fraction": acpim.overhead_fraction,
        "pinatubo_breakdown": pinatubo.breakdown(),
        "acpim_breakdown": acpim.breakdown(),
        "intra_subarray_fraction": model.intra_subarray_fraction(),
    }


def headline_numbers(scale: float = 1.0) -> dict:
    """The abstract's four headline ratios, as measured by this repo."""
    fig10 = fig10_data(scale)
    fig11 = fig11_data(scale)
    fig12 = fig12_data(scale)
    return {
        "bitwise_speedup": fig10["gmean"]["Pinatubo-128"],
        "bitwise_energy_saving": fig11["gmean"]["Pinatubo-128"],
        "overall_speedup": fig12["gmeans"]["all"]["speedup"]["Pinatubo-128"],
        "overall_energy_saving": fig12["gmeans"]["all"]["energy"]["Pinatubo-128"],
        "paper": {
            "bitwise_speedup": 500.0,
            "bitwise_energy_saving": 28000.0,
            "overall_speedup": 1.12,
            "overall_energy_saving": 1.11,
        },
    }
