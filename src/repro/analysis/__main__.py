"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.analysis               # full paper-scale run
    python -m repro.analysis --scale 0.05  # quick pass
    python -m repro.analysis --figure 9    # one figure only
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import (
    fig5_data,
    fig6_data,
    fig7_data,
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    headline_numbers,
)
from repro.analysis.report import (
    format_series,
    format_speedup_table,
    render_report,
)


def _print_fig5() -> None:
    data = fig5_data("pcm")
    print(f"Fig. 5 -- {data['technology']}: max OR rows "
          f"{data['max_or_rows']} (electrical {data['electrical_or_limit']}), "
          f"2-row AND {'feasible' if data['and_feasible'] else 'infeasible'}")


def _print_fig6() -> None:
    data = fig6_data("pcm", monte_carlo=0)
    report = data["corner_report"]
    print(f"Fig. 6 -- CSA corner validation: "
          f"{report.n_pass}/{report.n_cases} pass")


def _print_fig7() -> None:
    data = fig7_data(8)
    print(f"Fig. 7 -- LWL latch: activated {len(data['activated'])} rows, "
          f"all latched: {data['all_latched']}")


def _print_fig9() -> None:
    data = fig9_data()
    print(format_series(
        "Fig. 9 -- OR throughput (GBps)",
        {f"{n}-row": pts for n, pts in data["series"].items()},
        x_label="len",
    ))


def _print_fig10(scale: float) -> None:
    print(format_speedup_table(
        "Fig. 10 -- bitwise speedup over SIMD", fig10_data(scale)
    ))


def _print_fig11(scale: float) -> None:
    print(format_speedup_table(
        "Fig. 11 -- bitwise energy saving over SIMD", fig11_data(scale)
    ))


def _print_fig12(scale: float) -> None:
    data = fig12_data(scale)
    print(format_speedup_table("Fig. 12 -- overall speedup", data["speedup"]))
    print(format_speedup_table("Fig. 12 -- overall energy saving", data["energy"]))


def _print_fig13() -> None:
    data = fig13_data()
    print(f"Fig. 13 -- area: Pinatubo {data['pinatubo_fraction'] * 100:.2f}% "
          f"vs AC-PIM {data['acpim_fraction'] * 100:.2f}%")
    for component, fraction in data["pinatubo_breakdown"].items():
        print(f"    {component:>12s}: {fraction * 100:.3f}%")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the Pinatubo paper's evaluation figures.",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale for the workload figures (default 1.0)")
    parser.add_argument("--figure", type=int, choices=(5, 6, 7, 9, 10, 11, 12, 13),
                        help="regenerate one figure only")
    parser.add_argument("--scorecard", action="store_true",
                        help="evaluate the paper-claim scorecard and exit")
    args = parser.parse_args(argv)

    if args.scorecard:
        from repro.analysis.scorecard import build_scorecard

        card = build_scorecard(scale=min(args.scale, 0.05))
        print(card.render())
        return 0 if card.all_hold else 1

    printers = {
        5: lambda: _print_fig5(),
        6: lambda: _print_fig6(),
        7: lambda: _print_fig7(),
        9: lambda: _print_fig9(),
        10: lambda: _print_fig10(args.scale),
        11: lambda: _print_fig11(args.scale),
        12: lambda: _print_fig12(args.scale),
        13: lambda: _print_fig13(),
    }
    if args.figure is not None:
        printers[args.figure]()
        return 0
    for fig in (5, 6, 7, 9, 10, 11, 12, 13):
        printers[fig]()
        print()
    print(render_report(headline_numbers(args.scale), fig13_data()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
