"""Figure/table regeneration (the per-experiment index of DESIGN.md).

Each ``figN_data`` function rebuilds the data series behind one paper
artifact; :mod:`repro.analysis.report` renders them as text tables.  The
benchmarks under ``benchmarks/`` are thin wrappers around these builders.
"""

from repro.analysis.figures import (
    fig5_data,
    fig6_data,
    fig7_data,
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    headline_numbers,
    geomean,
    standard_schemes,
    workload_traces,
)
from repro.analysis.report import format_series, format_speedup_table, render_report
from repro.analysis.sweeps import (
    Sweep,
    SweepPoint,
    run_sweep,
    on_off_ratio_sweep,
    write_time_sweep,
    activate_time_sweep,
    mux_ratio_sweep,
)

__all__ = [
    "Sweep",
    "SweepPoint",
    "run_sweep",
    "on_off_ratio_sweep",
    "write_time_sweep",
    "activate_time_sweep",
    "mux_ratio_sweep",
    "fig5_data",
    "fig6_data",
    "fig7_data",
    "fig9_data",
    "fig10_data",
    "fig11_data",
    "fig12_data",
    "fig13_data",
    "headline_numbers",
    "geomean",
    "standard_schemes",
    "workload_traces",
    "format_series",
    "format_speedup_table",
    "render_report",
]
