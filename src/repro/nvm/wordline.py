"""Local-wordline (LWL) driver with the Pinatubo multi-row activation latch.

A conventional LWL driver simply amplifies the decoded address, so exactly
one wordline is high at a time.  Pinatubo adds two transistors per driver
(paper Fig. 7): one feeds the signal between the driver's inverters back to
form a latch, the other forces the driver input to ground on RESET.  The
protocol is:

1. controller sends RESET -- all latches clear, no WL high;
2. controller issues row addresses one at a time -- each decoded WL latches
   and *stays* at VDD;
3. after the last address, all selected wordlines are high simultaneously
   and sensing may begin.

This module is the behavioural model (state machine + cost); the transient
electrical validation is :mod:`repro.circuits.lwl_sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


class WordlineError(RuntimeError):
    """Protocol violation in the multi-row activation sequence."""


@dataclass
class ActivationCost:
    """Latency/energy of an activation sequence."""

    latency: float  # s
    energy: float  # J


@dataclass
class LocalWordlineDriver:
    """State machine for one mat's LWL drivers.

    Parameters
    ----------
    n_rows:
        Number of wordlines driven.
    max_open_rows:
        Technology sensing limit (from :func:`repro.nvm.margin.max_multirow_or`);
        latching more rows than the SA can discriminate is rejected.
    activate_time:
        Row activation latency (the technology's tRCD component); the first
        activation pays it in full, subsequent latched activations overlap
        decode with the already-open rows and pay ``address_issue_time``.
    address_issue_time:
        Per-additional-address decode/latch time (one command slot).
    wl_energy:
        Energy to swing one wordline (J).
    """

    n_rows: int
    max_open_rows: int = 1
    activate_time: float = 18.3e-9
    address_issue_time: float = 1.25e-9
    wl_energy: float = 0.5e-12
    _latched: set = field(default_factory=set, repr=False)
    _reset_done: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        if self.max_open_rows < 1:
            raise ValueError("max_open_rows must be >= 1")

    # -- protocol ------------------------------------------------------------

    def reset(self) -> ActivationCost:
        """RESET pulse: clear every latch (start of a multi-row sequence)."""
        self._latched.clear()
        self._reset_done = True
        return ActivationCost(latency=self.address_issue_time, energy=self.wl_energy)

    def activate(self, row: int) -> ActivationCost:
        """Decode and latch one row address."""
        if not 0 <= row < self.n_rows:
            raise WordlineError(f"row {row} out of range [0, {self.n_rows})")
        if not self._reset_done:
            raise WordlineError("activate before RESET: latches hold stale rows")
        if row in self._latched:
            raise WordlineError(f"row {row} already latched")
        if len(self._latched) >= self.max_open_rows:
            raise WordlineError(
                f"cannot latch more than {self.max_open_rows} rows "
                f"(technology sensing limit)"
            )
        first = not self._latched
        self._latched.add(row)
        latency = self.activate_time if first else self.address_issue_time
        return ActivationCost(latency=latency, energy=self.wl_energy)

    def activate_many(self, rows) -> ActivationCost:
        """RESET followed by latching each row in ``rows``; total cost."""
        total = self.reset()
        for row in rows:
            cost = self.activate(row)
            total = ActivationCost(
                latency=total.latency + cost.latency,
                energy=total.energy + cost.energy,
            )
        return total

    def precharge(self) -> ActivationCost:
        """Close all open rows (end of the operation)."""
        cost = ActivationCost(
            latency=self.address_issue_time,
            energy=self.wl_energy * max(1, len(self._latched)),
        )
        self._latched.clear()
        self._reset_done = False
        return cost

    # -- inspection ------------------------------------------------------------

    @property
    def open_rows(self) -> Tuple[int, ...]:
        """Currently latched (high) wordlines, sorted."""
        return tuple(sorted(self._latched))

    @property
    def n_open(self) -> int:
        return len(self._latched)
