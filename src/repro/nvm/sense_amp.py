"""Current sense amplifier (CSA) with the Pinatubo reference modifications.

A normal NVM read compares the bitline resistance against a single read
reference.  Pinatubo's key circuit change (paper Fig. 5/6) adds selectable
reference circuits so the same CSA can resolve:

- READ:   R_BL vs Rref-read  (between R_low and R_high)
- OR(n):  R_BL vs Rref-or(n) (between R_low||R_high/(n-1) and R_high/n)
- AND(2): R_BL vs Rref-and   (between R_low/2 and R_low||R_high)
- XOR(2): two micro-steps -- first operand sampled onto capacitor Ch,
          second operand read into the latch, two add-on transistors
          produce the exclusive-or of the two sensed values.
- INV:    the latch's differential (complement) output.

This module is the *behavioural* model used by the functional array and the
timing/energy stack; the transient electrical validation of the same circuit
lives in :mod:`repro.circuits.csa_sim`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nvm.cell import composite_or_case
from repro.nvm.technology import NVMTechnology, geometric_mean_resistance


class SenseMode(enum.Enum):
    """Selectable CSA operating modes (the paper's MUX inputs)."""

    READ = "read"
    OR = "or"
    AND = "and"
    XOR = "xor"
    INV = "inv"


class ReferenceScheme:
    """Computes the per-mode reference resistance for a technology.

    References are placed at the geometric midpoint of the two closest
    composite-resistance cases, which balances the log-domain margin
    (current sensing is ratiometric).
    """

    def __init__(self, technology: NVMTechnology):
        self.technology = technology

    def read_reference(self) -> float:
        """Rref-read: between a single LRS and a single HRS cell."""
        t = self.technology
        return geometric_mean_resistance(t.r_low, t.r_high)

    def or_reference(self, n_rows: int) -> float:
        """Rref-or(n): separates "exactly one 1" from "all 0" among n rows.

        Worst "1" case: one LRS in parallel with (n-1) HRS cells.
        Worst "0" case: n HRS cells in parallel.
        """
        if n_rows < 2:
            raise ValueError("OR sensing requires at least 2 open rows")
        t = self.technology
        r_one = composite_or_case(t.r_low, t.r_high, n_rows, 1)
        r_zero = composite_or_case(t.r_low, t.r_high, n_rows, 0)
        return geometric_mean_resistance(r_one, r_zero)

    def and_reference(self, n_rows: int = 2) -> float:
        """Rref-and: separates "all 1" from "at least one 0" (2 rows only).

        Multi-row AND beyond 2 rows is unsupported: R_low/(n-1) || R_high
        and R_low/n converge as n grows (paper footnote 3).
        """
        if n_rows != 2:
            raise ValueError("AND sensing is only supported for 2 rows")
        t = self.technology
        r_all_ones = composite_or_case(t.r_low, t.r_high, 2, 2)  # R_low/2
        r_one_zero = composite_or_case(t.r_low, t.r_high, 2, 1)  # R_low||R_high
        return geometric_mean_resistance(r_all_ones, r_one_zero)

    def reference_for(self, mode: SenseMode, n_rows: int) -> float:
        """Reference resistance for a single-micro-step sensing mode."""
        if mode is SenseMode.READ or mode is SenseMode.INV or mode is SenseMode.XOR:
            return self.read_reference()
        if mode is SenseMode.OR:
            return self.or_reference(n_rows)
        if mode is SenseMode.AND:
            return self.and_reference(n_rows)
        raise ValueError(f"unknown sense mode: {mode}")


@dataclass
class SenseResult:
    """Outcome of one CSA sensing operation over a column group."""

    bits: np.ndarray  # uint8 sensed outputs, one per SA
    micro_steps: int  # 1 for READ/OR/AND/INV, 2 for XOR
    latency: float  # s
    energy: float  # J (all SAs in the group)


class CurrentSenseAmplifier:
    """Behavioural CSA bank: one logical instance models a group of SAs.

    Parameters
    ----------
    technology:
        The NVM technology whose resistances are sensed.
    xor_capable:
        Whether the Ch capacitor + add-on transistor pair is present
        (it is in Pinatubo; dropping it models the area-reduced variant).
    """

    #: Extra energy factor per additional reference circuit actively biased.
    _REFERENCE_ENERGY_FACTOR = 0.10

    def __init__(self, technology: NVMTechnology, xor_capable: bool = True):
        self.technology = technology
        self.references = ReferenceScheme(technology)
        self.xor_capable = xor_capable

    # -- single-step compare ------------------------------------------------

    def _compare(self, r_bitline: np.ndarray, r_reference: float) -> np.ndarray:
        """Core current comparison: cell current above reference -> "1".

        Lower bitline resistance means higher cell current than the
        reference branch, which resolves the latch to logic "1".
        """
        r = np.asarray(r_bitline, dtype=float)
        if np.any(r <= 0):
            raise ValueError("bitline resistances must be positive")
        return (r < r_reference).astype(np.uint8)

    def _step_cost(self, n_sas: int, extra_refs: int = 0) -> Tuple[float, float]:
        t = self.technology
        energy = n_sas * t.cell_read_energy * (
            1.0 + self._REFERENCE_ENERGY_FACTOR * extra_refs
        )
        return t.sense_time, energy

    # -- public sensing modes -------------------------------------------------

    def sense_read(self, r_bitline: np.ndarray) -> SenseResult:
        """Normal read: one cell per bitline vs Rref-read."""
        bits = self._compare(r_bitline, self.references.read_reference())
        latency, energy = self._step_cost(bits.size)
        return SenseResult(bits, 1, latency, energy)

    def sense_or(self, r_bitline: np.ndarray, n_rows: int) -> SenseResult:
        """n-row OR: parallel bitline resistance vs Rref-or(n)."""
        bits = self._compare(r_bitline, self.references.or_reference(n_rows))
        latency, energy = self._step_cost(bits.size, extra_refs=1)
        return SenseResult(bits, 1, latency, energy)

    def sense_and(self, r_bitline: np.ndarray, n_rows: int = 2) -> SenseResult:
        """2-row AND: parallel bitline resistance vs Rref-and."""
        bits = self._compare(r_bitline, self.references.and_reference(n_rows))
        latency, energy = self._step_cost(bits.size, extra_refs=1)
        return SenseResult(bits, 1, latency, energy)

    def sense_xor(
        self, r_bitline_a: np.ndarray, r_bitline_b: np.ndarray
    ) -> SenseResult:
        """2-row XOR via two micro-steps (Ch capacitor then latch)."""
        if not self.xor_capable:
            raise RuntimeError("this CSA variant has no XOR circuitry")
        ref = self.references.read_reference()
        first = self._compare(r_bitline_a, ref)  # sampled onto Ch
        second = self._compare(r_bitline_b, ref)  # resolved in the latch
        bits = np.bitwise_xor(first, second)
        lat1, en1 = self._step_cost(bits.size)
        lat2, en2 = self._step_cost(bits.size)
        return SenseResult(bits, 2, lat1 + lat2, en1 + en2)

    def sense_inv(self, r_bitline: np.ndarray) -> SenseResult:
        """INV: differential latch output of a normal read."""
        read = self._compare(r_bitline, self.references.read_reference())
        bits = (1 - read).astype(np.uint8)
        latency, energy = self._step_cost(bits.size)
        return SenseResult(bits, 1, latency, energy)

    # -- margin helper -------------------------------------------------------

    def log_margin_or(self, n_rows: int) -> float:
        """Log-domain distance between the closest OR cases at n rows.

        Shrinks as ``ln((K + n - 1) / n)`` where K is the ON/OFF ratio;
        the margin analysis checks it against the variation corners.
        """
        t = self.technology
        r_one = composite_or_case(t.r_low, t.r_high, n_rows, 1)
        r_zero = composite_or_case(t.r_low, t.r_high, n_rows, 0)
        return math.log(r_zero / r_one)
