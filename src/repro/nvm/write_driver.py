"""Write driver (WD) with the Pinatubo in-place update bypass.

A conventional WD takes its input from the data bus.  Pinatubo adds a mux
so the sense-amplifier output can feed the WD directly (paper Fig. 8a):
after an intra-subarray operation, the result row is programmed locally
without ever touching the global data lines or the DDR bus.

The driver models both write polarities: PCM is unipolar (single current
direction, different SET/RESET magnitudes); ReRAM/STT-MRAM are bipolar
(current reversed between BL and SL sides).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.nvm.technology import NVMTechnology


class WriteSource(enum.Enum):
    """Where the WD input comes from."""

    DATA_BUS = "data_bus"  # conventional path
    SENSE_AMP = "sense_amp"  # Pinatubo in-place update bypass


@dataclass
class WriteCost:
    """Latency/energy of programming one row segment."""

    latency: float  # s
    energy: float  # J
    bits_set: int  # cells programmed to LRS
    bits_reset: int  # cells programmed to HRS
    bits_unchanged: int  # cells skipped (differential write)


class WriteDriver:
    """Behavioural model of one mat's write drivers.

    Uses differential write (write-verify style): only cells whose stored
    bit changes are pulsed, which is standard practice for NVM endurance
    and energy.  SET and RESET groups are pulsed in parallel banks, so row
    latency is one write_time regardless of data.
    """

    def __init__(self, technology: NVMTechnology):
        self.technology = technology

    def program(
        self,
        old_bits: np.ndarray,
        new_bits: np.ndarray,
        source: WriteSource = WriteSource.DATA_BUS,
    ) -> WriteCost:
        """Cost of programming ``new_bits`` over ``old_bits``.

        The in-place (SENSE_AMP) path has identical array cost but skips
        the bus transfer, which the caller accounts separately; we model
        a small mux overhead here as zero-latency (it is one gate).
        """
        old = np.asarray(old_bits).astype(np.uint8)
        new = np.asarray(new_bits).astype(np.uint8)
        if old.shape != new.shape:
            raise ValueError("old/new bit rows must have the same shape")
        changed = old != new
        sets = int(np.count_nonzero(changed & (new == 1)))
        resets = int(np.count_nonzero(changed & (new == 0)))
        t = self.technology
        energy = sets * t.cell_set_energy + resets * t.cell_reset_energy
        latency = t.write_time if (sets or resets) else 0.0
        return WriteCost(
            latency=latency,
            energy=energy,
            bits_set=sets,
            bits_reset=resets,
            bits_unchanged=int(old.size - sets - resets),
        )

    def full_row_cost(self, row_bits: int) -> WriteCost:
        """Pessimistic cost bound: every cell pulsed (used by the timing
        stack when data is not tracked, e.g. analytical sweeps)."""
        t = self.technology
        # On random data half the cells SET, half RESET.
        sets = row_bits // 2
        resets = row_bits - sets
        return WriteCost(
            latency=t.write_time,
            energy=sets * t.cell_set_energy + resets * t.cell_reset_energy,
            bits_set=sets,
            bits_reset=resets,
            bits_unchanged=0,
        )
