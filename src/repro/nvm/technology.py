"""Catalog of emerging-NVM cell technologies.

The paper draws cell resistance ranges from the NVMDB technology database
(Suzuki et al., UCSD 2015) and evaluates a 1T1R PCM main memory whose
tRCD-tCL-tWR is 18.3-8.9-151.1 ns (CACTI-3DD-derived).  NVMDB itself is a
report we substitute with the published prototype numbers the paper cites:

- PCM:        De Sandre et al., ISSCC 2010 (90 nm 4 Mb embedded PCM).
- STT-MRAM:   Tsuchida et al., ISSCC 2010 (64 Mb MRAM).
- ReRAM:      Chang et al., JSSC 2013 (the CSA reference design).

Each :class:`NVMTechnology` bundles the electrical, timing, energy and area
parameters the rest of the stack needs.  All values are per-cell /
per-operation nominals; statistical spread is layered on by
:class:`repro.nvm.variation.VariationModel`.

Units follow one convention everywhere: ohms, volts, amps, seconds, joules,
square metres.  Timing aliases in nanoseconds are exposed as ``*_ns``
properties for readability at call sites that mirror the paper's tables.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List


@dataclass(frozen=True)
class WriteScheme:
    """Electrical write behaviour of a resistive cell.

    ``unipolar`` cells (PCM) use a single current polarity with different
    magnitudes/durations for SET and RESET; ``bipolar`` cells (ReRAM,
    STT-MRAM) reverse current direction between SET and RESET, which is why
    their write drivers need both BL- and SL-side current paths
    (see :mod:`repro.nvm.write_driver`).
    """

    polarity: str  # "unipolar" | "bipolar"
    set_current: float  # A
    reset_current: float  # A
    set_pulse: float  # s
    reset_pulse: float  # s

    def __post_init__(self) -> None:
        if self.polarity not in ("unipolar", "bipolar"):
            raise ValueError(f"unknown write polarity: {self.polarity!r}")
        if min(self.set_current, self.reset_current) <= 0:
            raise ValueError("write currents must be positive")
        if min(self.set_pulse, self.reset_pulse) <= 0:
            raise ValueError("write pulses must be positive")

    @property
    def set_energy(self) -> float:
        """Per-cell SET energy at a nominal 1 V write headroom (J)."""
        return self.set_current * self.set_pulse

    @property
    def reset_energy(self) -> float:
        """Per-cell RESET energy at a nominal 1 V write headroom (J)."""
        return self.reset_current * self.reset_pulse


@dataclass(frozen=True)
class NVMTechnology:
    """Parameters of one resistive memory technology node.

    The logic encoding follows the paper: for PCM and ReRAM the
    high-resistance state encodes logic "0" (amorphous / HRS), which is the
    property that makes n-row OR sensing work; STT-MRAM uses the same
    convention here (AP state = "0").
    """

    name: str
    cell_kind: str  # "PCM" | "ReRAM" | "STT-MRAM"
    feature_nm: float  # lithography feature size F in nm
    cell_area_f2: float  # cell footprint in F^2 (1T1R)
    r_low: float  # ohms, logic "1" (LRS / SET / parallel)
    r_high: float  # ohms, logic "0" (HRS / RESET / anti-parallel)
    sigma_log_r_low: float  # lognormal sigma of ln(R) in the LRS state
    sigma_log_r_high: float  # lognormal sigma of ln(R) in the HRS state
    read_voltage: float  # V applied on BL during sensing
    sense_time: float  # s, CSA resolve time (the tCL component)
    activate_time: float  # s, row activation (tRCD component)
    write_time: float  # s, array write (tWR component)
    cell_read_energy: float  # J per sensed cell
    cell_set_energy: float  # J per cell SET
    cell_reset_energy: float  # J per cell RESET
    write: WriteScheme = field(repr=False, default=None)  # type: ignore[assignment]
    endurance: float = 1e8  # write cycles
    tcam_row_limit: int = 128  # max simultaneously-sensed rows proven by
    # published TCAM designs in this technology (paper cites a PCM TCAM
    # with 64-bit WL and 2 cells/bit => 128 cells per match line).

    def __post_init__(self) -> None:
        if self.r_low <= 0 or self.r_high <= 0:
            raise ValueError("cell resistances must be positive")
        if self.r_high <= self.r_low:
            raise ValueError(
                f"{self.name}: r_high ({self.r_high}) must exceed r_low ({self.r_low})"
            )
        if self.sigma_log_r_low < 0 or self.sigma_log_r_high < 0:
            raise ValueError("variation sigmas must be non-negative")
        if self.write is None:
            object.__setattr__(
                self,
                "write",
                WriteScheme(
                    polarity="unipolar",
                    set_current=100e-6,
                    reset_current=200e-6,
                    set_pulse=self.write_time,
                    reset_pulse=self.write_time / 2,
                ),
            )

    # -- derived electrical quantities ------------------------------------

    @property
    def on_off_ratio(self) -> float:
        """Resistance contrast K = r_high / r_low."""
        return self.r_high / self.r_low

    @property
    def read_current_low(self) -> float:
        """Cell current when sensing a logic "1" (LRS) cell (A)."""
        return self.read_voltage / self.r_low

    @property
    def read_current_high(self) -> float:
        """Cell current when sensing a logic "0" (HRS) cell (A)."""
        return self.read_voltage / self.r_high

    @property
    def feature_m(self) -> float:
        return self.feature_nm * 1e-9

    @property
    def cell_area_m2(self) -> float:
        """Physical cell area (m^2) from the F^2 footprint."""
        return self.cell_area_f2 * self.feature_m**2

    # -- timing aliases in ns (match the paper's table style) -------------

    @property
    def trcd_ns(self) -> float:
        return self.activate_time * 1e9

    @property
    def tcl_ns(self) -> float:
        return self.sense_time * 1e9

    @property
    def twr_ns(self) -> float:
        return self.write_time * 1e9

    def scaled(self, **overrides: float) -> "NVMTechnology":
        """Return a copy with selected fields replaced (for sweeps)."""
        return replace(self, **overrides)

    # -- serialisation (custom technologies from config files) -------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, JSON-serialisable."""
        out = asdict(self)
        out["write"] = asdict(self.write)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "NVMTechnology":
        """Rebuild a technology from :meth:`to_dict` output (or a user's
        JSON config).  Unknown keys are rejected loudly."""
        data = dict(data)
        write_data = data.pop("write", None)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown technology fields: {sorted(unknown)}")
        if write_data is not None:
            write_known = {f.name for f in fields(WriteScheme)}
            write_unknown = set(write_data) - write_known
            if write_unknown:
                raise ValueError(
                    f"unknown write-scheme fields: {sorted(write_unknown)}"
                )
            data["write"] = WriteScheme(**write_data)
        return cls(**data)


def _pcm_90nm() -> NVMTechnology:
    """1T1R PCM, the paper's case-study technology.

    Timing anchors are the paper's own: tRCD-tCL-tWR = 18.3-8.9-151.1 ns.
    Resistances follow the 90 nm embedded PCM prototype (LRS ~10 kOhm,
    HRS ~10 MOhm gives the decade-scale contrast PCM TCAMs exploit; we use
    a conservative K = 1000).
    """
    return NVMTechnology(
        name="PCM-1T1R",
        cell_kind="PCM",
        feature_nm=65.0,
        cell_area_f2=24.0,
        r_low=1e4,
        r_high=1e7,
        sigma_log_r_low=0.06,
        sigma_log_r_high=0.25,
        read_voltage=0.4,
        sense_time=8.9e-9,
        activate_time=18.3e-9,
        write_time=151.1e-9,
        cell_read_energy=0.08e-12,
        # NVSim-class per-cell write energies for a scaled 1T1R cell with
        # write-verify (the energy that actually reaches the GST volume);
        # the raw driver-current bound is ~5x higher.
        cell_set_energy=1.8e-12,
        cell_reset_energy=2.7e-12,
        write=WriteScheme(
            polarity="unipolar",
            set_current=150e-6,
            reset_current=300e-6,
            set_pulse=150e-9,
            reset_pulse=45e-9,
        ),
        endurance=1e8,
        tcam_row_limit=128,
    )


def _reram_hfox() -> NVMTechnology:
    """HfOx-class bipolar ReRAM (CSA reference design, JSSC 2013)."""
    return NVMTechnology(
        name="ReRAM-1T1R",
        cell_kind="ReRAM",
        feature_nm=65.0,
        cell_area_f2=20.0,
        r_low=2e4,
        r_high=2e6,
        sigma_log_r_low=0.06,
        sigma_log_r_high=0.30,
        read_voltage=0.3,
        sense_time=9.5e-9,
        activate_time=15.0e-9,
        write_time=100.0e-9,
        cell_read_energy=0.06e-12,
        cell_set_energy=1.2e-12,
        cell_reset_energy=1.0e-12,
        write=WriteScheme(
            polarity="bipolar",
            set_current=80e-6,
            reset_current=80e-6,
            set_pulse=50e-9,
            reset_pulse=50e-9,
        ),
        endurance=1e10,
        tcam_row_limit=128,
    )


def _stt_mram() -> NVMTechnology:
    """STT-MRAM (64 Mb prototype, ISSCC 2010).

    The tunnelling-magnetoresistance contrast is small (TMR ~150 %, so
    K ~ 2.5), which is why the paper conservatively limits STT-MRAM to
    2-row operations.
    """
    return NVMTechnology(
        name="STT-1T1R",
        cell_kind="STT-MRAM",
        feature_nm=65.0,
        cell_area_f2=40.0,
        r_low=2e3,
        r_high=5e3,
        sigma_log_r_low=0.04,
        sigma_log_r_high=0.04,
        read_voltage=0.1,
        sense_time=5.0e-9,
        activate_time=10.0e-9,
        write_time=20.0e-9,
        cell_read_energy=0.03e-12,
        cell_set_energy=0.3e-12,
        cell_reset_energy=0.3e-12,
        write=WriteScheme(
            polarity="bipolar",
            set_current=120e-6,
            reset_current=120e-6,
            set_pulse=10e-9,
            reset_pulse=10e-9,
        ),
        endurance=1e15,
        # The paper conservatively assumes maximal 2-row operations for
        # STT-MRAM because the TMR contrast is low.
        tcam_row_limit=2,
    )


TECHNOLOGIES: dict = {
    tech.name: tech for tech in (_pcm_90nm(), _reram_hfox(), _stt_mram())
}

_ALIASES = {
    "pcm": "PCM-1T1R",
    "reram": "ReRAM-1T1R",
    "stt": "STT-1T1R",
    "stt-mram": "STT-1T1R",
}


def get_technology(name: str) -> NVMTechnology:
    """Look up a technology by canonical name or short alias.

    >>> get_technology("pcm").cell_kind
    'PCM'
    """
    key = _ALIASES.get(name.lower(), name)
    try:
        return TECHNOLOGIES[key]
    except KeyError:
        known = ", ".join(sorted(set(TECHNOLOGIES) | set(_ALIASES)))
        raise KeyError(f"unknown NVM technology {name!r}; known: {known}") from None


def list_technologies() -> List[str]:
    """Names of all registered technologies, sorted."""
    return sorted(TECHNOLOGIES)


def geometric_mean_resistance(r_a: float, r_b: float) -> float:
    """Reference placement helper: geometric midpoint of two resistances.

    Current sensing is ratio-driven, so the geometric mean equalises the
    log-domain margin on either side of the reference.
    """
    if r_a <= 0 or r_b <= 0:
        raise ValueError("resistances must be positive")
    return math.sqrt(r_a * r_b)
