"""Sensing-margin analysis: how many rows can one sense step combine?

The discrimination problem for an n-row OR (paper Section 4.2): after
activating n rows, the SA must tell apart

- the *weakest "1"*: exactly one LRS cell among n, i.e.
  ``R_low || R_high/(n-1)``, from
- the *strongest "0"*: all n cells HRS, i.e. ``R_high/n``.

The nominal ratio is ``(K + n - 1) / n`` (K = ON/OFF ratio), which decays
towards 1 as n grows.  Feasibility requires the k-sigma variation corners
of the two composite distributions not to overlap.  On top of the
electrical limit, the paper caps PCM/ReRAM at 128 rows (the largest
published PCM TCAM senses 128 cells per match line) and STT-MRAM at 2 rows
(conservative, low TMR).

This module reproduces those limits (experiment E10) and provides the
distribution data behind Fig. 5 (experiment E1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.nvm.technology import NVMTechnology, geometric_mean_resistance
from repro.nvm.variation import DEFAULT_CORNER_SIGMAS, VariationModel

#: Hard search ceiling: beyond this, wordline/bitline RC and driver fan-out
#: dominate regardless of sensing margin.
_SEARCH_LIMIT = 4096


@dataclass(frozen=True)
class CompositeCase:
    """One bitline composite-resistance case with its variation corners."""

    label: str
    nominal: float
    lower: float
    upper: float

    def interval(self) -> tuple[float, float]:
        return (self.lower, self.upper)


class MarginAnalysis:
    """Corner-based distinguishability analysis for Pinatubo sensing modes."""

    def __init__(
        self,
        technology: NVMTechnology,
        variation: Optional[VariationModel] = None,
    ):
        self.technology = technology
        self.variation = variation or VariationModel.for_technology(technology)

    # -- composite-case construction ---------------------------------------

    def or_case(self, n_rows: int, n_ones: int) -> CompositeCase:
        """Composite case for ``n_ones`` LRS cells among ``n_rows`` open rows.

        Corners combine worst-case per-component corners: the composite's
        upper corner takes every component at its upper corner (parallel
        resistance is monotone in each component), and symmetrically for
        the lower corner.
        """
        if n_rows < 1 or not 0 <= n_ones <= n_rows:
            raise ValueError("invalid (n_rows, n_ones)")
        t, v = self.technology, self.variation
        n_zeros = n_rows - n_ones

        def combine(r_low: float, r_high: float) -> float:
            conductance = 0.0
            if n_ones:
                conductance += n_ones / r_low
            if n_zeros:
                conductance += n_zeros / r_high
            return 1.0 / conductance

        nominal = combine(t.r_low, t.r_high)
        lower = combine(
            v.lower_corner(t.r_low, "low"), v.lower_corner(t.r_high, "high")
        )
        upper = combine(
            v.upper_corner(t.r_low, "low"), v.upper_corner(t.r_high, "high")
        )
        label = f"{n_ones}x1+{n_zeros}x0"
        return CompositeCase(label, nominal, lower, upper)

    # -- feasibility per mode -----------------------------------------------

    def read_feasible(self) -> bool:
        """Plain read: single LRS vs single HRS must be disjoint."""
        one = self.or_case(1, 1)
        zero = self.or_case(1, 0)
        return VariationModel.intervals_disjoint(one.interval(), zero.interval())

    def or_feasible(self, n_rows: int) -> bool:
        """n-row OR: weakest "1" must stay below the strongest "0"."""
        if n_rows < 2:
            return self.read_feasible()
        weakest_one = self.or_case(n_rows, 1)
        strongest_zero = self.or_case(n_rows, 0)
        return weakest_one.upper < strongest_zero.lower

    def and_feasible(self, n_rows: int = 2) -> bool:
        """2-row AND: "1,1" must stay below "1,0".

        For n > 2 the cases ``R_low/(n-1) || R_high`` and ``R_low/n``
        converge (paper footnote 3), so multi-row AND is rejected outright.
        """
        if n_rows != 2:
            return False
        all_ones = self.or_case(2, 2)
        one_zero = self.or_case(2, 1)
        return all_ones.upper < one_zero.lower

    def or_margin_log(self, n_rows: int) -> float:
        """Log-domain corner gap for an n-row OR (negative = infeasible)."""
        weakest_one = self.or_case(n_rows, 1)
        strongest_zero = self.or_case(n_rows, 0)
        return math.log(strongest_zero.lower) - math.log(weakest_one.upper)

    # -- limits ---------------------------------------------------------------

    def electrical_or_limit(self) -> int:
        """Largest n for which the OR corners stay disjoint (no TCAM cap)."""
        if not self.or_feasible(2):
            return 1 if self.read_feasible() else 0
        lo, hi = 2, 2
        while hi < _SEARCH_LIMIT and self.or_feasible(hi):
            lo, hi = hi, hi * 2
        hi = min(hi, _SEARCH_LIMIT)
        # binary search the last feasible n in (lo, hi]
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.or_feasible(mid):
                lo = mid
            else:
                hi = mid
        return lo

    def max_or_rows(self) -> int:
        """Supported multi-row OR count: electrical limit, TCAM-capped."""
        return max(1, min(self.electrical_or_limit(), self.technology.tcam_row_limit))

    def max_and_rows(self) -> int:
        """Supported multi-row AND count (2 if feasible, else read-only 1)."""
        return 2 if self.and_feasible(2) else 1

    # -- Fig. 5 data ----------------------------------------------------------

    def figure5_cases(self, n_rows: int = 2) -> dict[str, object]:
        """The resistance cases and references of paper Fig. 5.

        Returns a dict with the read cases ("1", "0"), the n-row OR cases
        ("all ones" ... "all zeros"), and the reference placements.
        """
        t = self.technology
        read_cases = [self.or_case(1, 1), self.or_case(1, 0)]
        or_cases = [self.or_case(n_rows, k) for k in range(n_rows, -1, -1)]
        ref_read = geometric_mean_resistance(t.r_low, t.r_high)
        weakest_one = self.or_case(n_rows, 1)
        strongest_zero = self.or_case(n_rows, 0)
        ref_or = geometric_mean_resistance(
            weakest_one.nominal, strongest_zero.nominal
        )
        return {
            "read_cases": read_cases,
            "or_cases": or_cases,
            "ref_read": ref_read,
            "ref_or": ref_or,
        }


@lru_cache(maxsize=None)
def margin_analysis(technology: NVMTechnology) -> MarginAnalysis:
    """Shared :class:`MarginAnalysis` for a technology's default variation.

    Construction itself is cheap, but the limit searches
    (:meth:`MarginAnalysis.electrical_or_limit`) behind
    :func:`repro.core.ops.operand_limits` are not; hot paths that build
    executors per technology (sweeps, benchmark fixtures) share one
    instance instead of recomputing corners.
    """
    return MarginAnalysis(technology)


def max_multirow_or(
    technology: NVMTechnology, corner_sigmas: float = DEFAULT_CORNER_SIGMAS
) -> int:
    """Convenience wrapper: supported n-row OR count for a technology.

    >>> from repro.nvm.technology import get_technology
    >>> max_multirow_or(get_technology("pcm"))
    128
    >>> max_multirow_or(get_technology("stt"))
    2
    """
    variation = VariationModel.for_technology(technology, corner_sigmas)
    return MarginAnalysis(technology, variation).max_or_rows()
