"""1T1R resistive cell and bitline parallel-connection math.

When Pinatubo activates ``n`` rows simultaneously, the ``n`` selected cells
on each bitline conduct in parallel, so the SA sees the parallel combination
of their resistances (the paper's ``||`` operator).  This module provides
that math both for scalars (margin analysis) and numpy arrays (the
functional mat model), plus a small :class:`ResistiveCell` used by the
transient circuit simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nvm.technology import NVMTechnology


def parallel_resistance(*resistances: float) -> float:
    """Parallel combination ("product over sum") of two or more resistors.

    >>> parallel_resistance(2.0, 2.0)
    1.0
    """
    if not resistances:
        raise ValueError("need at least one resistance")
    conductance = 0.0
    for r in resistances:
        if r <= 0:
            raise ValueError("resistances must be positive")
        conductance += 1.0 / r
    return 1.0 / conductance


def composite_or_case(r_low: float, r_high: float, n_rows: int, n_ones: int) -> float:
    """Bitline resistance with ``n_ones`` LRS cells among ``n_rows`` open rows.

    The OR-sensing discrimination problem is exactly: is ``n_ones`` zero or
    not?  The two closest cases are ``n_ones = 1`` (must read "1") and
    ``n_ones = 0`` (must read "0").
    """
    if not 0 <= n_ones <= n_rows:
        raise ValueError("n_ones must be within [0, n_rows]")
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    conductance = n_ones / r_low + (n_rows - n_ones) / r_high
    return 1.0 / conductance


def bitline_resistance(cell_resistances: np.ndarray, axis: int = 0) -> np.ndarray:
    """Parallel combination along ``axis`` of an array of cell resistances.

    Used by the functional mat model: ``cell_resistances`` is typically the
    (n_open_rows, n_columns) slice of the array, and the result is the
    per-column bitline resistance the SA senses.
    """
    r = np.asarray(cell_resistances, dtype=float)
    if np.any(r <= 0):
        raise ValueError("resistances must be positive")
    return 1.0 / np.sum(1.0 / r, axis=axis)


@dataclass
class ResistiveCell:
    """A single 1T1R cell: one access transistor, one resistive element.

    The cell stores a logic bit via its resistance state.  Encoding follows
    the paper (HRS = logic "0", LRS = logic "1").  ``resistance`` may carry
    a sampled (varied) value distinct from the technology nominal.
    """

    technology: NVMTechnology
    bit: int = 0
    resistance: float = 0.0

    def __post_init__(self) -> None:
        if self.bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if self.resistance <= 0.0:
            self.resistance = self.nominal_resistance(self.bit)

    def nominal_resistance(self, bit: int) -> float:
        return self.technology.r_low if bit else self.technology.r_high

    def write(self, bit: int, resistance: float = 0.0) -> None:
        """Program the cell to ``bit`` (SET for 1, RESET for 0)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self.bit = bit
        self.resistance = resistance if resistance > 0 else self.nominal_resistance(bit)

    @property
    def state(self) -> str:
        return "LRS" if self.bit else "HRS"

    def read_current(self) -> float:
        """Cell current under the technology's read voltage (A)."""
        return self.technology.read_voltage / self.resistance

    def write_energy(self, new_bit: int) -> float:
        """Energy to program to ``new_bit`` (0 if no state change) in J."""
        if new_bit == self.bit:
            return 0.0
        if new_bit:
            return self.technology.cell_set_energy
        return self.technology.cell_reset_energy


def bits_to_resistances(
    bits: np.ndarray, technology: NVMTechnology
) -> np.ndarray:
    """Vectorised bit -> nominal resistance mapping."""
    bits = np.asarray(bits)
    return np.where(bits != 0, technology.r_low, technology.r_high).astype(float)


def resistances_to_bits(
    resistances: np.ndarray, technology: NVMTechnology
) -> np.ndarray:
    """Vectorised resistance -> bit mapping via the read reference.

    Mirrors a normal read: below the read reference resistance is "1".
    """
    from repro.nvm.technology import geometric_mean_resistance

    ref = geometric_mean_resistance(technology.r_low, technology.r_high)
    r = np.asarray(resistances, dtype=float)
    return (r < ref).astype(np.uint8)
