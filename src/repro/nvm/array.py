"""Functional resistive mat: bits stored as resistances, sensed via the CSA.

This is the ground-truth device model for intra-subarray operations: every
stored bit lives as a (optionally variation-sampled) resistance, multi-row
activation produces real parallel bitline resistances, and the modified CSA
of :mod:`repro.nvm.sense_amp` resolves them.  It exists so that the
higher-level packed-bit simulator (:mod:`repro.memsim`) can be validated
against physics rather than against itself.

Scale note: a mat here is the paper's unit (rows x 4096 columns with a
32:1 column MUX).  Storing per-cell float resistances is fine at mat scale;
whole-memory simulation uses packed bits and defers to this model only for
cross-validation (see ``tests/test_cross_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nvm.cell import bitline_resistance, bits_to_resistances
from repro.nvm.margin import MarginAnalysis, margin_analysis
from repro.nvm.sense_amp import CurrentSenseAmplifier, SenseMode
from repro.nvm.technology import NVMTechnology
from repro.nvm.variation import VariationModel
from repro.nvm.wordline import LocalWordlineDriver
from repro.nvm.write_driver import WriteDriver, WriteSource


@dataclass
class MatOperationResult:
    """Full outcome of one mat-level operation."""

    bits: np.ndarray  # sensed (or written-back) row of bits
    latency: float  # s
    energy: float  # J
    sense_steps: int  # serial column-group sense steps (MUX sharing)


class ResistiveMat:
    """One mat: a 2D grid of 1T1R cells with shared, muxed sense amplifiers.

    Parameters
    ----------
    technology:
        Cell technology (PCM / ReRAM / STT-MRAM).
    n_rows, n_cols:
        Mat geometry.  The paper's typical NVM row is 4 Kb.
    mux_ratio:
        Adjacent columns sharing one SA (32 in the paper's experiments);
        a full-row access therefore needs ``mux_ratio`` serial sense steps.
    variation:
        Optional lognormal variation model; when given (with ``rng``) every
        programmed cell gets a sampled resistance.
    """

    def __init__(
        self,
        technology: NVMTechnology,
        n_rows: int = 512,
        n_cols: int = 4096,
        mux_ratio: int = 32,
        variation: Optional[VariationModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("mat geometry must be positive")
        if mux_ratio < 1 or n_cols % mux_ratio != 0:
            raise ValueError("mux_ratio must divide n_cols")
        self.technology = technology
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.mux_ratio = mux_ratio
        self.variation = variation
        self.rng = rng
        if variation is not None and rng is None:
            raise ValueError("variation sampling requires an rng")

        if variation is None:
            margin = margin_analysis(technology)  # shared, memoized
        else:
            margin = MarginAnalysis(technology, variation)
        self.max_or_rows = margin.max_or_rows()
        self.max_and_rows = margin.max_and_rows()

        self.sense_amp = CurrentSenseAmplifier(technology)
        self.write_driver = WriteDriver(technology)
        self.wordlines = LocalWordlineDriver(
            n_rows=n_rows,
            max_open_rows=self.max_or_rows,
            activate_time=technology.activate_time,
        )
        # All cells initialised to HRS (logic 0) -- a fresh RESET state.
        self._resistance = np.full(
            (n_rows, n_cols), technology.r_high, dtype=float
        )
        self._bits = np.zeros((n_rows, n_cols), dtype=np.uint8)
        #: (row, col) -> pinned resistance; programming cannot move these
        self._stuck: dict = {}

    @property
    def sas_per_mat(self) -> int:
        """Number of physical sense amplifiers (columns / mux ratio)."""
        return self.n_cols // self.mux_ratio

    # -- programming ------------------------------------------------------------

    def write_row(
        self,
        row: int,
        bits: np.ndarray,
        source: WriteSource = WriteSource.DATA_BUS,
    ) -> MatOperationResult:
        """Program a full row of bits (differential write)."""
        self._check_row(row)
        bits = np.asarray(bits).astype(np.uint8)
        if bits.shape != (self.n_cols,):
            raise ValueError(f"row data must have shape ({self.n_cols},)")
        cost = self.write_driver.program(self._bits[row], bits, source)
        self._bits[row] = bits
        if self.variation is not None:
            self._resistance[row] = self.variation.sample_bits(
                bits, self.technology, self.rng
            )
        else:
            self._resistance[row] = bits_to_resistances(bits, self.technology)
        self._apply_stuck_faults(row)
        return MatOperationResult(
            bits=bits.copy(),
            latency=cost.latency,
            energy=cost.energy,
            sense_steps=0,
        )

    def stored_bits(self, row: int) -> np.ndarray:
        """Ground-truth stored bits (oracle access, no cost)."""
        self._check_row(row)
        return self._bits[row].copy()

    # -- fault injection ----------------------------------------------------------

    def inject_stuck_fault(self, row: int, col: int, stuck_bit: int) -> None:
        """Pin one cell to a state programming cannot change.

        Stuck-at-1 models a cell fused to LRS (e.g. an over-SET filament);
        stuck-at-0 a cell that can no longer crystallise.  Used for
        failure-injection testing: the fault propagates through every
        sensing mode exactly as the physics dictates.
        """
        self._check_row(row)
        if not 0 <= col < self.n_cols:
            raise IndexError(f"col {col} out of range [0, {self.n_cols})")
        if stuck_bit not in (0, 1):
            raise ValueError("stuck_bit must be 0 or 1")
        resistance = (
            self.technology.r_low if stuck_bit else self.technology.r_high
        )
        self._stuck[(row, col)] = resistance
        self._apply_stuck_faults(row)

    def clear_faults(self) -> None:
        """Remove every injected fault (does not restore stored data)."""
        self._stuck.clear()

    @property
    def fault_count(self) -> int:
        return len(self._stuck)

    def _apply_stuck_faults(self, row: int) -> None:
        for (r, c), resistance in self._stuck.items():
            if r == row:
                self._resistance[r, c] = resistance

    # -- sensing operations -------------------------------------------------------

    def read_row(self, row: int) -> MatOperationResult:
        """Normal single-row read through the CSA."""
        return self._sensed_op(SenseMode.READ, [row])

    def bitwise(self, mode: SenseMode, rows) -> MatOperationResult:
        """Intra-mat bitwise operation over the given operand rows.

        OR supports 2..max_or_rows operands; AND exactly 2 (if the margin
        allows); XOR exactly 2 (two micro-steps); INV exactly 1.
        """
        rows = list(rows)
        if mode is SenseMode.READ:
            if len(rows) != 1:
                raise ValueError("READ takes exactly one row")
        elif mode is SenseMode.INV:
            if len(rows) != 1:
                raise ValueError("INV takes exactly one row")
        elif mode is SenseMode.XOR:
            if len(rows) != 2:
                raise ValueError("XOR takes exactly two rows")
        elif mode is SenseMode.AND:
            if len(rows) != 2 or self.max_and_rows < 2:
                raise ValueError("AND takes exactly two rows (margin permitting)")
        elif mode is SenseMode.OR:
            if not 2 <= len(rows) <= self.max_or_rows:
                raise ValueError(
                    f"OR takes 2..{self.max_or_rows} rows, got {len(rows)}"
                )
        return self._sensed_op(mode, rows)

    def write_back(
        self, result: MatOperationResult, dest_row: int
    ) -> MatOperationResult:
        """In-place update: feed a sensed result straight into the WDs."""
        wr = self.write_row(dest_row, result.bits, source=WriteSource.SENSE_AMP)
        return MatOperationResult(
            bits=wr.bits,
            latency=result.latency + wr.latency,
            energy=result.energy + wr.energy,
            sense_steps=result.sense_steps,
        )

    # -- internals ------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")

    def _sensed_op(self, mode: SenseMode, rows) -> MatOperationResult:
        for r in rows:
            self._check_row(r)
        if len(set(rows)) != len(rows):
            raise ValueError("operand rows must be distinct")

        if mode is SenseMode.XOR:
            # Two micro-steps: each operand row activated and sensed alone.
            act_a = self.wordlines.activate_many([rows[0]])
            r_a = self._resistance[rows[0]]
            pre_a = self.wordlines.precharge()
            act_b = self.wordlines.activate_many([rows[1]])
            r_b = self._resistance[rows[1]]
            pre_b = self.wordlines.precharge()
            sense = self.sense_amp.sense_xor(r_a, r_b)
            act_latency = (
                act_a.latency + pre_a.latency + act_b.latency + pre_b.latency
            )
            act_energy = act_a.energy + pre_a.energy + act_b.energy + pre_b.energy
        else:
            act = self.wordlines.activate_many(rows)
            r_bl = bitline_resistance(self._resistance[list(rows), :], axis=0)
            if mode is SenseMode.READ:
                sense = self.sense_amp.sense_read(r_bl)
            elif mode is SenseMode.INV:
                sense = self.sense_amp.sense_inv(r_bl)
            elif mode is SenseMode.OR:
                sense = self.sense_amp.sense_or(r_bl, len(rows))
            elif mode is SenseMode.AND:
                sense = self.sense_amp.sense_and(r_bl, len(rows))
            else:
                raise ValueError(f"unsupported mode: {mode}")
            pre = self.wordlines.precharge()
            act_latency = act.latency + pre.latency
            act_energy = act.energy + pre.energy

        # MUX sharing: the whole row needs mux_ratio serial sense steps,
        # but sense energy is already per-SA-count via bits.size, so only
        # latency scales (each step senses sas_per_mat columns).
        steps = self.mux_ratio * sense.micro_steps
        sense_latency = self.technology.sense_time * steps
        return MatOperationResult(
            bits=sense.bits,
            latency=act_latency + sense_latency,
            energy=act_energy + sense.energy,
            sense_steps=steps,
        )


def oracle_bitwise(mode: SenseMode, operand_rows) -> np.ndarray:
    """Pure-numpy oracle for validating mat results."""
    rows = [np.asarray(r).astype(np.uint8) for r in operand_rows]
    if mode is SenseMode.READ:
        return rows[0].copy()
    if mode is SenseMode.INV:
        return (1 - rows[0]).astype(np.uint8)
    out = rows[0].copy()
    for r in rows[1:]:
        if mode is SenseMode.OR:
            out |= r
        elif mode is SenseMode.AND:
            out &= r
        elif mode is SenseMode.XOR:
            out ^= r
        else:
            raise ValueError(f"unsupported mode: {mode}")
    return out
