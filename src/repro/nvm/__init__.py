"""NVM device substrate: cells, sense amplifiers, margins, drivers, arrays.

This package models the device- and circuit-level behaviour that Pinatubo
builds on:

- :mod:`repro.nvm.technology` -- catalog of PCM / ReRAM / STT-MRAM cell
  parameters (the role NVMDB plays in the paper).
- :mod:`repro.nvm.cell` -- 1T1R resistive cell and parallel-connection math.
- :mod:`repro.nvm.variation` -- lognormal resistance-variation model.
- :mod:`repro.nvm.sense_amp` -- current sense amplifier with the Pinatubo
  reference-circuit modifications (READ / OR / AND / XOR / INV).
- :mod:`repro.nvm.margin` -- sensing-margin analysis giving the maximum
  multi-row operation count per technology.
- :mod:`repro.nvm.wordline` -- local-wordline driver with the multi-row
  activation latch.
- :mod:`repro.nvm.write_driver` -- write driver with the SA-to-WD in-place
  update bypass.
- :mod:`repro.nvm.array` -- functional resistive mat: stores bits as
  resistances and produces sensed outputs for single- and multi-row
  activations.
"""

from repro.nvm.technology import (
    NVMTechnology,
    TECHNOLOGIES,
    get_technology,
    list_technologies,
)
from repro.nvm.cell import ResistiveCell, parallel_resistance, bitline_resistance
from repro.nvm.variation import VariationModel
from repro.nvm.sense_amp import CurrentSenseAmplifier, ReferenceScheme, SenseMode
from repro.nvm.margin import MarginAnalysis, max_multirow_or
from repro.nvm.reliability import BerPoint, SensingReliability
from repro.nvm.wordline import LocalWordlineDriver
from repro.nvm.write_driver import WriteDriver
from repro.nvm.array import ResistiveMat

__all__ = [
    "NVMTechnology",
    "TECHNOLOGIES",
    "get_technology",
    "list_technologies",
    "ResistiveCell",
    "parallel_resistance",
    "bitline_resistance",
    "VariationModel",
    "CurrentSenseAmplifier",
    "ReferenceScheme",
    "SenseMode",
    "MarginAnalysis",
    "max_multirow_or",
    "BerPoint",
    "SensingReliability",
    "LocalWordlineDriver",
    "WriteDriver",
    "ResistiveMat",
]
