"""Lognormal resistance-variation model for resistive cells.

Resistive memories show multiplicative (lognormal) spread in their
programmed resistance: filament geometry (ReRAM), crystalline fraction
(PCM) and tunnel-barrier thickness (STT-MRAM) all compound
multiplicatively.  The LRS is usually programmed with verify loops and is
tight; the HRS is looser.  The paper assumes "variation is well controlled
so that no overlap exists between the '1' and '0' region" (Fig. 5); this
module makes the assumption checkable and feeds the multi-row limits of
:mod:`repro.nvm.margin`.

Model: ``ln R ~ Normal(ln R_nominal, sigma_state)`` with per-state sigma.
Worst-case corners at ``k`` sigma are ``R_nominal * exp(+-k * sigma)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nvm.technology import NVMTechnology

#: Default worst-case corner, in sigmas.  Mb-scale arrays are designed to
#: 4-6 sigma tails; 4 keeps PCM's 128-row OR feasible, matching the paper's
#: TCAM-anchored assumption.
DEFAULT_CORNER_SIGMAS = 4.0


@dataclass(frozen=True)
class VariationModel:
    """Samples and bounds lognormally-distributed cell resistances.

    Parameters
    ----------
    sigma_low:
        Standard deviation of ``ln R`` in the LRS ("1") state.
    sigma_high:
        Standard deviation of ``ln R`` in the HRS ("0") state.
    corner_sigmas:
        How many sigmas define the worst-case corner used in margin
        analysis.
    """

    sigma_low: float
    sigma_high: float
    corner_sigmas: float = DEFAULT_CORNER_SIGMAS

    def __post_init__(self) -> None:
        if self.sigma_low < 0 or self.sigma_high < 0:
            raise ValueError("sigmas must be non-negative")
        if self.corner_sigmas <= 0:
            raise ValueError("corner_sigmas must be positive")

    @classmethod
    def for_technology(
        cls, technology: NVMTechnology, corner_sigmas: float = DEFAULT_CORNER_SIGMAS
    ) -> "VariationModel":
        """Build the model from a technology's published sigmas."""
        return cls(
            sigma_low=technology.sigma_log_r_low,
            sigma_high=technology.sigma_log_r_high,
            corner_sigmas=corner_sigmas,
        )

    def _sigma_for(self, state: str) -> float:
        if state == "low":
            return self.sigma_low
        if state == "high":
            return self.sigma_high
        raise ValueError(f"state must be 'low' or 'high', got {state!r}")

    # -- deterministic corners --------------------------------------------

    def lower_corner(self, r_nominal: float, state: str) -> float:
        """Worst-case low resistance (fast corner) at k sigma."""
        return r_nominal * math.exp(-self.corner_sigmas * self._sigma_for(state))

    def upper_corner(self, r_nominal: float, state: str) -> float:
        """Worst-case high resistance (slow corner) at k sigma."""
        return r_nominal * math.exp(self.corner_sigmas * self._sigma_for(state))

    def corner_interval(self, r_nominal: float, state: str) -> Tuple[float, float]:
        """(lower, upper) corner resistances around a nominal value."""
        return (
            self.lower_corner(r_nominal, state),
            self.upper_corner(r_nominal, state),
        )

    # -- sampling -----------------------------------------------------------

    def sample_state(
        self,
        r_nominal: float,
        state: str,
        rng: np.random.Generator,
        size=None,
    ) -> np.ndarray:
        """Draw lognormal samples for cells all in one state."""
        if r_nominal <= 0:
            raise ValueError("nominal resistance must be positive")
        sigma = self._sigma_for(state)
        if sigma == 0:
            return np.full(size if size is not None else (), r_nominal)
        noise = rng.normal(0.0, sigma, size=size)
        return r_nominal * np.exp(noise)

    def sample_bits(
        self,
        bits: np.ndarray,
        technology: NVMTechnology,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-cell varied resistances for a bit array (1 -> LRS, 0 -> HRS)."""
        bits = np.asarray(bits)
        nominal = np.where(bits != 0, technology.r_low, technology.r_high)
        sigma = np.where(bits != 0, self.sigma_low, self.sigma_high)
        noise = rng.normal(0.0, 1.0, size=bits.shape)
        return nominal * np.exp(sigma * noise)

    # -- distinguishability -------------------------------------------------

    @staticmethod
    def intervals_disjoint(a: tuple, b: tuple) -> bool:
        """True if two (lo, hi) resistance intervals do not overlap."""
        (lo_a, hi_a), (lo_b, hi_b) = a, b
        return hi_a < lo_b or hi_b < lo_a
