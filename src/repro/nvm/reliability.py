"""Sensing reliability: bit-error rates for (multi-row) current sensing.

The margin analysis (:mod:`repro.nvm.margin`) answers a yes/no question
at the k-sigma corners.  This module quantifies the tail: the actual
probability that one sensed bit resolves wrong, as a function of the
fan-in, the cell spread and the reference placement -- both by Monte
Carlo over the lognormal cell distributions and by a Fenton-Wilkinson
analytical approximation (a sum of lognormal conductances is well
approximated by a lognormal matched in mean and variance).

Variation decomposes into an *iid* per-cell part and a *systematic*
(correlated) part -- process gradients and drift that move every cell of
a state together.  The distinction matters enormously for multi-row
sensing: iid spread concentrates as 1/sqrt(n) when n conductances sum,
so with iid-only variation arbitrarily wide ORs would sense cleanly;
it is the systematic component that the corner-based margin analysis
guards against and that produces the real fan-in cliff.

This is the quantitative backing for the paper's "we assume the
variation is well controlled so that no overlap exists" and for the
128-row cap: the BER stays negligible through the supported fan-in and
climbs steeply once the nominal case ratio (K + n - 1)/n approaches the
systematic spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nvm.sense_amp import ReferenceScheme
from repro.nvm.technology import NVMTechnology
from repro.nvm.variation import VariationModel


@dataclass(frozen=True)
class BerPoint:
    """Error rates of the two critical cases of an n-row OR."""

    n_rows: int
    p_miss: float  # weakest "1" (one LRS among n) read as 0
    p_false: float  # strongest "0" (all HRS) read as 1

    @property
    def worst(self) -> float:
        return max(self.p_miss, self.p_false)


class SensingReliability:
    """BER estimation for the Pinatubo sensing modes.

    Parameters
    ----------
    technology, variation:
        As elsewhere; ``variation`` carries the *total* per-state sigma.
    systematic_fraction:
        Share of each state's sigma that is correlated across the open
        cells of one operation (process gradient / drift).  The iid part
        is the orthogonal remainder.  0.3 is a typical attribution for
        programmed resistive arrays.
    """

    def __init__(
        self,
        technology: NVMTechnology,
        variation: Optional[VariationModel] = None,
        systematic_fraction: float = 0.3,
    ):
        if not 0.0 <= systematic_fraction <= 1.0:
            raise ValueError("systematic_fraction must be in [0, 1]")
        self.technology = technology
        self.variation = variation or VariationModel.for_technology(technology)
        self.references = ReferenceScheme(technology)
        self.systematic_fraction = systematic_fraction

    def _split_sigma(self, state: str) -> Tuple[float, float]:
        total = (
            self.variation.sigma_low if state == "low" else self.variation.sigma_high
        )
        sys = total * self.systematic_fraction
        iid = total * math.sqrt(max(0.0, 1.0 - self.systematic_fraction**2))
        return iid, sys

    # -- Monte Carlo ---------------------------------------------------------

    def _sample_bitline(
        self, n_rows: int, n_ones: int, samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Parallel bitline resistances for the given composite case."""
        t = self.technology
        conductance = np.zeros(samples)
        if n_ones:
            iid, sys = self._split_sigma("low")
            shift = np.exp(rng.normal(0.0, sys, size=(samples, 1)))
            r = t.r_low * np.exp(rng.normal(0.0, iid, size=(samples, n_ones))) * shift
            conductance += (1.0 / r).sum(axis=1)
        n_zeros = n_rows - n_ones
        if n_zeros:
            iid, sys = self._split_sigma("high")
            shift = np.exp(rng.normal(0.0, sys, size=(samples, 1)))
            r = t.r_high * np.exp(rng.normal(0.0, iid, size=(samples, n_zeros))) * shift
            conductance += (1.0 / r).sum(axis=1)
        return 1.0 / conductance

    def monte_carlo_or(
        self,
        n_rows: int,
        samples: int = 100_000,
        rng: Optional[np.random.Generator] = None,
    ) -> BerPoint:
        """Monte-Carlo error rates of the two critical OR cases."""
        if n_rows < 2:
            raise ValueError("OR sensing needs n_rows >= 2")
        if samples < 1:
            raise ValueError("samples must be positive")
        rng = rng or np.random.default_rng(1991)
        ref = self.references.or_reference(n_rows)
        # weakest "1": one LRS among n -> error when R_BL >= ref
        one = self._sample_bitline(n_rows, 1, samples, rng)
        p_miss = float(np.mean(one >= ref))
        # strongest "0": all HRS -> error when R_BL < ref
        zero = self._sample_bitline(n_rows, 0, samples, rng)
        p_false = float(np.mean(zero < ref))
        return BerPoint(n_rows=n_rows, p_miss=p_miss, p_false=p_false)

    def monte_carlo_read(
        self, samples: int = 100_000, rng: Optional[np.random.Generator] = None
    ) -> BerPoint:
        """Single-cell read error rates (the n=1 baseline)."""
        rng = rng or np.random.default_rng(1991)
        ref = self.references.read_reference()
        one = self._sample_bitline(1, 1, samples, rng)
        zero = self._sample_bitline(1, 0, samples, rng)
        return BerPoint(
            n_rows=1,
            p_miss=float(np.mean(one >= ref)),
            p_false=float(np.mean(zero < ref)),
        )

    # -- Fenton-Wilkinson analytical approximation -------------------------------

    @staticmethod
    def _lognormal_sum_params(mus, sigmas):
        """Lognormal (mu, sigma) matching the mean/variance of a sum of
        independent lognormals (Fenton-Wilkinson)."""
        means = np.exp(np.asarray(mus) + np.asarray(sigmas) ** 2 / 2.0)
        variances = (np.exp(np.asarray(sigmas) ** 2) - 1.0) * means**2
        m = means.sum()
        v = variances.sum()
        sigma2 = math.log(1.0 + v / m**2)
        mu = math.log(m) - sigma2 / 2.0
        return mu, math.sqrt(sigma2)

    def _case_conductance_params(self, n_rows: int, n_ones: int):
        """FW parameters of the composite bitline *conductance*.

        The iid parts sum Fenton-Wilkinson style; the systematic part is
        a common multiplier, so its variance adds directly in the log
        domain (conservatively using the larger state's systematic sigma
        for mixed cases).
        """
        t = self.technology
        iid_low, sys_low = self._split_sigma("low")
        iid_high, sys_high = self._split_sigma("high")
        mus = []
        sigmas = []
        # conductance of a lognormal resistance is lognormal with -mu
        mus += [-math.log(t.r_low)] * n_ones
        sigmas += [iid_low] * n_ones
        mus += [-math.log(t.r_high)] * (n_rows - n_ones)
        sigmas += [iid_high] * (n_rows - n_ones)
        mu, sigma = self._lognormal_sum_params(mus, sigmas)
        sys = max(sys_low if n_ones else 0.0, sys_high if n_ones < n_rows else 0.0)
        return mu, math.sqrt(sigma**2 + sys**2)

    def analytical_or(self, n_rows: int) -> BerPoint:
        """Fenton-Wilkinson estimate of the critical-case error rates."""
        if n_rows < 2:
            raise ValueError("OR sensing needs n_rows >= 2")
        from math import erf, sqrt

        def normal_cdf(x):
            return 0.5 * (1.0 + erf(x / sqrt(2.0)))

        ref = self.references.or_reference(n_rows)
        g_ref = math.log(1.0 / ref)
        # weakest "1" misread when conductance < reference conductance
        mu1, s1 = self._case_conductance_params(n_rows, 1)
        p_miss = normal_cdf((g_ref - mu1) / s1)
        # strongest "0" misread when conductance >= reference conductance
        mu0, s0 = self._case_conductance_params(n_rows, 0)
        p_false = 1.0 - normal_cdf((g_ref - mu0) / s0)
        return BerPoint(n_rows=n_rows, p_miss=p_miss, p_false=p_false)

    # -- curves --------------------------------------------------------------------

    def ber_curve(self, row_counts, samples: int = 50_000) -> List["BerPoint"]:
        """Monte-Carlo worst-case BER over a fan-in sweep."""
        rng = np.random.default_rng(7)
        return [
            self.monte_carlo_or(n, samples=samples, rng=rng) for n in row_counts
        ]
