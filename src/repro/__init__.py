"""Pinatubo: processing-in-NVM architecture for bulk bitwise operations.

Reproduction of Li et al., DAC 2016.  The public API re-exports the pieces
a downstream user needs most:

- device substrate: :mod:`repro.nvm`
- circuit validation: :mod:`repro.circuits`
- memory-system simulator: :mod:`repro.memsim`
- energy/latency/area models: :mod:`repro.energy`
- the Pinatubo core: :mod:`repro.core`
- baselines (SIMD CPU, S-DRAM, AC-PIM, Ideal): :mod:`repro.baselines`
- programming model / runtime: :mod:`repro.runtime`
- applications (bitmap BFS, FastBit-like DB, vector bench): :mod:`repro.apps`
- figure regeneration: :mod:`repro.analysis`

Quickstart::

    from repro.runtime import PimRuntime
    rt = PimRuntime.pcm()
    a = rt.pim_malloc(1 << 14)
    b = rt.pim_malloc(1 << 14)
    dst = rt.pim_malloc(1 << 14)
    rt.pim_op("or", dst, [a, b])
"""

__version__ = "1.0.0"

from repro.nvm.technology import get_technology, list_technologies
from repro.nvm.margin import max_multirow_or

__all__ = [
    "__version__",
    "get_technology",
    "list_technologies",
    "max_multirow_or",
]
