"""Pinatubo: processing-in-NVM architecture for bulk bitwise operations.

Reproduction of Li et al., DAC 2016.  The public API re-exports the pieces
a downstream user needs most:

- device substrate: :mod:`repro.nvm`
- circuit validation: :mod:`repro.circuits`
- memory-system simulator: :mod:`repro.memsim`
- energy/latency/area models: :mod:`repro.energy`
- the Pinatubo core: :mod:`repro.core`
- baselines (SIMD CPU, S-DRAM, AC-PIM, Ideal): :mod:`repro.baselines`
- programming model / runtime: :mod:`repro.runtime`
- applications (bitmap BFS, FastBit-like DB, vector bench): :mod:`repro.apps`
- figure regeneration: :mod:`repro.analysis`

- backend protocol + registry + configs: :mod:`repro.backends`
- observability (spans, counters, Chrome traces): :mod:`repro.telemetry`

Quickstart (registry-driven)::

    from repro import SystemConfig, build_system
    backend = build_system(SystemConfig(backend="pinatubo"))
    run = backend.bitwise("or", [a, b, c])

Tracing a run::

    from repro import telemetry
    telemetry.configure(enabled=True)
    ...
    telemetry.export_chrome_trace("trace.json")
"""

__version__ = "1.0.0"

from repro import telemetry
from repro.backends import (
    BulkBitwiseBackend,
    RunStats,
    SystemConfig,
    build_system,
    registry,
)
from repro.core.stats import StatsLike
from repro.nvm.technology import get_technology, list_technologies
from repro.nvm.margin import max_multirow_or

__all__ = [
    "__version__",
    "BulkBitwiseBackend",
    "RunStats",
    "StatsLike",
    "SystemConfig",
    "build_system",
    "get_technology",
    "list_technologies",
    "max_multirow_or",
    "registry",
    "telemetry",
]
