"""The Pinatubo operation vocabulary and operand rules.

Per the paper (Section 4.2):

- OR supports one-step multi-row operation up to the technology's sensing
  limit (128 rows for PCM/ReRAM-class contrast, 2 for STT-MRAM);
- AND supports exactly 2 rows in one step (footnote 3: the n > 2 cases
  are electrically indistinguishable);
- XOR takes exactly 2 operands via two micro-steps;
- INV takes exactly 1 operand (differential latch output).

Wider operand lists are legal at the API level: the executor decomposes
them into accumulation passes (e.g. a 128-operand OR on Pinatubo-2 runs
as 127 two-row operations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.nvm.margin import margin_analysis
from repro.nvm.technology import NVMTechnology


class PimOp(enum.Enum):
    """Bulk bitwise operations Pinatubo executes in memory."""

    OR = "or"
    AND = "and"
    XOR = "xor"
    INV = "inv"

    @classmethod
    def parse(cls, name) -> "PimOp":
        """Accept a PimOp or its lowercase string name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError:
            known = ", ".join(op.value for op in cls)
            raise ValueError(f"unknown PIM op {name!r}; known: {known}") from None


@dataclass(frozen=True)
class OperandLimits:
    """How many operand rows one in-memory step of each op may combine."""

    or_rows: int  # one-step multi-row OR limit
    and_rows: int  # 2 if AND is sensable, else 1 (unsupported)
    xor_rows: int = 2
    inv_rows: int = 1

    def single_step_limit(self, op: PimOp) -> int:
        """Max operands one sensing step combines for ``op``."""
        if op is PimOp.OR:
            return self.or_rows
        if op is PimOp.AND:
            return self.and_rows
        if op is PimOp.XOR:
            return self.xor_rows
        return self.inv_rows

    def min_operands(self, op: PimOp) -> int:
        return 1 if op is PimOp.INV else 2

    def validate_operand_count(self, op: PimOp, n: int) -> None:
        lo = self.min_operands(op)
        if op is PimOp.INV and n != 1:
            raise ValueError("inv takes exactly one operand")
        if n < lo:
            raise ValueError(f"{op.value} needs at least {lo} operands, got {n}")


@lru_cache(maxsize=None)
def operand_limits(
    technology: NVMTechnology, max_rows_override: Optional[int] = None
) -> OperandLimits:
    """Derive the operand limits for a technology.

    ``max_rows_override`` caps the one-step OR width below the sensing
    limit -- this is how the evaluation's "Pinatubo-2" configuration is
    produced (a Pinatubo that never uses more than 2-row activation).

    Memoized: the margin-limit search behind it is the expensive part of
    building an executor, and sweeps/benchmarks build many per
    technology.
    """
    analysis = margin_analysis(technology)
    or_rows = analysis.max_or_rows()
    and_rows = analysis.max_and_rows()
    if max_rows_override is not None:
        if max_rows_override < 2:
            raise ValueError("max_rows_override must be >= 2")
        or_rows = min(or_rows, max_rows_override)
        and_rows = min(and_rows, max_rows_override)
    return OperandLimits(or_rows=or_rows, and_rows=and_rows)
