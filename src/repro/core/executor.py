"""The Pinatubo execution engine.

Routes each bulk bitwise operation by where its operand rows live
(paper Section 4.1), generates the corresponding DDR command stream,
computes the functional result on the packed-bit main memory, and accounts
latency and energy through the memory controller.

Operation anatomy per locality:

*intra-subarray* (modified SA):
    MRS, WL_RESET, ACT, ACT_EXTRA x (n-1), PIM_SENSE (one serial step per
    SA mux group the vector spans; x2 micro-steps for XOR),
    PIM_WRITEBACK (differential, via the WD bypass), PRE.

*inter-subarray* (global row buffer logic):
    first operand: ACT + sense into the global row buffer; each further
    operand: ACT + sense onto the GDL + BUF_OP combine; finally WR the
    latched result to the destination row.  No DDR bus data.

*inter-bank* (I/O buffer logic): same shape, at the chip I/O buffer.

*inter-chip*: not executable in memory -- :class:`PlacementError`; the
runtime's allocator/OS mapper exists to avoid this case (paper Section 5).

Wide operand lists decompose into accumulation passes: multi-row OR
combines ``limit`` rows per step; AND/XOR accumulate pairwise.  A
multi-chunk vector (longer than one rank row) executes its chunks
serially -- the paper's "bit-vectors longer than 2^19 have to be mapped to
multiple ranks that work in serial" (Fig. 9 turning point B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ops import OperandLimits, PimOp, operand_limits
from repro.core.stats import OpAccounting
from repro.memsim.address import AddressMapper, OpLocality, classify_locality
from repro.memsim.controller import (
    Command,
    CommandKind,
    ExecutionStats,
    MemoryController,
)
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.mainmem import MainMemory
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import NVMTechnology, get_technology


class PlacementError(RuntimeError):
    """Operands placed so the operation cannot execute in memory."""


#: MR4 mode codes per PIM operation (paper Fig. 4 hardware control).
MODE_CODES = {PimOp.OR: 0b001, PimOp.AND: 0b010, PimOp.XOR: 0b011, PimOp.INV: 0b100}


@dataclass
class OpResult:
    """Outcome of one (possibly decomposed, multi-chunk) PIM operation."""

    op: PimOp
    accounting: OpAccounting
    steps: int  # in-memory combine steps actually issued
    localities: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.accounting.latency

    @property
    def energy(self) -> float:
        return self.accounting.energy


class PinatuboExecutor:
    """Executes bulk bitwise operations on an NVM main memory."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        technology: NVMTechnology = None,
        memory: MainMemory = None,
        controller: MemoryController = None,
        max_rows: int = None,
    ):
        self.geometry = geometry
        self.technology = technology or get_technology("pcm")
        self.timing = nvm_timing(self.technology)
        self.memory = memory or MainMemory(geometry)
        self.controller = controller or MemoryController(geometry, self.timing)
        self.mapper = AddressMapper(geometry)
        self.limits: OperandLimits = operand_limits(self.technology, max_rows)
        self._current_mode = None

    # -- host-side data movement ------------------------------------------------

    def write_vector(self, frames, bits: np.ndarray) -> OpAccounting:
        """Host write of a bit-vector into its row frames (over the bus)."""
        bits = np.asarray(bits, dtype=np.uint8)
        acct = OpAccounting()
        g = self.geometry
        for i, frame in enumerate(frames):
            chunk = bits[i * g.row_bits : (i + 1) * g.row_bits]
            if chunk.size == 0:
                break
            self.memory.write_bits(frame, chunk)
            addr = self.mapper.decode(frame)
            n_bytes = -(-chunk.size // 8)
            stats = self.controller.execute(
                [
                    Command(CommandKind.ACT, channel=addr.channel, n_bits=chunk.size),
                    Command(
                        CommandKind.WR,
                        channel=addr.channel,
                        n_bits=chunk.size,
                        transfer_bytes=n_bytes,
                    ),
                    Command(CommandKind.PRE, channel=addr.channel),
                ]
            )
            acct.absorb(stats)
        return acct

    def read_vector(self, frames, n_bits: int) -> tuple:
        """Host read of a bit-vector; returns (bits, accounting)."""
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        acct = OpAccounting()
        g = self.geometry
        parts = []
        remaining = n_bits
        for frame in frames:
            take = min(remaining, g.row_bits)
            parts.append(self.memory.read_bits(frame, take))
            addr = self.mapper.decode(frame)
            steps = g.sense_steps_for_bits(take)
            stats = self.controller.execute(
                [
                    Command(CommandKind.ACT, channel=addr.channel, n_bits=take),
                    Command(CommandKind.PIM_SENSE, channel=addr.channel,
                            n_steps=steps, n_bits=take),
                    Command(
                        CommandKind.RD,
                        channel=addr.channel,
                        n_bits=take,
                        transfer_bytes=-(-take // 8),
                    ),
                    Command(CommandKind.PRE, channel=addr.channel),
                ]
            )
            acct.absorb(stats)
            remaining -= take
            if remaining <= 0:
                break
        if remaining > 0:
            raise ValueError("frames do not cover n_bits")
        return np.concatenate(parts), acct

    # -- PIM operations -----------------------------------------------------------

    def bitwise(
        self,
        op,
        dest_frames,
        source_frame_lists,
        n_bits: int,
        overlap_chunks: bool = False,
    ) -> OpResult:
        """Execute ``dest = op(sources)`` over row-aligned vectors.

        Parameters
        ----------
        op:
            A :class:`PimOp` or its string name.
        dest_frames:
            Row frames of the destination vector, one per chunk.
        source_frame_lists:
            One list of row frames per operand vector (all the same chunk
            count as the destination).
        n_bits:
            Logical vector length in bits.
        overlap_chunks:
            Extension beyond the paper: issue every chunk's command
            stream in one batch so chunks placed on *different channels*
            overlap (the controller serialises per channel and takes the
            critical path across channels).  The paper's configuration
            (and the default here) executes chunks serially, which is
            Fig. 9's turning point B.  Pair with
            ``PlacementPolicy.CHANNEL_STRIPED`` to actually spread a long
            vector's chunks over channels.
        """
        op = PimOp.parse(op)
        sources = [list(frames) for frames in source_frame_lists]
        dest = list(dest_frames)
        self.limits.validate_operand_count(op, len(sources))
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        n_chunks = self.geometry.rows_for_bits(n_bits)
        if len(dest) < n_chunks or any(len(s) < n_chunks for s in sources):
            raise ValueError("vectors have fewer row frames than n_bits needs")

        acct = OpAccounting()
        localities = {}
        total_steps = 0
        sink = [] if overlap_chunks else None
        for c in range(n_chunks):
            chunk_bits = min(n_bits - c * self.geometry.row_bits, self.geometry.row_bits)
            chunk_sources = [s[c] for s in sources]
            steps, chunk_acct, loc_counts = self._chunk_bitwise(
                op, dest[c], chunk_sources, chunk_bits, sink
            )
            total_steps += steps
            acct = acct.merged(chunk_acct)
            for loc, n in loc_counts.items():
                localities[loc] = localities.get(loc, 0) + n
        if sink:
            acct.absorb(self.controller.execute(sink))
        acct.count_bits(n_bits * len(sources))
        return OpResult(op=op, accounting=acct, steps=total_steps, localities=localities)

    def bitwise_to_host(
        self, op, scratch_frames, source_frame_lists, n_bits: int
    ) -> tuple:
        """``op(sources)`` with the result streamed to the host I/O bus.

        The paper's alternative emission path: "The results can be sent
        to the I/O bus or written back to another memory row directly."
        The final sensed row of each chunk crosses the DDR bus instead of
        being programmed; when the operand list decomposes into several
        combine steps, the intermediates still accumulate in the
        ``scratch_frames`` rows.

        Returns ``(bits, OpResult)``; nothing is written to the scratch
        row by the final step, so destination wear is avoided entirely
        for single-step operations.
        """
        op = PimOp.parse(op)
        sources = [list(frames) for frames in source_frame_lists]
        scratch = list(scratch_frames)
        self.limits.validate_operand_count(op, len(sources))
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        n_chunks = self.geometry.rows_for_bits(n_bits)
        if len(scratch) < n_chunks or any(len(s) < n_chunks for s in sources):
            raise ValueError("vectors have fewer row frames than n_bits needs")

        acct = OpAccounting()
        localities = {}
        total_steps = 0
        parts = []
        for c in range(n_chunks):
            chunk_bits = min(n_bits - c * self.geometry.row_bits, self.geometry.row_bits)
            chunk_sources = [s[c] for s in sources]
            host_chunks = []
            steps, chunk_acct, loc_counts = self._chunk_bitwise(
                op, scratch[c], chunk_sources, chunk_bits,
                emit_host=True, host_chunks=host_chunks,
            )
            total_steps += steps
            acct = acct.merged(chunk_acct)
            for loc, n in loc_counts.items():
                localities[loc] = localities.get(loc, 0) + n
            packed = host_chunks[-1]
            parts.append(np.unpackbits(packed, bitorder="little")[:chunk_bits])
        acct.count_bits(n_bits * len(sources))
        result = OpResult(
            op=op, accounting=acct, steps=total_steps, localities=localities
        )
        return np.concatenate(parts), result

    # -- chunk-level execution ------------------------------------------------

    def _chunk_bitwise(
        self,
        op: PimOp,
        dest: int,
        srcs,
        chunk_bits: int,
        sink=None,
        emit_host: bool = False,
        host_chunks: list = None,
    ):
        """One rank-row chunk: decompose into in-memory combine steps."""
        acct = OpAccounting()
        localities = {}
        steps = 0

        self._set_mode(op, acct)

        # Route by where this chunk's operands and destination live.
        all_addrs = [self.mapper.decode(f) for f in list(srcs) + [dest]]
        locality = classify_locality(all_addrs)
        if locality is OpLocality.INTER_CHIP:
            raise PlacementError(
                "operands/destination span chips or channels; in-memory "
                "bitwise operations require same-chip placement "
                "(remap with the PIM-aware allocator)"
            )

        if op is PimOp.INV or locality is not OpLocality.INTRA_SUBARRAY:
            # single combine step: INV, or the buffered path where the
            # global (or I/O) buffer accumulates every operand in one
            # pass -- the multi-row activation limit is a sensing
            # constraint and does not apply there.
            operands = [srcs[0]] if op is PimOp.INV else list(srcs)
            steps += self._combine_step(
                op, dest, operands, chunk_bits, acct, localities, locality,
                sink, emit_host,
            )
            self._apply_result(op, dest, operands, emit_host, host_chunks)
            return steps, acct, localities

        limit = max(2, self.limits.single_step_limit(op))
        pending = list(srcs)
        # First pass: combine up to `limit` original operands.
        group = pending[: limit]
        pending = pending[limit:]
        final = not pending
        steps += self._combine_step(
            op, dest, group, chunk_bits, acct, localities, locality, sink,
            emit_host and final,
        )
        self._apply_result(op, dest, group, emit_host and final, host_chunks)
        # Accumulate the rest: dest + up to (limit - 1) new operands per step.
        while pending:
            group = pending[: limit - 1]
            pending = pending[limit - 1 :]
            operands = [dest] + group
            final = not pending
            steps += self._combine_step(
                op, dest, operands, chunk_bits, acct, localities, locality,
                sink, emit_host and final,
            )
            self._apply_result(op, dest, operands, emit_host and final, host_chunks)
        return steps, acct, localities

    def _apply_result(self, op, dest, operands, emit_host, host_chunks) -> None:
        """Write a combine step's result back, or capture it for the host."""
        if emit_host:
            result = self.memory.bitwise_frames(op.value, operands)
            host_chunks.append(result)
        else:
            self.memory.execute_bitwise(op.value, dest, operands)

    def _set_mode(self, op: PimOp, acct: OpAccounting) -> None:
        if self._current_mode != op:
            stats = self.controller.set_pim_mode(MODE_CODES[op])
            acct.absorb(stats)
            self._current_mode = op

    def _combine_step(
        self, op, dest, operand_frames, chunk_bits, acct, localities, locality,
        sink=None, emit_host: bool = False,
    ):
        """Issue (or defer, when ``sink`` is given) one combine step."""
        operand_addrs = [self.mapper.decode(f) for f in operand_frames]
        if locality is OpLocality.INTRA_SUBARRAY:
            commands = self._intra_subarray_commands(
                op, operand_addrs, dest, chunk_bits, emit_host
            )
        else:
            commands = self._buffered_commands(
                op, operand_addrs, dest, chunk_bits, locality, emit_host
            )
        if sink is None:
            acct.absorb(self.controller.execute(commands), locality)
        else:
            sink.extend(commands)
            acct.absorb(ExecutionStats(), locality)  # cost deferred to the batch
        acct.count_step()
        localities[locality] = localities.get(locality, 0) + 1
        return 1

    # -- command generation -------------------------------------------------------

    def _writeback_bits(self, op, dest, operand_frames) -> int:
        """Differential write width: bits that will actually flip."""
        new = self.memory.bitwise_frames(
            op.value, operand_frames
        ) if op is not PimOp.INV else np.bitwise_not(
            self.memory.frame_bytes(operand_frames[0])
        )
        old = self.memory.frame_bytes(dest)
        changed = np.bitwise_xor(old, new)
        return int(np.unpackbits(changed).sum())

    def _intra_subarray_commands(
        self, op, operand_addrs, dest, chunk_bits, emit_host=False
    ):
        g = self.geometry
        ch = operand_addrs[0].channel
        n = len(operand_addrs)
        micro = 2 if op is PimOp.XOR else 1
        steps = g.sense_steps_for_bits(chunk_bits) * micro
        changed = 0 if emit_host else self._writeback_bits(
            op, dest, [self.mapper.encode(a) for a in operand_addrs]
        )
        commands = [
            Command(CommandKind.WL_RESET, channel=ch),
            Command(CommandKind.ACT, channel=ch, n_bits=chunk_bits),
        ]
        commands += [
            Command(CommandKind.ACT_EXTRA, channel=ch, n_bits=chunk_bits)
        ] * (n - 1)
        commands.append(
            Command(CommandKind.PIM_SENSE, channel=ch, n_steps=steps, n_bits=chunk_bits * micro)
        )
        if emit_host:
            # "the results can be sent to the I/O bus": stream the sensed
            # row out instead of programming it anywhere
            commands.append(
                Command(
                    CommandKind.RD,
                    channel=ch,
                    n_bits=0,  # sensing already charged above
                    transfer_bytes=-(-chunk_bits // 8),
                )
            )
        else:
            commands.append(
                Command(CommandKind.PIM_WRITEBACK, channel=ch, n_bits=changed)
            )
        commands.append(Command(CommandKind.PRE, channel=ch))
        return commands

    def _buffered_commands(
        self, op, operand_addrs, dest, chunk_bits, locality, emit_host=False
    ):
        """Inter-subarray / inter-bank: global (or I/O) buffer logic path.

        Each operand is read into / combined at the buffer one at a time;
        multi-row activation gives no benefit here, which is why random
        placements collapse Pinatubo-128 to Pinatubo-2 (paper 14-16-7r).
        """
        g = self.geometry
        ch = operand_addrs[0].channel
        micro = 2 if op is PimOp.XOR else 1
        steps = g.sense_steps_for_bits(chunk_bits) * micro
        changed = 0 if emit_host else self._writeback_bits(
            op, dest, [self.mapper.encode(a) for a in operand_addrs]
        )
        commands = []
        for i, _addr in enumerate(operand_addrs):
            commands.append(Command(CommandKind.ACT, channel=ch, n_bits=chunk_bits))
            commands.append(
                Command(CommandKind.PIM_SENSE, channel=ch, n_steps=steps, n_bits=chunk_bits)
            )
            if i > 0:
                commands.append(
                    Command(CommandKind.BUF_OP, channel=ch, n_bits=chunk_bits)
                )
            commands.append(Command(CommandKind.PRE, channel=ch))
        if locality is OpLocality.INTER_BANK:
            # the operands also cross the chip-internal I/O datalines;
            # model that as one extra buffer pass per operand.
            commands.append(
                Command(CommandKind.BUF_OP, channel=ch, n_bits=chunk_bits * len(operand_addrs))
            )
        if emit_host:
            # stream the buffer's content to the host instead of writing
            commands.append(
                Command(
                    CommandKind.RD,
                    channel=ch,
                    n_bits=0,
                    transfer_bytes=-(-chunk_bits // 8),
                )
            )
        else:
            commands.append(Command(CommandKind.ACT, channel=ch, n_bits=chunk_bits))
            commands.append(Command(CommandKind.WR, channel=ch, n_bits=changed))
            commands.append(Command(CommandKind.PRE, channel=ch))
        return commands
