"""The Pinatubo execution engine.

Routes each bulk bitwise operation by where its operand rows live
(paper Section 4.1), generates the corresponding DDR command stream,
computes the functional result on the packed-bit main memory, and accounts
latency and energy through the memory controller.

Operation anatomy per locality:

*intra-subarray* (modified SA):
    MRS, WL_RESET, ACT, ACT_EXTRA x (n-1), PIM_SENSE (one serial step per
    SA mux group the vector spans; x2 micro-steps for XOR),
    PIM_WRITEBACK (differential, via the WD bypass), PRE.

*inter-subarray* (global row buffer logic):
    first operand: ACT + sense into the global row buffer; each further
    operand: ACT + sense onto the GDL + BUF_OP combine; finally WR the
    latched result to the destination row.  No DDR bus data.

*inter-bank* (I/O buffer logic): same shape, at the chip I/O buffer.

*inter-chip*: not executable in memory -- :class:`PlacementError`; the
runtime's allocator/OS mapper exists to avoid this case (paper Section 5).

Wide operand lists decompose into accumulation passes: multi-row OR
combines ``limit`` rows per step; AND/XOR accumulate pairwise.  A
multi-chunk vector (longer than one rank row) executes its chunks
serially -- the paper's "bit-vectors longer than 2^19 have to be mapped to
multiple ranks that work in serial" (Fig. 9 turning point B).

Command pricing is **batched**: by default every logical operation
(covering all its chunks and accumulation passes) is emitted as one
:class:`~repro.memsim.controller.CommandBatch` and priced with a single
vectorized :meth:`~repro.memsim.controller.MemoryController.execute_batch`
call, with fences preserving the serial semantics chunk-for-chunk.
``batch_commands=False`` keeps the original one-``execute``-per-step
path; both produce identical accounting (the equivalence is locked by
``tests/core/test_batch_equivalence.py``).  :meth:`PinatuboExecutor.
bitwise_many` goes one further and prices a whole stream of operations
as one marked batch, splitting the stats per operation afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.core.ops import OperandLimits, PimOp, operand_limits
from repro.core.stats import OpAccounting
from repro.memsim.address import AddressMapper, OpLocality
from repro.memsim.controller import (
    KIND_CODES as _CODE,
    Command,
    CommandBatch,
    CommandKind,
    MemoryController,
)
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.mainmem import MainMemory
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import NVMTechnology, get_technology


class PlacementError(RuntimeError):
    """Operands placed so the operation cannot execute in memory."""


#: kind per integer code -- decodes cached command-template rows back
#: into :class:`Command` objects on the legacy per-step path
_KINDS = tuple(CommandKind)

#: MR4 mode codes per PIM operation (paper Fig. 4 hardware control).
MODE_CODES = {PimOp.OR: 0b001, PimOp.AND: 0b010, PimOp.XOR: 0b011, PimOp.INV: 0b100}

#: one queued logical operation for :meth:`PinatuboExecutor.bitwise_many`:
#: (op, dest_frames, source_frame_lists, n_bits[, overlap_chunks])
BitwiseRequest = Union[
    Tuple[object, Sequence[int], Sequence[Sequence[int]], int],
    Tuple[object, Sequence[int], Sequence[Sequence[int]], int, bool],
]


@dataclass(slots=True)
class OpResult:
    """Outcome of one (possibly decomposed, multi-chunk) PIM operation."""

    op: PimOp
    accounting: OpAccounting
    steps: int  # in-memory combine steps actually issued
    localities: Dict[OpLocality, int] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.accounting.latency

    @property
    def energy(self) -> float:
        return self.accounting.energy


class PinatuboExecutor:
    """Executes bulk bitwise operations on an NVM main memory."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        technology: Optional[NVMTechnology] = None,
        memory: Optional[MainMemory] = None,
        controller: Optional[MemoryController] = None,
        max_rows: Optional[int] = None,
        batch_commands: bool = True,
    ):
        self.geometry = geometry
        self.technology = technology or get_technology("pcm")
        self.timing = nvm_timing(self.technology)
        self.memory = memory or MainMemory(geometry)
        self.controller = controller or MemoryController(geometry, self.timing)
        self.mapper = AddressMapper(geometry)
        self.limits: OperandLimits = operand_limits(self.technology, max_rows)
        #: price each logical operation as one vectorized command batch
        #: (False restores the per-combine-step ``execute`` path)
        self.batch_commands = batch_commands
        self._current_mode: Optional[PimOp] = None
        #: combine-step command templates, see :meth:`_step_rows`
        self._step_templates: Dict[tuple, tuple] = {}
        #: when set (a list), the batched paths append their finished
        #: command batches as ``(flavor, batch)`` tuples so the kernel
        #: compiler (:mod:`repro.plan.compile`) can freeze them
        self.record_sink: Optional[list] = None

    # -- host-side data movement ------------------------------------------------

    def write_vector(self, frames: Sequence[int], bits: np.ndarray) -> OpAccounting:
        """Host write of a bit-vector into its row frames (over the bus)."""
        bits = np.asarray(bits, dtype=np.uint8)
        acct = OpAccounting()
        g = self.geometry
        batch = CommandBatch() if self.batch_commands else None
        for i, frame in enumerate(frames):
            chunk = bits[i * g.row_bits : (i + 1) * g.row_bits]
            if chunk.size == 0:
                break
            self.memory.write_bits(frame, chunk)
            ch = self.mapper.channel_of(frame)
            n_bytes = -(-chunk.size // 8)
            if batch is None:
                acct.absorb(self.controller.execute([
                    Command(CommandKind.ACT, channel=ch, n_bits=chunk.size),
                    Command(CommandKind.WR, channel=ch, n_bits=chunk.size,
                            transfer_bytes=n_bytes),
                    Command(CommandKind.PRE, channel=ch),
                ]))
            else:
                batch.add(CommandKind.ACT, channel=ch, n_bits=chunk.size)
                batch.add(CommandKind.WR, channel=ch, n_bits=chunk.size,
                          transfer_bytes=n_bytes)
                batch.add(CommandKind.PRE, channel=ch)
                batch.fence()  # frames serialise, as per-frame execute did
        if batch is not None and len(batch):
            acct.absorb(self.controller.execute_batch(batch))
        return acct

    def read_vector(
        self, frames: Sequence[int], n_bits: int
    ) -> Tuple[np.ndarray, OpAccounting]:
        """Host read of a bit-vector; returns (bits, accounting)."""
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        acct = OpAccounting()
        g = self.geometry
        parts = []
        remaining = n_bits
        batch = CommandBatch() if self.batch_commands else None
        for frame in frames:
            take = min(remaining, g.row_bits)
            parts.append(self.memory.read_bits(frame, take))
            ch = self.mapper.channel_of(frame)
            steps = g.sense_steps_for_bits(take)
            n_bytes = -(-take // 8)
            if batch is None:
                acct.absorb(self.controller.execute([
                    Command(CommandKind.ACT, channel=ch, n_bits=take),
                    Command(CommandKind.PIM_SENSE, channel=ch,
                            n_steps=steps, n_bits=take),
                    Command(CommandKind.RD, channel=ch, n_bits=take,
                            transfer_bytes=n_bytes),
                    Command(CommandKind.PRE, channel=ch),
                ]))
            else:
                batch.add(CommandKind.ACT, channel=ch, n_bits=take)
                batch.add(CommandKind.PIM_SENSE, channel=ch,
                          n_steps=steps, n_bits=take)
                batch.add(CommandKind.RD, channel=ch, n_bits=take,
                          transfer_bytes=n_bytes)
                batch.add(CommandKind.PRE, channel=ch)
                batch.fence()
            remaining -= take
            if remaining <= 0:
                break
        if remaining > 0:
            raise ValueError("frames do not cover n_bits")
        if batch is not None and len(batch):
            acct.absorb(self.controller.execute_batch(batch))
        return np.concatenate(parts), acct

    # -- PIM operations -----------------------------------------------------------

    def bitwise(
        self,
        op,
        dest_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
        overlap_chunks: bool = False,
    ) -> OpResult:
        """Execute ``dest = op(sources)`` over row-aligned vectors.

        Parameters
        ----------
        op:
            A :class:`PimOp` or its string name.
        dest_frames:
            Row frames of the destination vector, one per chunk.
        source_frame_lists:
            One list of row frames per operand vector (all the same chunk
            count as the destination).
        n_bits:
            Logical vector length in bits.
        overlap_chunks:
            Extension beyond the paper: issue every chunk's command
            stream in one batch so chunks placed on *different channels*
            overlap (the controller serialises per channel and takes the
            critical path across channels).  The paper's configuration
            (and the default here) executes chunks serially, which is
            Fig. 9's turning point B.  Pair with
            ``PlacementPolicy.CHANNEL_STRIPED`` to actually spread a long
            vector's chunks over channels.
        """
        op, dest, sources, n_chunks = self._validate_request(
            op, dest_frames, source_frame_lists, n_bits
        )
        with telemetry.span(
            "core.executor.bitwise", op=op.value, n_bits=n_bits
        ) as sp:
            if self.batch_commands:
                sink: Union[CommandBatch, list, None] = CommandBatch()
            else:
                sink = [] if overlap_chunks else None
            total_steps, acct, localities = self._bitwise_into(
                sink, op, dest, sources, n_bits, n_chunks, overlap_chunks
            )
            if isinstance(sink, CommandBatch):
                acct.absorb(self.controller.execute_batch(sink))
                if self.record_sink is not None:
                    self.record_sink.append(("single", sink))
            elif sink:
                acct.absorb(self.controller.execute(sink))
            acct.count_bits(n_bits * len(sources))
            sp.add(steps=total_steps)
            return OpResult(
                op=op, accounting=acct, steps=total_steps, localities=localities
            )

    def bitwise_many(
        self, requests: Sequence[BitwiseRequest]
    ) -> List[OpResult]:
        """Execute a stream of bitwise operations as **one** command batch.

        Each request is ``(op, dest_frames, source_frame_lists, n_bits)``
        with an optional trailing ``overlap_chunks`` flag.  The whole
        stream is emitted into a single marked
        :class:`~repro.memsim.controller.CommandBatch`, priced in one
        vectorized pass, and the stats are split back per operation --
        every returned :class:`OpResult` is identical to what sequential
        :meth:`bitwise` calls would produce.

        Placement is validated for *all* requests up front: a
        :class:`PlacementError` is raised before any memory state is
        mutated or any cost accounted, so callers (the driver) can fall
        back to per-request execution safely.
        """
        parsed = []
        for req in requests:
            op, dest_frames, source_frame_lists, n_bits = req[:4]
            overlap = bool(req[4]) if len(req) > 4 else False
            parsed.append(
                self._validate_request(op, dest_frames, source_frame_lists, n_bits)
                + (n_bits, overlap)
            )
        if not self.batch_commands:
            return [
                self.bitwise(op, dest, sources, n_bits, overlap)
                for op, dest, sources, _, n_bits, overlap in parsed
            ]
        chunk_locs = [
            self._prevalidate_placement(dest, sources, n_chunks)
            for op, dest, sources, n_chunks, n_bits, _ in parsed
        ]

        with telemetry.span(
            "core.executor.bitwise_many", requests=len(parsed)
        ):
            batch = CommandBatch()
            metas = []
            for (op, dest, sources, n_chunks, n_bits, overlap), locs in zip(
                parsed, chunk_locs
            ):
                batch.mark()
                steps, acct, localities = self._bitwise_into(
                    batch, op, dest, sources, n_bits, n_chunks, overlap,
                    chunk_localities=locs,
                )
                metas.append((op, steps, acct, localities, n_bits, len(sources)))
            _, per_op = self.controller.execute_batch(batch, split_ops=True)
            if self.record_sink is not None:
                self.record_sink.append(("many", batch))

            results = []
            for (op, steps, acct, localities, n_bits, n_sources), stats in zip(
                metas, per_op
            ):
                acct.absorb(stats)
                acct.count_bits(n_bits * n_sources)
                results.append(
                    OpResult(op=op, accounting=acct, steps=steps, localities=localities)
                )
            return results

    def bitwise_to_host(
        self,
        op,
        scratch_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ) -> Tuple[np.ndarray, OpResult]:
        """``op(sources)`` with the result streamed to the host I/O bus.

        The paper's alternative emission path: "The results can be sent
        to the I/O bus or written back to another memory row directly."
        The final sensed row of each chunk crosses the DDR bus instead of
        being programmed; when the operand list decomposes into several
        combine steps, the intermediates still accumulate in the
        ``scratch_frames`` rows.

        Returns ``(bits, OpResult)``; nothing is written to the scratch
        row by the final step, so destination wear is avoided entirely
        for single-step operations.
        """
        op, scratch, sources, n_chunks = self._validate_request(
            op, scratch_frames, source_frame_lists, n_bits
        )
        with telemetry.span(
            "core.executor.bitwise_to_host", op=op.value, n_bits=n_bits
        ) as sp:
            sink = CommandBatch() if self.batch_commands else None

            acct = OpAccounting()
            localities: Dict[OpLocality, int] = {}
            bits = None
            fast_path = False
            if isinstance(sink, CommandBatch):
                vectorized = self._vector_chunks_to_host(
                    sink, op, scratch, sources, n_bits, n_chunks, acct, localities
                )
                if vectorized is not None:
                    bits, total_steps = vectorized
                    fast_path = True
            if bits is None:
                total_steps = 0
                parts = []
                row_bits = self.geometry.row_bits
                for c in range(n_chunks):
                    chunk_bits = min(n_bits - c * row_bits, row_bits)
                    chunk_sources = [s[c] for s in sources]
                    host_chunks: List[np.ndarray] = []
                    total_steps += self._chunk_bitwise(
                        op, scratch[c], chunk_sources, chunk_bits, acct, localities,
                        sink, emit_host=True, host_chunks=host_chunks,
                    )
                    packed = host_chunks[-1]
                    parts.append(
                        np.unpackbits(packed, bitorder="little")[:chunk_bits]
                    )
                bits = np.concatenate(parts)
            if sink is not None:
                acct.absorb(self.controller.execute_batch(sink))
                if self.record_sink is not None:
                    self.record_sink.append(("to_host", sink, fast_path))
            acct.count_bits(n_bits * len(sources))
            sp.add(steps=total_steps)
            result = OpResult(
                op=op, accounting=acct, steps=total_steps, localities=localities
            )
            return bits, result

    def _vector_chunks_to_host(
        self,
        batch: CommandBatch,
        op: PimOp,
        scratch: List[int],
        sources: List[List[int]],
        n_bits: int,
        n_chunks: int,
        acct: OpAccounting,
        localities: Dict[OpLocality, int],
    ) -> Optional[Tuple[np.ndarray, int]]:
        """Row-parallel :meth:`bitwise_to_host` fast path.

        Single-step chunks only (multi-step accumulation keeps the
        serial loop, which writes intermediates to the scratch rows);
        the final sensed rows never touch memory, so no aliasing check
        is needed.  Returns ``(bits, steps)`` or ``None``.
        """
        chunk_localities = self._classify_chunks(scratch, sources, n_chunks)
        if op is not PimOp.INV:
            limit = max(2, self.limits.single_step_limit(op))
            if len(sources) > limit and any(
                loc is OpLocality.INTRA_SUBARRAY for loc in chunk_localities
            ):
                return None
        operand_lists = (
            [sources[0][:n_chunks]]
            if op is PimOp.INV
            else [s[:n_chunks] for s in sources]
        )
        new_rows = self.memory.bitwise_rows(op.value, operand_lists)

        self._set_mode(op, acct, batch)
        n_operands = len(operand_lists)
        first_src = operand_lists[0]
        row_bits = self.geometry.row_bits
        channel_of = self.mapper.channel_of
        step_rows = self._step_rows
        counts = acct.locality_counts
        for c in range(n_chunks):
            locality = chunk_localities[c]
            chunk_bits = min(n_bits - c * row_bits, row_bits)
            ch = channel_of(first_src[c])
            rows, _wb = step_rows(op, locality, ch, n_operands, chunk_bits, True)
            batch.extend_rows(rows)
            batch.fence()
            counts[locality] = counts.get(locality, 0) + 1
            localities[locality] = localities.get(locality, 0) + 1
        acct.count_step(n_chunks)
        # rows are contiguous chunks of the vector: flatten and truncate
        bits = np.unpackbits(new_rows, bitorder="little")[:n_bits]
        return bits, n_chunks

    # -- request validation / decomposition -----------------------------------

    def _validate_request(
        self,
        op,
        dest_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ) -> Tuple[PimOp, List[int], List[List[int]], int]:
        op = PimOp.parse(op)
        sources = [list(frames) for frames in source_frame_lists]
        dest = list(dest_frames)
        self.limits.validate_operand_count(op, len(sources))
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        n_chunks = self.geometry.rows_for_bits(n_bits)
        if len(dest) < n_chunks or any(len(s) < n_chunks for s in sources):
            raise ValueError("vectors have fewer row frames than n_bits needs")
        return op, dest, sources, n_chunks

    def _prevalidate_placement(
        self, dest: List[int], sources: List[List[int]], n_chunks: int
    ) -> List[OpLocality]:
        """Raise :class:`PlacementError` before any state is touched.

        Returns each chunk's locality so the emission pass does not have
        to classify the same operand sets a second time.
        """
        classify = self.mapper.classify_frames
        localities = []
        for c in range(n_chunks):
            frames = [s[c] for s in sources]
            frames.append(dest[c])
            locality = classify(frames)
            if locality is OpLocality.INTER_CHIP:
                raise PlacementError(
                    "operands/destination span chips or channels; in-memory "
                    "bitwise operations require same-chip placement "
                    "(remap with the PIM-aware allocator)"
                )
            localities.append(locality)
        return localities

    def _bitwise_into(
        self,
        sink: Union[CommandBatch, list, None],
        op: PimOp,
        dest: List[int],
        sources: List[List[int]],
        n_bits: int,
        n_chunks: int,
        overlap_chunks: bool,
        chunk_localities: Optional[List[OpLocality]] = None,
    ) -> Tuple[int, OpAccounting, Dict[OpLocality, int]]:
        """Emit one logical operation's commands into ``sink``.

        ``sink`` is a :class:`CommandBatch` (batched pricing; fenced per
        combine step unless ``overlap_chunks``), a plain list (legacy
        overlap path: one flat ``execute``), or ``None`` (legacy serial
        path: one ``execute`` per combine step).
        """
        acct = OpAccounting()
        localities: Dict[OpLocality, int] = {}
        fence_steps = not overlap_chunks
        if isinstance(sink, CommandBatch):
            steps = self._vector_chunks(
                sink, op, dest, sources, n_bits, n_chunks, fence_steps,
                chunk_localities, acct, localities,
            )
            if steps is not None:
                return steps, acct, localities
        total_steps = 0
        row_bits = self.geometry.row_bits
        for c in range(n_chunks):
            chunk_bits = min(n_bits - c * row_bits, row_bits)
            chunk_sources = [s[c] for s in sources]
            total_steps += self._chunk_bitwise(
                op, dest[c], chunk_sources, chunk_bits, acct, localities,
                sink, fence_steps=fence_steps,
                locality=chunk_localities[c] if chunk_localities else None,
            )
        return total_steps, acct, localities

    def _classify_chunks(
        self, dest: List[int], sources: List[List[int]], n_chunks: int
    ) -> List[OpLocality]:
        """Locality of every chunk; :class:`PlacementError` on INTER_CHIP."""
        return self._prevalidate_placement(dest, sources, n_chunks)

    def _vector_chunks(
        self,
        batch: CommandBatch,
        op: PimOp,
        dest: List[int],
        sources: List[List[int]],
        n_bits: int,
        n_chunks: int,
        fence_steps: bool,
        chunk_localities: Optional[List[OpLocality]],
        acct: OpAccounting,
        localities: Dict[OpLocality, int],
    ) -> Optional[int]:
        """Row-parallel fast path: one numpy pass over all chunks.

        When every chunk resolves in a single combine step (no
        accumulation passes) and no destination frame feeds another
        chunk, the functional result and the differential write widths
        of the whole vector are computed with row-parallel numpy ops
        (:meth:`MainMemory.bitwise_rows`), and only the command emission
        remains a (cheap) Python loop.  Emitted commands, accounting and
        memory state are identical to the serial chunk loop; returns
        ``None`` when the request needs that general path.
        """
        if chunk_localities is None:
            chunk_localities = self._classify_chunks(dest, sources, n_chunks)
        if op is not PimOp.INV:
            limit = max(2, self.limits.single_step_limit(op))
            if len(sources) > limit and any(
                loc is OpLocality.INTRA_SUBARRAY for loc in chunk_localities
            ):
                return None  # accumulation passes: serial semantics
        # no destination row may be an operand of a *different* chunk
        # (the serial loop would make that a carried dependence)
        dest_pos = {f: c for c, f in enumerate(dest[:n_chunks])}
        if len(dest_pos) != n_chunks:
            return None
        for s in sources:
            get = dest_pos.get
            for c in range(n_chunks):
                hit = get(s[c])
                if hit is not None and hit != c:
                    return None

        mem = self.memory
        operand_lists = (
            [sources[0][:n_chunks]]
            if op is PimOp.INV
            else [s[:n_chunks] for s in sources]
        )
        new_rows = mem.bitwise_rows(op.value, operand_lists)
        changed = mem.diff_bits_rows(dest[:n_chunks], new_rows)

        self._set_mode(op, acct, batch)
        n_operands = len(operand_lists)
        first_src = operand_lists[0]
        row_bits = self.geometry.row_bits
        channel_of = self.mapper.channel_of
        step_rows = self._step_rows
        counts = acct.locality_counts
        write_frame = mem.write_frame
        for c in range(n_chunks):
            locality = chunk_localities[c]
            chunk_bits = min(n_bits - c * row_bits, row_bits)
            ch = channel_of(first_src[c])
            rows, wb_index = step_rows(
                op, locality, ch, n_operands, chunk_bits, False
            )
            rows = list(rows)
            kind, cc, _n, n_steps, transfer = rows[wb_index]
            rows[wb_index] = (kind, cc, changed[c], n_steps, transfer)
            batch.extend_rows(rows)
            if fence_steps:
                batch.fence()
            counts[locality] = counts.get(locality, 0) + 1
            localities[locality] = localities.get(locality, 0) + 1
            write_frame(dest[c], new_rows[c])
        acct.count_step(n_chunks)
        return n_chunks

    # -- chunk-level execution ------------------------------------------------

    def _chunk_bitwise(
        self,
        op: PimOp,
        dest: int,
        srcs: Sequence[int],
        chunk_bits: int,
        acct: OpAccounting,
        localities: Dict[OpLocality, int],
        sink: Union[CommandBatch, list, None] = None,
        emit_host: bool = False,
        host_chunks: Optional[List[np.ndarray]] = None,
        fence_steps: bool = True,
        locality: Optional[OpLocality] = None,
    ) -> int:
        """One rank-row chunk: decompose into in-memory combine steps.

        Folds cost and locality tallies into ``acct``/``localities`` in
        place and returns the number of combine steps issued.  Pass
        ``locality`` when the chunk was already classified (the
        prevalidation pass of :meth:`bitwise_many`).
        """
        self._set_mode(op, acct, sink)

        if locality is None:
            # Route by where this chunk's operands and destination live.
            frames = list(srcs)
            frames.append(dest)
            locality = self.mapper.classify_frames(frames)
        if locality is OpLocality.INTER_CHIP:
            raise PlacementError(
                "operands/destination span chips or channels; in-memory "
                "bitwise operations require same-chip placement "
                "(remap with the PIM-aware allocator)"
            )

        if op is PimOp.INV or locality is not OpLocality.INTRA_SUBARRAY:
            # single combine step: INV, or the buffered path where the
            # global (or I/O) buffer accumulates every operand in one
            # pass -- the multi-row activation limit is a sensing
            # constraint and does not apply there.
            operands = [srcs[0]] if op is PimOp.INV else list(srcs)
            return self._combine_step(
                op, dest, operands, chunk_bits, acct, localities, locality,
                sink, emit_host, fence_steps, host_chunks,
            )

        limit = max(2, self.limits.single_step_limit(op))
        pending = list(srcs)
        # First pass: combine up to `limit` original operands.
        group = pending[: limit]
        pending = pending[limit:]
        final = not pending
        steps = self._combine_step(
            op, dest, group, chunk_bits, acct, localities, locality, sink,
            emit_host and final, fence_steps, host_chunks,
        )
        # Accumulate the rest: dest + up to (limit - 1) new operands per step.
        while pending:
            group = pending[: limit - 1]
            pending = pending[limit - 1 :]
            operands = [dest] + group
            final = not pending
            steps += self._combine_step(
                op, dest, operands, chunk_bits, acct, localities, locality,
                sink, emit_host and final, fence_steps, host_chunks,
            )
        return steps

    def _set_mode(
        self,
        op: PimOp,
        acct: OpAccounting,
        sink: Union[CommandBatch, list, None] = None,
    ) -> None:
        if self._current_mode != op:
            if isinstance(sink, CommandBatch):
                # the MRS rides in the batch: its own fenced segment so
                # its slot serialises exactly like a separate execute()
                self.controller.mode_register = MODE_CODES[op]
                sink.fence()
                sink.add(CommandKind.MRS)
                sink.fence()
            else:
                stats = self.controller.set_pim_mode(MODE_CODES[op])
                acct.absorb(stats)
            self._current_mode = op

    def _combine_step(
        self,
        op: PimOp,
        dest: int,
        operands: Sequence[int],
        chunk_bits: int,
        acct: OpAccounting,
        localities: Dict[OpLocality, int],
        locality: OpLocality,
        sink: Union[CommandBatch, list, None] = None,
        emit_host: bool = False,
        fence_steps: bool = True,
        host_chunks: Optional[List[np.ndarray]] = None,
    ) -> int:
        """Issue (or defer, when ``sink`` is given) one combine step.

        The functional result is computed **once**: it both sizes the
        differential write (only flipped cells pay write energy) and is
        the data written back / streamed to the host.
        """
        new = self.memory.bitwise_frames(op.value, operands)
        ch = self.mapper.channel_of(operands[0])
        rows, wb_index = self._step_rows(
            op, locality, ch, len(operands), chunk_bits, emit_host
        )
        if wb_index is not None:
            changed = self.memory.diff_bits(dest, new)
            rows = list(rows)
            kind, c, _n_bits, n_steps, transfer = rows[wb_index]
            rows[wb_index] = (kind, c, changed, n_steps, transfer)
        if isinstance(sink, CommandBatch):
            sink.extend_rows(rows)
            if fence_steps:
                sink.fence()
            # cost deferred to the batch; tally the locality now
            counts = acct.locality_counts
            counts[locality] = counts.get(locality, 0) + 1
        else:
            commands = [
                Command(_KINDS[k], channel=c, n_bits=b, n_steps=s,
                        transfer_bytes=t)
                for k, c, b, s, t in rows
            ]
            if sink is None:
                acct.absorb(self.controller.execute(commands), locality)
            else:
                sink.extend(commands)  # cost deferred to one flat execute
                counts = acct.locality_counts
                counts[locality] = counts.get(locality, 0) + 1
        acct.count_step()
        localities[locality] = localities.get(locality, 0) + 1
        if emit_host:
            host_chunks.append(new)
        else:
            self.memory.write_frame(dest, new)
        return 1

    # -- command generation -------------------------------------------------------

    def _step_rows(
        self,
        op: PimOp,
        locality: OpLocality,
        channel: int,
        n_operands: int,
        chunk_bits: int,
        emit_host: bool,
    ) -> Tuple[Tuple[Tuple[int, int, int, int, int], ...], Optional[int]]:
        """Command rows of one combine step, as a cached template.

        A step's stream is fully determined by ``(op, locality, channel,
        n_operands, chunk_bits, emit_host)`` except for the
        data-dependent differential write width, so the rows -- encoded
        ``(kind_code, channel, n_bits, n_steps, transfer_bytes)`` tuples
        -- are memoized, and the index of the write-back row (its
        ``n_bits`` is patched per step) is returned alongside.
        """
        key = (op, locality, channel, n_operands, chunk_bits, emit_host)
        cached = self._step_templates.get(key)
        if cached is None:
            if locality is OpLocality.INTRA_SUBARRAY:
                cached = self._intra_subarray_commands(
                    op, channel, n_operands, chunk_bits, emit_host
                )
            else:
                cached = self._buffered_commands(
                    op, channel, n_operands, chunk_bits, locality, emit_host
                )
            self._step_templates[key] = cached
        return cached

    def _intra_subarray_commands(
        self, op: PimOp, ch: int, n_operands: int, chunk_bits: int,
        emit_host: bool = False,
    ) -> Tuple[Tuple[Tuple[int, int, int, int, int], ...], Optional[int]]:
        g = self.geometry
        micro = 2 if op is PimOp.XOR else 1
        steps = g.sense_steps_for_bits(chunk_bits) * micro
        rows = [
            (_CODE[CommandKind.WL_RESET], ch, 0, 1, 0),
            (_CODE[CommandKind.ACT], ch, chunk_bits, 1, 0),
        ]
        rows += [(_CODE[CommandKind.ACT_EXTRA], ch, chunk_bits, 1, 0)] * (
            n_operands - 1
        )
        rows.append(
            (_CODE[CommandKind.PIM_SENSE], ch, chunk_bits * micro, steps, 0)
        )
        wb_index: Optional[int] = None
        if emit_host:
            # "the results can be sent to the I/O bus": stream the sensed
            # row out instead of programming it anywhere
            rows.append((_CODE[CommandKind.RD], ch, 0, 1, -(-chunk_bits // 8)))
        else:
            wb_index = len(rows)
            rows.append((_CODE[CommandKind.PIM_WRITEBACK], ch, 0, 1, 0))
        rows.append((_CODE[CommandKind.PRE], ch, 0, 1, 0))
        return tuple(rows), wb_index

    def _buffered_commands(
        self, op: PimOp, ch: int, n_operands: int, chunk_bits: int,
        locality: OpLocality, emit_host: bool = False,
    ) -> Tuple[Tuple[Tuple[int, int, int, int, int], ...], Optional[int]]:
        """Inter-subarray / inter-bank: global (or I/O) buffer logic path.

        Each operand is read into / combined at the buffer one at a time;
        multi-row activation gives no benefit here, which is why random
        placements collapse Pinatubo-128 to Pinatubo-2 (paper 14-16-7r).
        """
        g = self.geometry
        micro = 2 if op is PimOp.XOR else 1
        steps = g.sense_steps_for_bits(chunk_bits) * micro
        rows = []
        for i in range(n_operands):
            rows.append((_CODE[CommandKind.ACT], ch, chunk_bits, 1, 0))
            rows.append((_CODE[CommandKind.PIM_SENSE], ch, chunk_bits, steps, 0))
            if i > 0:
                rows.append((_CODE[CommandKind.BUF_OP], ch, chunk_bits, 1, 0))
            rows.append((_CODE[CommandKind.PRE], ch, 0, 1, 0))
        if locality is OpLocality.INTER_BANK:
            # the operands also cross the chip-internal I/O datalines;
            # model that as one extra buffer pass per operand.
            rows.append(
                (_CODE[CommandKind.BUF_OP], ch, chunk_bits * n_operands, 1, 0)
            )
        wb_index: Optional[int] = None
        if emit_host:
            # stream the buffer's content to the host instead of writing
            rows.append((_CODE[CommandKind.RD], ch, 0, 1, -(-chunk_bits // 8)))
        else:
            rows.append((_CODE[CommandKind.ACT], ch, chunk_bits, 1, 0))
            wb_index = len(rows)
            rows.append((_CODE[CommandKind.WR], ch, 0, 1, 0))
            rows.append((_CODE[CommandKind.PRE], ch, 0, 1, 0))
        return tuple(rows), wb_index
