"""The :class:`PinatuboSystem` facade.

Bundles geometry, NVM technology, timing, functional memory, controller
and executor into the object most users (and all benchmarks) interact
with.  The evaluation's configurations map directly:

- ``PinatuboSystem.pcm()``             -> Pinatubo-128 (the paper default)
- ``PinatuboSystem.pcm(max_rows=2)``   -> Pinatubo-2
- ``PinatuboSystem.stt()``             -> STT-MRAM (2-row limited)
- ``PinatuboSystem.reram()``           -> ReRAM
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import OpResult, PinatuboExecutor
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.memsim.address import AddressMapper, RowAddress
from repro.memsim.controller import MemoryController
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.mainmem import MainMemory
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import NVMTechnology, get_technology


class PinatuboSystem:
    """An NVM main memory with Pinatubo PIM support."""

    def __init__(
        self,
        technology: Optional[NVMTechnology] = None,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        max_rows: Optional[int] = None,
        batch_commands: bool = True,
    ):
        self.technology = technology or get_technology("pcm")
        self.geometry = geometry
        self.timing = nvm_timing(self.technology)
        self.memory = MainMemory(geometry)
        self.controller = MemoryController(geometry, self.timing)
        self.executor = PinatuboExecutor(
            geometry=geometry,
            technology=self.technology,
            memory=self.memory,
            controller=self.controller,
            max_rows=max_rows,
            batch_commands=batch_commands,
        )
        self.mapper = AddressMapper(geometry)

    # -- canned configurations ------------------------------------------------

    @classmethod
    def from_config(cls, config) -> "PinatuboSystem":
        """Build a system from a declarative
        :class:`repro.backends.config.SystemConfig` (technology, geometry,
        multi-row limit and batching are all taken from the config)."""
        return cls(
            technology=config.technology_object(),
            geometry=config.geometry_object(),
            max_rows=config.max_rows,
            batch_commands=config.batch_commands,
        )

    @classmethod
    def pcm(
        cls,
        max_rows: Optional[int] = None,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
    ) -> "PinatuboSystem":
        """The paper's case study: 1T1R PCM main memory."""
        return cls(get_technology("pcm"), geometry, max_rows)

    @classmethod
    def stt(cls, geometry: MemoryGeometry = DEFAULT_GEOMETRY) -> "PinatuboSystem":
        return cls(get_technology("stt"), geometry)

    @classmethod
    def reram(
        cls,
        max_rows: Optional[int] = None,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
    ) -> "PinatuboSystem":
        return cls(get_technology("reram"), geometry, max_rows)

    # -- properties ----------------------------------------------------------

    @property
    def max_or_rows(self) -> int:
        """One-step multi-row OR width (128 for PCM, 2 for Pinatubo-2/STT)."""
        return self.executor.limits.or_rows

    @property
    def row_bits(self) -> int:
        return self.geometry.row_bits

    @property
    def internal_bandwidth(self) -> float:
        """Sense-limited internal bandwidth of one rank (B/s)."""
        return (self.geometry.sense_bits_per_step / 8.0) / self.timing.t_cl

    @property
    def ddr_bus_bandwidth(self) -> float:
        """Peak DDR data bandwidth of one channel (B/s)."""
        return self.timing.bus_bandwidth

    # -- convenience data paths ---------------------------------------------------

    def store(self, frames: Sequence[int], bits: np.ndarray) -> OpAccounting:
        """Write a bit-vector into its frames (host path, bus priced)."""
        return self.executor.write_vector(frames, bits)

    def load(
        self, frames: Sequence[int], n_bits: int
    ) -> Tuple[np.ndarray, OpAccounting]:
        """Read a bit-vector back (host path); returns (bits, accounting)."""
        return self.executor.read_vector(frames, n_bits)

    def bitwise(self, op, dest_frames, source_frame_lists, n_bits: int) -> OpResult:
        """dest = op(sources); see :meth:`PinatuboExecutor.bitwise`."""
        return self.executor.bitwise(op, dest_frames, source_frame_lists, n_bits)

    # -- microbenchmark helper (Fig. 9) ------------------------------------------

    def or_throughput(self, vector_bits: int, n_operands: int) -> OpAccounting:
        """Cost of one n-operand OR over fresh vectors of ``vector_bits``.

        Operands are placed consecutively in one subarray per chunk (the
        allocator's best case) -- exactly the Fig. 9 microbenchmark.
        Returns the accounting; ``throughput_gbps`` is the paper's y-axis.
        """
        if n_operands < 2:
            raise ValueError("an OR needs at least 2 operands")
        g = self.geometry
        n_chunks = g.rows_for_bits(vector_bits)
        rows_needed = (n_operands + 1) * n_chunks
        if rows_needed > g.rows_per_subarray * g.subarrays_per_bank:
            raise ValueError("vector set does not fit in one bank")
        rng = np.random.default_rng(vector_bits * 31 + n_operands)

        # Place chunk c of every operand in subarray c (consecutive rows),
        # so each chunk op is intra-subarray, while chunks serialise.
        sources = [[] for _ in range(n_operands)]
        dest = []
        for c in range(n_chunks):
            sub_frames = self._subarray_frames(c)
            for i in range(n_operands):
                frame = sub_frames[i]
                self.memory.write_frame(
                    frame,
                    rng.integers(0, 256, size=g.row_bytes).astype(np.uint8),
                )
                sources[i].append(frame)
            dest.append(sub_frames[n_operands])
        result = self.bitwise(PimOp.OR, dest, sources, vector_bits)
        return result.accounting

    def _subarray_frames(self, subarray_index: int) -> List[int]:
        """Frame numbers of all rows in one subarray of bank 0, rank 0."""
        g = self.geometry
        n_sub = g.subarrays_per_bank
        bank, sub = divmod(subarray_index, n_sub)
        base = self.mapper.encode(RowAddress(0, 0, bank, sub, 0))
        return list(range(base, base + g.rows_per_subarray))
