"""Operation accounting for Pinatubo executions, and the stats contract.

Every stats surface in the repro (:class:`~repro.memsim.controller.
ExecutionStats`, :class:`~repro.memsim.controller.PerfCounters`,
:class:`~repro.runtime.driver.DriverStats`, :class:`~repro.backends.
protocol.RunStats`, :class:`OpAccounting`) converges on one convention,
captured by the structural :class:`StatsLike` protocol:

- ``to_dict()`` -- a JSON-ready dict (enum keys serialised to strings)
- ``summary()`` -- a one-line human-readable digest

``StatsLike`` is a :class:`typing.Protocol`, so the concrete stats
classes satisfy it structurally without importing this module (which
matters: this module imports ``memsim.controller``, which sits below
everything else in the import graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.memsim.address import OpLocality
from repro.memsim.controller import CommandKind, ExecutionStats


@runtime_checkable
class StatsLike(Protocol):
    """The shared contract of every stats object in the repro."""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict of the stats (enum keys become strings)."""
        ...

    def summary(self) -> str:
        """One-line human-readable digest."""
        ...


@dataclass(slots=True)
class OpAccounting:
    """Accumulated cost and locality mix of a sequence of PIM operations."""

    latency: float = 0.0  # s
    energy: float = 0.0  # J
    in_memory_steps: int = 0  # sensing/buffer passes issued
    locality_counts: Dict[OpLocality, int] = field(default_factory=dict)
    energy_by_kind: Dict[CommandKind, float] = field(default_factory=dict)
    bus_data_bytes: int = 0
    bus_commands: int = 0
    bits_processed: int = 0  # operand bits consumed by the ops

    def absorb(
        self, stats: ExecutionStats, locality: Optional[OpLocality] = None
    ) -> None:
        """Fold one command-stream execution into the running totals."""
        self.latency += stats.latency
        self.energy += stats.energy
        self.bus_data_bytes += stats.bus.data_bytes
        self.bus_commands += stats.bus.commands
        for kind, e in stats.energy_by_kind.items():
            self.energy_by_kind[kind] = self.energy_by_kind.get(kind, 0.0) + e
        if locality is not None:
            self.locality_counts[locality] = (
                self.locality_counts.get(locality, 0) + 1
            )

    def count_step(self, n: int = 1) -> None:
        self.in_memory_steps += n

    def count_bits(self, n: int) -> None:
        if n < 0:
            raise ValueError("bit count must be non-negative")
        self.bits_processed += n

    @property
    def throughput_bytes_per_s(self) -> float:
        """Operand data processed per second (the paper's GBps metric)."""
        if self.latency <= 0:
            return 0.0
        return (self.bits_processed / 8.0) / self.latency

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bytes_per_s / 1e9

    @property
    def energy_per_bit(self) -> float:
        """J per operand bit processed."""
        if self.bits_processed == 0:
            return 0.0
        return self.energy / self.bits_processed

    def energy_breakdown(self) -> Dict[str, float]:
        """{command kind name: fraction of array energy}, descending."""
        total = sum(self.energy_by_kind.values())
        if total <= 0:
            return {}
        items = sorted(
            ((k.value, e / total) for k, e in self.energy_by_kind.items()),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return dict(items)

    def merge_from(self, other: "OpAccounting") -> None:
        """In-place :meth:`merged`: same field and dict accumulation
        order, so ``a.merged(x).merged(y)`` and ``t = a.merged(x);
        t.merge_from(y)`` produce bit-identical floats -- the planner's
        serve/replay hot paths rely on that to accumulate a wave without
        one allocation per item."""
        self.latency += other.latency
        self.energy += other.energy
        self.in_memory_steps += other.in_memory_steps
        self.bus_data_bytes += other.bus_data_bytes
        self.bus_commands += other.bus_commands
        self.bits_processed += other.bits_processed
        for loc, n in other.locality_counts.items():
            self.locality_counts[loc] = self.locality_counts.get(loc, 0) + n
        for kind, e in other.energy_by_kind.items():
            self.energy_by_kind[kind] = self.energy_by_kind.get(kind, 0.0) + e

    def merged(self, other: "OpAccounting") -> "OpAccounting":
        out = OpAccounting(
            latency=self.latency + other.latency,
            energy=self.energy + other.energy,
            in_memory_steps=self.in_memory_steps + other.in_memory_steps,
            locality_counts=dict(self.locality_counts),
            energy_by_kind=dict(self.energy_by_kind),
            bus_data_bytes=self.bus_data_bytes + other.bus_data_bytes,
            bus_commands=self.bus_commands + other.bus_commands,
            bits_processed=self.bits_processed + other.bits_processed,
        )
        for loc, n in other.locality_counts.items():
            out.locality_counts[loc] = out.locality_counts.get(loc, 0) + n
        for kind, e in other.energy_by_kind.items():
            out.energy_by_kind[kind] = out.energy_by_kind.get(kind, 0.0) + e
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (enum keys become their ``.value`` strings)."""
        return {
            "latency_s": self.latency,
            "energy_j": self.energy,
            "in_memory_steps": self.in_memory_steps,
            "locality_counts": {
                loc.value: n for loc, n in self.locality_counts.items()
            },
            "energy_by_kind": {
                kind.value: e for kind, e in self.energy_by_kind.items()
            },
            "bus_data_bytes": self.bus_data_bytes,
            "bus_commands": self.bus_commands,
            "bits_processed": self.bits_processed,
            "throughput_gbps": self.throughput_gbps,
            "energy_per_bit_j": self.energy_per_bit,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"OpAccounting: {self.bits_processed} bits in "
            f"{self.in_memory_steps} steps, latency {self.latency:.3e}s, "
            f"energy {self.energy:.3e}J, {self.throughput_gbps:.3f} GB/s"
        )
