"""Analytical Pinatubo cost model (the harness-facing adapter).

The functional executor (:mod:`repro.core.executor`) computes real bits
and exact differential write widths, which is what tests and applications
use.  Evaluation sweeps (2^16 vectors x thousands of ops) need the same
*cost* without touching 64 KiB frames per op, so this model builds the
identical command streams and prices them through the same
:class:`~repro.memsim.controller.MemoryController`, with two analytic
assumptions:

- write-back flips half the destination bits (random-data expectation);
- SEQUENTIAL access means the allocator achieved intra-subarray
  placement; RANDOM means operands scattered, so every combine runs on
  the buffered (inter-subarray/inter-bank) path where multi-row
  activation cannot help -- reproducing the paper's 14-16-7r collapse.

``tests/test_cross_validation.py`` checks this model against the
functional executor command-for-command.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import (
    AccessPattern,
    BaselineCost,
    BitwiseBaseline,
    validate_request,
)
from repro.core.ops import PimOp, operand_limits
from repro.memsim.controller import Command, CommandKind, MemoryController
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import NVMTechnology, get_technology


class PinatuboModel(BitwiseBaseline):
    """Closed-form Pinatubo costs via priced command streams."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        technology: Optional[NVMTechnology] = None,
        max_rows: Optional[int] = None,
        name: Optional[str] = None,
    ):
        self.geometry = geometry
        self.technology = technology or get_technology("pcm")
        self.timing = nvm_timing(self.technology)
        self.controller = MemoryController(geometry, self.timing)
        self.limits = operand_limits(self.technology, max_rows)
        self.name = name or f"Pinatubo-{self.limits.or_rows}"

    def supports(self, op: str) -> bool:
        return op in ("or", "and", "xor", "inv")

    # -- cost entry point ----------------------------------------------------

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        op_name = validate_request(op, n_operands, vector_bits)
        op = PimOp.parse(op_name)
        access = AccessPattern.parse(access)
        g = self.geometry

        chunks = g.rows_for_bits(vector_bits)
        latency = 0.0
        energy = 0.0
        # MRS once per bulk call (mode switch)
        stats = self.controller.set_pim_mode(1)
        latency += stats.latency
        energy += stats.energy
        for c in range(chunks):
            chunk_bits = min(vector_bits - c * g.row_bits, g.row_bits)
            if access is AccessPattern.RANDOM and op is not PimOp.INV:
                # Buffered path: one pass accumulates every operand at the
                # global/IO buffer; the multi-row sensing limit is moot, so
                # Pinatubo-128 degrades to exactly Pinatubo-2 here.
                groups = [n_operands]
            else:
                groups = self._combine_groups(op, n_operands)
            for group_size in groups:
                commands = self._step_commands(op, group_size, chunk_bits, access)
                stats = self.controller.execute(commands)
                latency += stats.latency
                energy += stats.energy
        return BaselineCost(latency=latency, energy=energy, offloaded=True)

    # -- decomposition ---------------------------------------------------------

    def _combine_groups(self, op: PimOp, n_operands: int):
        """Operand-count of each in-memory combine step."""
        if op is PimOp.INV:
            return [1]
        limit = max(2, self.limits.single_step_limit(op))
        groups = [min(n_operands, limit)]
        remaining = n_operands - groups[0]
        while remaining > 0:
            take = min(remaining, limit - 1)
            groups.append(take + 1)  # +1 for the accumulator row
            remaining -= take
        return groups

    # -- command synthesis (mirrors the executor) -------------------------------

    def _step_commands(self, op, group_size, chunk_bits, access):
        g = self.geometry
        micro = 2 if op is PimOp.XOR else 1
        steps = g.sense_steps_for_bits(chunk_bits) * micro
        changed = chunk_bits // 2  # random-data expectation
        if access is AccessPattern.SEQUENTIAL:
            commands = [
                Command(CommandKind.WL_RESET),
                Command(CommandKind.ACT, n_bits=chunk_bits),
            ]
            commands += [Command(CommandKind.ACT_EXTRA, n_bits=chunk_bits)] * (
                group_size - 1
            )
            commands += [
                Command(CommandKind.PIM_SENSE, n_steps=steps, n_bits=chunk_bits * micro),
                Command(CommandKind.PIM_WRITEBACK, n_bits=changed),
                Command(CommandKind.PRE),
            ]
            return commands
        # RANDOM: buffered inter-subarray/bank path, one read per operand.
        commands = []
        for i in range(group_size):
            commands += [
                Command(CommandKind.ACT, n_bits=chunk_bits),
                Command(CommandKind.PIM_SENSE, n_steps=steps, n_bits=chunk_bits),
            ]
            if i > 0:
                commands.append(Command(CommandKind.BUF_OP, n_bits=chunk_bits))
            commands.append(Command(CommandKind.PRE))
        commands += [
            Command(CommandKind.BUF_OP, n_bits=chunk_bits * group_size),
            Command(CommandKind.ACT, n_bits=chunk_bits),
            Command(CommandKind.WR, n_bits=changed),
            Command(CommandKind.PRE),
        ]
        return commands
