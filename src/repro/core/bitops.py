"""Shared packed-bit helpers.

The functional memory stores bit-vectors packed little-endian in
``uint8`` arrays (``numpy.packbits(bitorder='little')``).  Several
layers — write-back pricing in the plan compiler, delta repair, the
arithmetic subsystem's popcount reductions — need fast set-bit counts
over that representation.  This module is their shared public home;
the implementations live next to the storage layout they describe
(:mod:`repro.memsim.mainmem`) and are re-exported here so callers
never reach into another package's underscore names.
"""

from __future__ import annotations

from repro.memsim.mainmem import popcount_packed, popcount_rows

__all__ = ["popcount_packed", "popcount_rows"]
