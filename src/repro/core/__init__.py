"""Pinatubo core: the paper's primary contribution.

Bulk bitwise operations executed *inside* NVM main memory:

- :mod:`repro.core.ops` -- the operation vocabulary (OR/AND/XOR/INV) and
  per-operation operand rules.
- :mod:`repro.core.executor` -- routes every operation by operand
  placement (intra-subarray / inter-subarray / inter-bank), generates the
  DDR command streams, computes the functional result on the packed-bit
  memory, and accounts latency/energy.
- :mod:`repro.core.pinatubo` -- :class:`PinatuboSystem`, the user-facing
  facade bundling geometry, technology, controller, functional memory and
  executor (with ``Pinatubo-2`` / ``Pinatubo-128`` style row-limit
  configuration).
- :mod:`repro.core.model` -- :class:`PinatuboModel`, the closed-form
  cost twin of the executor (what evaluation sweeps price against).
- :mod:`repro.core.stats` -- operation accounting.
"""

from repro.core.ops import PimOp, OperandLimits, operand_limits
from repro.core.stats import OpAccounting
from repro.core.bitops import popcount_packed, popcount_rows
from repro.core.executor import PinatuboExecutor, OpResult, PlacementError
from repro.core.model import PinatuboModel
from repro.core.pinatubo import PinatuboSystem

__all__ = [
    "PimOp",
    "popcount_packed",
    "popcount_rows",
    "OperandLimits",
    "operand_limits",
    "OpAccounting",
    "PinatuboExecutor",
    "OpResult",
    "PlacementError",
    "PinatuboModel",
    "PinatuboSystem",
]
