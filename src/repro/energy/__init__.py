"""Latency / energy / area models (the NVSim + CACTI-3DD role).

The paper extracts low-level parameters from HSPICE + synthesis and feeds
them through heavily-modified NVSim (circuit level) and CACTI-3DD (main
memory level).  Offline, we substitute analytical models with published
65 nm constants, calibrated so the paper's anchors hold (PCM 18.3-8.9-151.1
ns timings; Pinatubo ~0.9 % chip area vs AC-PIM ~6.4 %; DRAM access energy
orders of magnitude above an ALU op).

- :mod:`repro.energy.constants` -- 65 nm process constants.
- :mod:`repro.energy.nvsim` -- per-chip component counts and array-level
  op energies.
- :mod:`repro.energy.area` -- chip area and PIM overhead breakdown
  (experiment E8 / paper Fig. 13).
- :mod:`repro.energy.cacti` -- memory-system level per-access costs used
  by the CPU baseline.
"""

from repro.energy.constants import ProcessConstants, PROCESS_65NM
from repro.energy.nvsim import ChipModel
from repro.energy.area import AreaModel, AreaReport
from repro.energy.cacti import MemorySystemModel

__all__ = [
    "ProcessConstants",
    "PROCESS_65NM",
    "ChipModel",
    "AreaModel",
    "AreaReport",
    "MemorySystemModel",
]
