"""Area-overhead model (paper Fig. 13 / experiment E8).

Pinatubo's add-on area on a PCM chip decomposes into:

- *intra-subarray* circuits: extra SA references (AND/OR), the XOR hold
  capacitor + pass pair, and the two-transistor LWL activation latch;
- *inter-subarray* logic: a bit-slice of bitwise gates + result latch on
  each bank's global row buffer;
- *inter-bank* logic: the same bit-slice on the chip's I/O buffer.

The AC-PIM baseline instead implements even intra-subarray operations with
digital bit-slices at every subarray, which is where its ~7x larger
overhead comes from.  The paper reports Pinatubo ~0.9 % vs AC-PIM ~6.4 %,
with inter-subarray logic dominating Pinatubo's budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.constants import PROCESS_65NM, ProcessConstants
from repro.energy.nvsim import ChipModel
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.nvm.technology import NVMTechnology, get_technology


@dataclass
class AreaReport:
    """Per-component add-on areas (um^2) against a baseline chip area."""

    design: str
    chip_area: float
    components: dict = field(default_factory=dict)

    @property
    def total_overhead(self) -> float:
        return sum(self.components.values())

    @property
    def overhead_fraction(self) -> float:
        """Add-on area as a fraction of the unmodified chip area."""
        return self.total_overhead / self.chip_area

    def fraction(self, component: str) -> float:
        return self.components[component] / self.chip_area

    def breakdown(self) -> dict:
        """{component: fraction of chip area}, descending."""
        items = sorted(
            ((k, v / self.chip_area) for k, v in self.components.items()),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return dict(items)


class AreaModel:
    """Computes Fig. 13's bars for a geometry/technology/process triple."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        technology: NVMTechnology = None,
        process: ProcessConstants = PROCESS_65NM,
    ):
        self.geometry = geometry
        self.technology = technology or get_technology("pcm")
        self.process = process
        self.chip = ChipModel(geometry, self.technology, process)

    def pinatubo(self, xor_supported: bool = True) -> AreaReport:
        """Pinatubo's add-on area breakdown."""
        chip = self.chip
        p = self.process
        components = {
            "and/or": chip.sense_amps * p.area_sa_reference_pair,
            "wl act": chip.lwl_drivers * p.area_lwl_latch,
            "inter-sub": (
                self.geometry.banks_per_chip
                * chip.global_buffer_bits
                * p.area_buffer_bit_slice
            ),
            "inter-bank": chip.io_buffer_bits * p.area_buffer_bit_slice,
            "ctrl": self.geometry.banks_per_chip * p.area_bank_controller,
        }
        if xor_supported:
            components["xor"] = chip.sense_amps * p.area_sa_xor
        return AreaReport(
            design="Pinatubo", chip_area=chip.chip_area, components=components
        )

    def acpim(self) -> AreaReport:
        """AC-PIM: digital bit-slice ALUs at every subarray."""
        chip = self.chip
        p = self.process
        components = {
            "subarray logic": (
                chip.subarrays
                * self.geometry.chip_row_bits
                * p.area_acpim_bit_slice
            ),
            "inter-bank": chip.io_buffer_bits * p.area_buffer_bit_slice,
            "ctrl": self.geometry.banks_per_chip * p.area_bank_controller,
        }
        return AreaReport(
            design="AC-PIM", chip_area=chip.chip_area, components=components
        )

    def intra_subarray_fraction(self) -> float:
        """Pinatubo's intra-subarray share (and/or + xor + wl act)."""
        report = self.pinatubo()
        intra = (
            report.components["and/or"]
            + report.components["xor"]
            + report.components["wl act"]
        )
        return intra / report.chip_area
