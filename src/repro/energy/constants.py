"""65 nm process constants for the analytical area/energy models.

These play the role of the synthesis library + NVSim device files in the
paper's flow.  Component areas are layout areas including local routing
overhead (hence much larger than raw transistor W*L); they are calibrated
so the default geometry reproduces the paper's Fig. 13 breakdown, and they
scale structurally with the geometry (counts of SAs, drivers, buffer bits)
so ablations behave sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessConstants:
    """Area and energy constants of one logic/memory process node."""

    name: str
    feature_nm: float
    # -- areas (um^2) ------------------------------------------------------
    #: One add-on reference branch pair on a CSA (the AND/OR modification).
    area_sa_reference_pair: float
    #: XOR modification per SA: hold cap Ch + two pass transistors + mux leg.
    area_sa_xor: float
    #: Two added transistors on one LWL driver (latch feedback + reset),
    #: sized for wordline drive.
    area_lwl_latch: float
    #: One bit-slice of buffer add-on logic (AND/OR/XOR gates + result
    #: latch + mux) at the global row buffer or I/O buffer.
    area_buffer_bit_slice: float
    #: One bit-slice of a full digital PIM ALU at subarray level, as the
    #: AC-PIM baseline needs (logic + operand latch; denser than the buffer
    #: slice because it omits the long GDL drivers).
    area_acpim_bit_slice: float
    #: Controller / sequencer overhead per bank (PIM command decode).
    area_bank_controller: float
    # -- energies (J) --------------------------------------------------------
    #: Energy per bit through one 2-input CMOS gate level.
    e_gate_per_bit: float
    #: Energy per bit latched.
    e_latch_per_bit: float
    #: Array efficiency: cell area / chip area for a commodity memory die.
    array_efficiency: float = 0.5


#: Default constants (65 nm, the paper's synthesis node).
PROCESS_65NM = ProcessConstants(
    name="65nm",
    feature_nm=65.0,
    area_sa_reference_pair=0.66,
    area_sa_xor=2.0,
    area_lwl_latch=0.42,
    area_buffer_bit_slice=23.9,
    area_acpim_bit_slice=6.6,
    area_bank_controller=2000.0,
    e_gate_per_bit=0.005e-12,
    e_latch_per_bit=0.01e-12,
)
