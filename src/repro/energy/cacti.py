"""CACTI-substitute: memory-system level per-access costs.

The SIMD CPU baseline needs the cost of moving cachelines between the
processor and main memory; the PIM executors need aggregate chip-level
costs.  This module provides both from the timing parameter sets, playing
the role CACTI-3DD plays in the paper's flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.timing import DDR3_1600, TimingParams, nvm_timing
from repro.nvm.technology import NVMTechnology

CACHELINE_BYTES = 64


@dataclass(frozen=True)
class AccessCost:
    """Latency/energy of one memory access of a given size."""

    latency: float  # s
    energy: float  # J


class MemorySystemModel:
    """Per-access cost model for one main-memory configuration."""

    def __init__(self, timing: TimingParams, channels: int = 4):
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.timing = timing
        self.channels = channels

    @classmethod
    def dram(cls, channels: int = 4) -> "MemorySystemModel":
        return cls(DDR3_1600, channels)

    @classmethod
    def nvm(cls, technology: NVMTechnology, channels: int = 4) -> "MemorySystemModel":
        return cls(nvm_timing(technology), channels)

    # -- single accesses -----------------------------------------------------

    def cacheline_read(self) -> AccessCost:
        """Random 64 B read: full row cycle + burst."""
        t = self.timing
        latency = t.t_rcd + t.t_cl + t.transfer_time(CACHELINE_BYTES)
        energy = (
            CACHELINE_BYTES * 8 * (t.e_activate_per_bit + t.e_sense_per_bit)
            + t.transfer_energy(CACHELINE_BYTES)
            + 2 * t.e_cmd
        )
        return AccessCost(latency, energy)

    def cacheline_write(self) -> AccessCost:
        """Random 64 B write."""
        t = self.timing
        latency = t.t_rcd + t.t_wr + t.transfer_time(CACHELINE_BYTES)
        energy = (
            CACHELINE_BYTES * 8 * (t.e_activate_per_bit + t.e_write_per_bit)
            + t.transfer_energy(CACHELINE_BYTES)
            + 2 * t.e_cmd
        )
        return AccessCost(latency, energy)

    # -- streaming -------------------------------------------------------------

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak data bandwidth over all channels (B/s)."""
        return self.channels * self.timing.bus_bandwidth

    def stream_cost(self, n_bytes: int, write_fraction: float = 0.0) -> AccessCost:
        """Sequential bulk transfer of ``n_bytes`` (row-buffer friendly).

        Bandwidth-limited latency over all channels; energy counts array
        access plus bus per byte.  ``write_fraction`` of the bytes pay
        write energy instead of read energy.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        t = self.timing
        latency = n_bytes / self.peak_bandwidth
        bits = n_bytes * 8
        read_bits = bits * (1.0 - write_fraction)
        write_bits = bits * write_fraction
        energy = (
            read_bits * (t.e_activate_per_bit / 8 + t.e_sense_per_bit)
            + write_bits * (t.e_activate_per_bit / 8 + t.e_write_per_bit)
            + t.transfer_energy(n_bytes)
        )
        return AccessCost(latency, energy)
