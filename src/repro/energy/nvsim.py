"""NVSim-substitute: per-chip component counts and array-level energies.

Derives, from a :class:`~repro.memsim.geometry.MemoryGeometry` and an
:class:`~repro.nvm.technology.NVMTechnology`, the structural quantities
every other model needs: how many SAs, write drivers, LWL drivers and
buffer bit-slices one chip carries, the chip's cell count and cell-array
area, and the energy of array-level operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.constants import PROCESS_65NM, ProcessConstants
from repro.memsim.geometry import MemoryGeometry
from repro.nvm.technology import NVMTechnology


@dataclass(frozen=True)
class ChipModel:
    """Structural + energy model of one memory chip."""

    geometry: MemoryGeometry
    technology: NVMTechnology
    process: ProcessConstants = PROCESS_65NM

    # -- structural counts (per chip) ------------------------------------

    @property
    def subarrays(self) -> int:
        g = self.geometry
        return g.banks_per_chip * g.subarrays_per_bank

    @property
    def mats(self) -> int:
        return self.subarrays * self.geometry.mats_per_subarray

    @property
    def cells(self) -> int:
        g = self.geometry
        return (
            g.banks_per_chip
            * g.subarrays_per_bank
            * g.rows_per_subarray
            * g.chip_row_bits
        )

    @property
    def sense_amps(self) -> int:
        """SAs per chip: one per mux group per mat."""
        g = self.geometry
        return self.mats * (g.cols_per_mat // g.mux_ratio)

    @property
    def write_drivers(self) -> int:
        # WDs are per mux group too (written through the same column mux).
        return self.sense_amps

    @property
    def lwl_drivers(self) -> int:
        """Local wordline drivers: one per row per mat."""
        return self.mats * self.geometry.rows_per_subarray

    @property
    def global_buffer_bits(self) -> int:
        """Global row buffer width per bank (one chip's share of a row)."""
        return self.geometry.chip_row_bits

    @property
    def io_buffer_bits(self) -> int:
        """I/O buffer width per chip (shared by all banks)."""
        return self.geometry.chip_row_bits

    # -- areas (um^2, per chip) ---------------------------------------------

    @property
    def cell_array_area(self) -> float:
        return self.cells * self.technology.cell_area_f2 * (
            self.technology.feature_nm * 1e-3
        ) ** 2

    @property
    def chip_area(self) -> float:
        """Baseline (unmodified) chip area from array efficiency."""
        return self.cell_array_area / self.process.array_efficiency

    # -- array-level energies (J) ----------------------------------------------

    def activation_energy(self, n_rows: int = 1) -> float:
        """Wordline-swing energy of opening ``n_rows`` chip rows.

        NVM activation is non-destructive: no bitline restore, only the
        wordline swing over the row's access transistors.
        """
        if n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        per_row = 0.01e-12 * self.geometry.chip_row_bits
        return n_rows * per_row

    def sense_energy(self, n_bits: int, extra_references: int = 0) -> float:
        """Energy to resolve ``n_bits`` through the (modified) CSAs."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        return (
            n_bits
            * self.technology.cell_read_energy
            * (1.0 + 0.1 * extra_references)
        )

    def write_energy(self, bits_set: int, bits_reset: int) -> float:
        """Programming energy for a differential row write."""
        if bits_set < 0 or bits_reset < 0:
            raise ValueError("bit counts must be non-negative")
        t = self.technology
        return bits_set * t.cell_set_energy + bits_reset * t.cell_reset_energy

    def buffer_logic_energy(self, n_bits: int) -> float:
        """Add-on digital logic pass at a global/IO buffer (per chip)."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        p = self.process
        return n_bits * (p.e_gate_per_bit + p.e_latch_per_bit)

    # -- report ----------------------------------------------------------------

    def report(self) -> str:
        """NVSim-style text summary of one chip."""
        t = self.technology
        lines = [
            f"Chip model: {t.name} @ {t.feature_nm:.0f} nm "
            f"({self.process.name} logic)",
            f"  capacity          : {self.cells / (1 << 30):.1f} Gb "
            f"({self.cells / (1 << 33):.2f} GiB)",
            f"  organisation      : {self.geometry.banks_per_chip} banks x "
            f"{self.geometry.subarrays_per_bank} subarrays x "
            f"{self.geometry.mats_per_subarray} mats x "
            f"{self.geometry.rows_per_subarray} rows x "
            f"{self.geometry.cols_per_mat} cols",
            f"  sense amplifiers  : {self.sense_amps:,} "
            f"(1:{self.geometry.mux_ratio} column mux)",
            f"  LWL drivers       : {self.lwl_drivers:,}",
            f"  cell array area   : {self.cell_array_area / 1e6:.1f} mm^2",
            f"  chip area         : {self.chip_area / 1e6:.1f} mm^2 "
            f"(efficiency {self.process.array_efficiency:.0%})",
            f"  timing (ns)       : tRCD {t.trcd_ns:.1f} / tCL {t.tcl_ns:.1f} "
            f"/ tWR {t.twr_ns:.1f}",
            f"  cell energies (pJ): read {t.cell_read_energy * 1e12:.2f} / "
            f"SET {t.cell_set_energy * 1e12:.2f} / "
            f"RESET {t.cell_reset_energy * 1e12:.2f}",
        ]
        return "\n".join(lines)
