"""Workload descriptors and operation traces.

The evaluation drives every scheme with the same abstract *operation
trace*: a sequence of bulk bitwise operations (op, operand count, vector
length, access pattern) interleaved with scalar CPU work.  Applications
generate traces; the harness prices a trace on any
:class:`~repro.baselines.base.BitwiseBaseline`.

- :mod:`repro.workloads.spec` -- the paper's Vector benchmark descriptors
  ("19-16-7s" = 2^19-bit vectors, 2^16 of them, 2^7-row OR ops,
  sequential).
- :mod:`repro.workloads.trace` -- trace container and pricing.
- :mod:`repro.workloads.service_load` -- synthetic multi-tenant serving
  load (open-loop Poisson arrivals, Zipf tenant skew) for
  :mod:`repro.service`.
"""

from repro.workloads.service_load import (
    ServiceLoadSpec,
    build_datasets,
    generate_requests,
    play_stream,
    run_cluster_load,
    run_service_load,
)
from repro.workloads.spec import VectorSpec
from repro.workloads.trace import BitwiseEvent, CpuEvent, OpTrace, WorkloadCost

__all__ = [
    "BitwiseEvent",
    "CpuEvent",
    "OpTrace",
    "ServiceLoadSpec",
    "VectorSpec",
    "WorkloadCost",
    "build_datasets",
    "generate_requests",
    "play_stream",
    "run_cluster_load",
    "run_service_load",
]
