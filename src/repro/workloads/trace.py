"""Operation traces and their pricing on a baseline.

A trace is the scheme-independent record of what an application did:
bulk bitwise operations plus the scalar CPU work between them.  Pricing a
trace on a baseline yields the latency/energy split the paper's figures
are built from: Figs. 10-11 compare the *bitwise* parts, Fig. 12 the
totals (bitwise + non-bitwise, where the non-bitwise part is identical
across schemes -- Amdahl's law is the whole story of Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.baselines.base import AccessPattern, BitwiseBaseline
from repro.baselines.simd import CpuConfig


@dataclass(frozen=True)
class BitwiseEvent:
    """``count`` identical bulk bitwise operations."""

    op: str
    n_operands: int
    vector_bits: int
    access: AccessPattern = AccessPattern.SEQUENTIAL
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.vector_bits < 1:
            raise ValueError("vector_bits must be >= 1")
        if self.n_operands < 1:
            raise ValueError("n_operands must be >= 1")


@dataclass(frozen=True)
class CpuEvent:
    """Scalar CPU work (non-bitwise): ``ops`` simple operations."""

    ops: float
    label: str = "cpu"

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ValueError("ops must be non-negative")


@dataclass
class WorkloadCost:
    """Priced trace: bitwise and non-bitwise parts, separately."""

    bitwise_latency: float = 0.0
    bitwise_energy: float = 0.0
    other_latency: float = 0.0
    other_energy: float = 0.0

    @property
    def total_latency(self) -> float:
        return self.bitwise_latency + self.other_latency

    @property
    def total_energy(self) -> float:
        return self.bitwise_energy + self.other_energy

    @property
    def bitwise_latency_fraction(self) -> float:
        if self.total_latency == 0:
            return 0.0
        return self.bitwise_latency / self.total_latency


@dataclass
class OpTrace:
    """A workload's recorded operations."""

    name: str = "trace"
    events: list = field(default_factory=list)

    # -- recording -------------------------------------------------------------

    def bitwise(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access=AccessPattern.SEQUENTIAL,
        count: int = 1,
    ) -> None:
        self.events.append(
            BitwiseEvent(op, n_operands, vector_bits, AccessPattern.parse(access), count)
        )

    def cpu(self, ops: float, label: str = "cpu") -> None:
        self.events.append(CpuEvent(ops, label))

    def extend(self, other: "OpTrace") -> None:
        self.events.extend(other.events)

    # -- summaries --------------------------------------------------------------

    @property
    def n_bitwise_ops(self) -> int:
        return sum(e.count for e in self.events if isinstance(e, BitwiseEvent))

    @property
    def bitwise_operand_bits(self) -> int:
        return sum(
            e.count * e.n_operands * e.vector_bits
            for e in self.events
            if isinstance(e, BitwiseEvent)
        )

    @property
    def cpu_ops(self) -> float:
        return sum(e.ops for e in self.events if isinstance(e, CpuEvent))

    def op_histogram(self) -> dict:
        hist = {}
        for e in self.events:
            if isinstance(e, BitwiseEvent):
                hist[e.op] = hist.get(e.op, 0) + e.count
        return hist

    # -- pricing ------------------------------------------------------------------

    #: effective scalar throughput of the non-bitwise part: instructions
    #: per cycle per core on pointer-chasing / scan code.
    _SCALAR_IPC = 1.0

    def price(
        self,
        baseline: BitwiseBaseline,
        cpu: CpuConfig = CpuConfig(),
        cores_for_scalar: int = 1,
    ) -> WorkloadCost:
        """Price the trace on a scheme.

        The bitwise events run on ``baseline``; CPU events run on the host
        in every scheme (``cores_for_scalar`` of them -- BFS frontier scans
        and FastBit result counting are single-threaded in the reference
        implementations).
        """
        with telemetry.span(
            "workloads.trace.price",
            trace=self.name,
            scheme=getattr(baseline, "name", type(baseline).__name__),
        ) as sp:
            cost = WorkloadCost()
            memo = {}
            for e in self.events:
                if isinstance(e, BitwiseEvent):
                    key = (e.op, e.n_operands, e.vector_bits, e.access)
                    c = memo.get(key)
                    if c is None:
                        c = baseline.bitwise_cost(
                            e.op, e.n_operands, e.vector_bits, e.access
                        )
                        memo[key] = c
                    cost.bitwise_latency += e.count * c.latency
                    cost.bitwise_energy += e.count * c.energy
                else:
                    t = e.ops / (
                        cpu.frequency * self._SCALAR_IPC * cores_for_scalar
                    )
                    cost.other_latency += t
                    # scalar phases keep the package about as busy as the
                    # streaming phases (pointer chasing pins the core)
                    cost.other_energy += cpu.active_power * t
            sp.add(
                latency_s=cost.total_latency, energy_j=cost.total_energy
            )
            return cost
