"""The Vector microbenchmark descriptors (paper Table 1).

"dataset: e.g. 19-16-1(s/r) means 2^19-length vector, 2^16 vectors,
2^1-row OR ops (sequential/random access)".  The paper's five instances:
19-16-1s, 19-16-7s, 14-12-7s, 14-16-7s, 14-16-7r.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.baselines.base import AccessPattern

_SPEC_RE = re.compile(r"^(\d+)-(\d+)-(\d+)([sr])$")


@dataclass(frozen=True)
class VectorSpec:
    """One Vector benchmark instance."""

    log_length: int  # vector length = 2^log_length bits
    log_vectors: int  # number of vectors = 2^log_vectors
    log_rows: int  # rows per OR op = 2^log_rows operands... see note
    access: AccessPattern

    def __post_init__(self) -> None:
        if self.log_length < 1 or self.log_vectors < 1 or self.log_rows < 1:
            raise ValueError("spec exponents must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "VectorSpec":
        """Parse a paper-style descriptor.

        >>> VectorSpec.parse("19-16-7s").operands_per_op
        128
        """
        m = _SPEC_RE.match(text.strip())
        if not m:
            raise ValueError(
                f"bad vector spec {text!r} (expected e.g. '19-16-7s')"
            )
        log_length, log_vectors, log_rows, mode = m.groups()
        return cls(
            log_length=int(log_length),
            log_vectors=int(log_vectors),
            log_rows=int(log_rows),
            access=AccessPattern.SEQUENTIAL if mode == "s" else AccessPattern.RANDOM,
        )

    @property
    def vector_bits(self) -> int:
        return 1 << self.log_length

    @property
    def n_vectors(self) -> int:
        return 1 << self.log_vectors

    @property
    def operands_per_op(self) -> int:
        """Rows combined per OR operation (2^log_rows)."""
        return 1 << self.log_rows

    @property
    def n_ops(self) -> int:
        """Operations to cover all vectors once."""
        return max(1, self.n_vectors // self.operands_per_op)

    @property
    def label(self) -> str:
        mode = "s" if self.access is AccessPattern.SEQUENTIAL else "r"
        return f"{self.log_length}-{self.log_vectors}-{self.log_rows}{mode}"


#: The paper's five Vector instances (Table 1 / Figs. 10-11 x-axis).
PAPER_VECTOR_SPECS = (
    "19-16-1s",
    "19-16-7s",
    "14-12-7s",
    "14-16-7s",
    "14-16-7r",
)
