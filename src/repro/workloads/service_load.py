"""Synthetic multi-tenant load for the serving layer.

A :class:`ServiceLoadSpec` describes one experiment: tenant count and
skew, the resident dataset per tenant, the query mix, and an open-loop
arrival process.  ``run_service_load`` builds a
:class:`~repro.service.BitmapQueryService`, plays the load, and returns
the stats -- the same function drives the benchmark, the determinism
tests, and the CI smoke job.

Two classic serving-workload properties are modelled:

- **open-loop arrivals**: request times come from a seeded Poisson
  process (exponential inter-arrivals), independent of service
  completions -- so admission control actually has something to do when
  offered load exceeds capacity;
- **tenant skew**: tenants are drawn from a Zipf-like distribution
  (``P(tenant k) proportional to 1/(k+1)^zipf_s``), so a few hot tenants
  dominate, which is what stresses per-tenant quotas and cross-tenant
  batching fairness.

Everything is driven by one ``numpy`` Generator seeded from the spec, so
a fixed seed replays the identical request stream.

Submission goes through the :class:`~repro.service.api.ServiceClient`
facade (:func:`play_stream` maps each generated request onto the
client's typed verbs with explicit ids/arrivals, so the stream numbering
stays the determinism contract).  The same stream drives a single node
(:func:`run_service_load`) or an N-node cluster
(:func:`run_cluster_load`, which also replicates the Zipf-head tenants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.service.api import ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.request import (
    AnalyticsRequest,
    QueryRequest,
    SubscribeRequest,
    UpdateRequest,
)
from repro.service.service import BitmapQueryService, ServiceConfig
from repro.service.stats import ServiceStats

__all__ = [
    "ServiceLoadSpec",
    "build_datasets",
    "generate_requests",
    "play_stream",
    "run_cluster_load",
    "run_service_load",
]

#: query mix: (kind, weight); kinds are ops, "range", or "analyze"
_DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("and", 0.35),
    ("or", 0.25),
    ("xor", 0.15),
    ("inv", 0.05),
    ("range", 0.20),
)


@dataclass(frozen=True)
class ServiceLoadSpec:
    """One synthetic serving experiment, fully determined by the seed."""

    n_tenants: int = 16
    #: resident plain bit-vectors per tenant
    vectors_per_tenant: int = 4
    #: bits per resident vector
    vector_bits: int = 4096
    #: bins in each tenant's one bitmap-indexed column
    index_bins: int = 8
    #: events in the bitmap-indexed column
    index_events: int = 2048
    #: total requests offered
    n_requests: int = 256
    #: mean offered rate of the Poisson arrival process (req/simulated s)
    arrival_rate_per_s: float = 2e5
    #: Zipf exponent for tenant selection (0 = uniform)
    zipf_s: float = 1.0
    #: (kind, weight) query mix; kinds are ops, "range", or "analyze"
    #: (filter+aggregate analytics over the bit-sliced ``val`` column)
    mix: Tuple[Tuple[str, float], ...] = field(default=_DEFAULT_MIX)
    #: width of the per-tenant bit-sliced numeric column ``val`` (0 =
    #: not loaded; required >= 1 when the mix includes "analyze").  The
    #: column rides a *separate* seeded RNG, so 0 reproduces the
    #: historical datasets byte-identically.
    value_bits: int = 0
    #: fraction of the stream converted to vector overwrites (the write
    #: path: delta repair + standing-query refresh).  The conversion
    #: uses a *separate* seeded RNG, so 0.0 reproduces the historical
    #: read-only stream byte-identically.
    write_ratio: float = 0.0
    #: standing queries registered per tenant before the stream starts
    subscriptions_per_tenant: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.vectors_per_tenant < 2:
            raise ValueError("vectors_per_tenant must be >= 2 (binary ops)")
        if self.vector_bits < 1 or self.index_events < 1:
            raise ValueError("vector_bits/index_events must be positive")
        if self.index_bins < 1:
            raise ValueError("index_bins must be >= 1")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.arrival_rate_per_s > 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if not self.mix or any(w <= 0 for _, w in self.mix):
            raise ValueError("mix must be non-empty with positive weights")
        if self.value_bits < 0:
            raise ValueError("value_bits must be non-negative")
        if any(k == "analyze" for k, _ in self.mix) and self.value_bits < 1:
            raise ValueError(
                "an 'analyze' mix entry needs value_bits >= 1 (the "
                "bit-sliced 'val' column analytics queries filter on)"
            )
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.subscriptions_per_tenant < 0:
            raise ValueError("subscriptions_per_tenant must be non-negative")

    @property
    def tenant_names(self) -> List[str]:
        width = len(str(self.n_tenants - 1))
        return [f"tenant{i:0{width}d}" for i in range(self.n_tenants)]

    def tenant_probabilities(self) -> np.ndarray:
        """Zipf-like tenant weights, normalised."""
        ranks = np.arange(1, self.n_tenants + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        return weights / weights.sum()


def build_datasets(
    spec: ServiceLoadSpec,
    service,
    *,
    head_tenants: int = 0,
    head_replicas: int = 1,
) -> None:
    """Register every tenant and load its resident dataset.

    Per tenant: ``vectors_per_tenant`` random bit-vectors named ``v0``,
    ``v1``, ... plus one bitmap-indexed column ``col`` with
    ``index_bins`` bins.  Dataset randomness is seeded separately from
    the request stream so the two can be varied independently.

    ``service`` is any target with the tenant-management surface (a
    ``BitmapQueryService``, a ``ClusterRouter``, or the
    ``ServiceClient`` facade over either).  On a cluster, the first
    ``head_tenants`` tenants -- the Zipf head, since tenant rank equals
    index order -- register with ``head_replicas`` replicas.
    """
    rng = np.random.default_rng((spec.seed, 0xDA7A))
    # the bit-sliced column draws from its own stream so value_bits=0
    # replays the historical datasets draw-for-draw
    vrng = np.random.default_rng((spec.seed, 0x5117))
    for i, tenant in enumerate(spec.tenant_names):
        if head_replicas > 1 and i < head_tenants:
            service.register_tenant(tenant, None, replicas=head_replicas)
        else:
            service.register_tenant(tenant)
        service.load_vectors(
            tenant,
            {
                f"v{i}": rng.integers(
                    0, 2, spec.vector_bits, dtype=np.uint8
                )
                for i in range(spec.vectors_per_tenant)
            },
        )
        service.load_bitmap_index(
            tenant,
            "col",
            rng.integers(0, spec.index_bins, spec.index_events),
            spec.index_bins,
        )
        if spec.value_bits > 0:
            service.load_bitslice_column(
                tenant,
                "val",
                vrng.integers(0, 1 << spec.value_bits, spec.index_events),
                spec.value_bits,
            )


def generate_requests(spec: ServiceLoadSpec) -> List[QueryRequest]:
    """The offered request stream: open-loop, skewed, seeded.

    Arrival times are a Poisson process at ``arrival_rate_per_s``;
    tenants are Zipf-drawn; kinds follow the mix.  Request ids number
    the stream in arrival order.
    """
    rng = np.random.default_rng((spec.seed, 0x10AD))
    arrivals = np.cumsum(
        rng.exponential(1.0 / spec.arrival_rate_per_s, spec.n_requests)
    )
    tenants = rng.choice(
        spec.tenant_names, size=spec.n_requests, p=spec.tenant_probabilities()
    )
    kinds = [k for k, _ in spec.mix]
    weights = np.array([w for _, w in spec.mix], dtype=np.float64)
    picks = rng.choice(len(kinds), size=spec.n_requests, p=weights / weights.sum())
    requests: List[QueryRequest] = []
    for i in range(spec.n_requests):
        kind = kinds[picks[i]]
        tenant = str(tenants[i])
        arrival = float(arrivals[i])
        if kind == "range":
            lo = int(rng.integers(0, spec.index_bins))
            hi = int(rng.integers(lo, spec.index_bins))
            requests.append(
                QueryRequest.range_query(i, tenant, "col", lo, hi, arrival)
            )
            continue
        if kind == "analyze":
            cmp_op = str(rng.choice(["lt", "le", "gt", "ge", "eq"]))
            value = int(rng.integers(0, 1 << spec.value_bits))
            filters = [("cmp", "val", cmp_op, value, spec.value_bits)]
            if int(rng.integers(0, 2)):
                lo = int(rng.integers(0, spec.index_bins))
                hi = int(rng.integers(lo, spec.index_bins))
                filters.append(("range", "col", lo, hi))
            agg_pick = str(rng.choice(["count", "sum", "hist"]))
            if agg_pick == "sum":
                aggregate: Tuple = ("sum", "val", spec.value_bits)
            elif agg_pick == "hist":
                aggregate = ("hist", "col", spec.index_bins)
            else:
                aggregate = ("count",)
            requests.append(
                AnalyticsRequest(
                    i, tenant, tuple(filters), aggregate, arrival
                )
            )
            continue
        if kind == "inv":
            names: Tuple[str, ...] = (
                f"v{rng.integers(0, spec.vectors_per_tenant)}",
            )
        else:
            n_ops = int(rng.integers(2, spec.vectors_per_tenant + 1))
            chosen = rng.choice(
                spec.vectors_per_tenant, size=n_ops, replace=False
            )
            names = tuple(f"v{int(v)}" for v in chosen)
        requests.append(
            QueryRequest.bitwise(i, tenant, kind, names, arrival)
        )
    if spec.write_ratio > 0.0:
        requests = _convert_writes(spec, requests)
    return _subscriptions(spec) + requests


def _convert_writes(spec, requests):
    """Convert a seeded fraction of the stream to vector overwrites.

    Conversion happens *after* the read stream is generated, from a
    separate RNG: the kept reads are the exact requests the read-only
    stream would have issued (same ids, tenants, arrivals, operands).
    Each update overwrites one plain vector of the request's tenant with
    fresh random contents.
    """
    rng = np.random.default_rng((spec.seed, 0x3717E))
    n_writes = int(round(spec.write_ratio * len(requests)))
    chosen = set(
        int(i)
        for i in rng.choice(len(requests), size=n_writes, replace=False)
    )
    out = []
    for i, request in enumerate(requests):
        if i not in chosen:
            out.append(request)
            continue
        vector = f"v{int(rng.integers(0, spec.vectors_per_tenant))}"
        bits = rng.integers(0, 2, spec.vector_bits, dtype=np.uint8)
        out.append(
            UpdateRequest(
                request.request_id,
                request.tenant,
                vector,
                bits,
                request.arrival_s,
            )
        )
    return out


def _subscriptions(spec) -> List[SubscribeRequest]:
    """Per-tenant standing queries, registered ahead of the stream.

    Ids live above the stream's ``0..n_requests-1`` range; arrivals are
    all 0.0 so every registration precedes the first read/write.
    """
    if spec.subscriptions_per_tenant == 0:
        return []
    rng = np.random.default_rng((spec.seed, 0x50B5))
    subs: List[SubscribeRequest] = []
    next_id = spec.n_requests
    for tenant in spec.tenant_names:
        for _ in range(spec.subscriptions_per_tenant):
            n_ops = int(rng.integers(2, spec.vectors_per_tenant + 1))
            chosen = rng.choice(
                spec.vectors_per_tenant, size=n_ops, replace=False
            )
            names = tuple(f"v{int(v)}" for v in chosen)
            op = str(rng.choice(["or", "and", "xor"]))
            subs.append(SubscribeRequest(next_id, tenant, op, names, 0.0))
            next_id += 1
    return subs


def play_stream(client: ServiceClient, requests) -> int:
    """Drive a generated request stream through the facade's verbs.

    Each request replays with its explicit id and arrival time, so the
    submitted stream is byte-identical to what ``submit_many`` over the
    raw request objects produced (ids/arrivals ARE the determinism
    contract of a seeded workload).  Returns the number submitted.
    """
    count = 0
    for request in requests:
        if request.kind == "update":
            client.update(
                request.tenant,
                request.vector,
                request.bits,
                at=request.arrival_s,
                request_id=request.request_id,
            )
        elif request.kind == "subscribe":
            client.subscribe(
                request.tenant,
                request.op,
                request.vectors,
                at=request.arrival_s,
                request_id=request.request_id,
            )
        elif request.kind == "analytics":
            client.analyze(
                request.tenant,
                request.filters,
                request.aggregate,
                at=request.arrival_s,
                request_id=request.request_id,
            )
        else:
            client.query(
                request.tenant,
                request.op,
                request.vectors,
                at=request.arrival_s,
                request_id=request.request_id,
                kind=request.kind,
            )
        count += 1
    return count


def run_service_load(
    spec: ServiceLoadSpec,
    config: Optional[ServiceConfig] = None,
    engine: Optional[ServiceEngine] = None,
) -> Tuple[BitmapQueryService, ServiceStats]:
    """Build a service, load datasets, play the stream, drain the loop."""
    service = BitmapQueryService(config, engine=engine)
    client = ServiceClient(service)
    build_datasets(spec, client)
    play_stream(client, generate_requests(spec))
    stats = client.run()
    return service, stats


def run_cluster_load(
    spec: ServiceLoadSpec,
    cluster_config=None,
    *,
    head_tenants: int = 0,
    head_replicas: int = 2,
    engine_factory=None,
):
    """Play the same seeded stream against an N-node cluster.

    Returns ``(router, cluster_stats)``.  The offered stream is the one
    :func:`generate_requests` yields for the spec -- identical to the
    single-node run -- with the first ``head_tenants`` (hottest) tenants
    replicated ``head_replicas``-way so their reads fan out.
    """
    from repro.cluster.router import ClusterRouter

    router = ClusterRouter(cluster_config, engine_factory=engine_factory)
    client = ServiceClient(router)
    build_datasets(
        spec, client, head_tenants=head_tenants, head_replicas=head_replicas
    )
    play_stream(client, generate_requests(spec))
    stats = client.run()
    return router, stats
