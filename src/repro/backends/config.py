"""Declarative system configuration for backend construction.

A :class:`SystemConfig` is the one frozen value object that describes an
execution substrate -- which backend, which NVM technology, geometry,
multi-row limit, placement policy, and timing/energy scaling knobs --
and round-trips losslessly through plain dicts (``to_dict`` /
``from_dict``), so sweeps, benchmarks and external harnesses can store
configurations as JSON and rebuild identical systems with
:func:`repro.backends.registry.build_system`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Optional

from repro.core.ops import operand_limits
from repro.memsim.geometry import DEFAULT_GEOMETRY, DRAM_GEOMETRY, MemoryGeometry
from repro.nvm.technology import NVMTechnology, get_technology, list_technologies
from repro.runtime.os_mm import PlacementPolicy

#: named geometries a config may select
GEOMETRIES = {
    "default": DEFAULT_GEOMETRY,  # the paper's NVM main memory
    "dram": DRAM_GEOMETRY,  # DDR3 organisation (S-DRAM baseline)
}


def register_geometry(name: str, geometry: MemoryGeometry) -> str:
    """Register a geometry under ``name`` so configs can select it.

    Re-registering the *same* geometry under the same name is a no-op
    (benchmarks and tests may register at import time); registering a
    different geometry under a taken name raises.  Returns the name, so
    ``SystemConfig(geometry=register_geometry("bench", g))`` reads
    naturally.
    """
    if not name or not isinstance(name, str):
        raise ValueError("geometry name must be a non-empty string")
    existing = GEOMETRIES.get(name)
    if existing is not None and existing != geometry:
        raise ValueError(
            f"geometry name {name!r} already registered with different "
            f"parameters"
        )
    GEOMETRIES[name] = geometry
    return name


def geometry_name(geometry: MemoryGeometry) -> str:
    """The registry name of ``geometry``, auto-registering if unnamed.

    Reverse lookup by value; an unregistered geometry is registered
    under a deterministic name derived from its dimensions, so ad-hoc
    geometries (small test arrays, benchmark shards) can ride the
    declarative :class:`SystemConfig` path too.
    """
    for name, known in GEOMETRIES.items():
        if known == geometry:
            return name
    name = (
        f"custom-{geometry.channels}ch-{geometry.ranks_per_channel}rk-"
        f"{geometry.chips_per_rank}cp-{geometry.banks_per_chip}bk-"
        f"{geometry.subarrays_per_bank}sa-{geometry.rows_per_subarray}r-"
        f"{geometry.mats_per_subarray}m-{geometry.cols_per_mat}c-"
        f"{geometry.mux_ratio}x"
    )
    return register_geometry(name, geometry)

#: what the host CPU's main memory may be ("dram" or an NVM technology)
_CPU_MEMORIES = ("dram",)


@dataclass(frozen=True)
class SystemConfig:
    """Complete, declarative description of one execution substrate."""

    #: registry name of the backend (see ``repro.backends.registry``)
    backend: str = "pinatubo"
    #: NVM technology of in-memory schemes ("pcm", "stt", "reram", ...)
    technology: str = "pcm"
    #: named geometry: "default" (NVM) or "dram" (DDR3 organisation)
    geometry: str = "default"
    #: one-step multi-row activation cap (None: the sensing limit;
    #: 2 produces the evaluation's "Pinatubo-2")
    max_rows: Optional[int] = None
    #: OS placement policy for functional runtimes
    placement: str = "pim_aware"
    #: batched command-stream pricing (PR 1 engine) on functional paths
    batch_commands: bool = True
    #: main memory the host CPU pairs with: "dram" when compared against
    #: S-DRAM, an NVM technology name against AC-PIM/Pinatubo (paper 6.1)
    cpu_memory: str = "dram"
    #: multiplicative knobs on priced latency/energy (what-if sweeps);
    #: 1.0 reproduces the paper numbers exactly
    timing_scale: float = 1.0
    energy_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError("backend must be a non-empty registry name")
        try:
            get_technology(self.technology)
        except KeyError:
            raise ValueError(
                f"unknown technology {self.technology!r}; "
                f"known: {list_technologies()} (or aliases pcm/stt/reram)"
            ) from None
        if self.geometry not in GEOMETRIES:
            raise ValueError(
                f"unknown geometry {self.geometry!r}; known: {sorted(GEOMETRIES)}"
            )
        try:
            PlacementPolicy(self.placement)
        except ValueError:
            known = [p.value for p in PlacementPolicy]
            raise ValueError(
                f"unknown placement {self.placement!r}; known: {known}"
            ) from None
        if self.cpu_memory not in _CPU_MEMORIES:
            try:
                get_technology(self.cpu_memory)
            except KeyError:
                raise ValueError(
                    f"unknown cpu_memory {self.cpu_memory!r}; "
                    f"use 'dram' or an NVM technology name"
                ) from None
        if self.max_rows is not None:
            if self.max_rows < 2:
                raise ValueError("max_rows must be >= 2 (or None)")
            sensing_limit = operand_limits(self.technology_object()).or_rows
            if self.max_rows > sensing_limit:
                raise ValueError(
                    f"max_rows={self.max_rows} exceeds the {self.technology} "
                    f"sensing limit of {sensing_limit} rows"
                )
        for name in ("timing_scale", "energy_scale"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be finite and positive")

    # -- resolved objects ---------------------------------------------------

    def geometry_object(self) -> MemoryGeometry:
        return GEOMETRIES[self.geometry]

    def technology_object(self) -> NVMTechnology:
        return get_technology(self.technology)

    def placement_policy(self) -> PlacementPolicy:
        return PlacementPolicy(self.placement)

    # -- dict round-trip ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; ``from_dict(to_dict(cfg)) == cfg``."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild a config, rejecting unknown keys outright."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SystemConfig keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)
