"""Stock backends: every evaluated substrate behind the one protocol.

Registered names (see :data:`repro.backends.registry.registry`):

- ``pinatubo``          functional Pinatubo runtime (driver-batched
                        ``bitwise_many``; ``max_rows=2`` gives Pinatubo-2)
- ``simd``              the SIMD CPU roofline (paper Section 6.1); its
                        main memory follows ``config.cpu_memory``
- ``kernel``            the cache-hierarchy-backed instruction-level SIMD
                        kernel model (port-pressure compute leg)
- ``sdram``             in-DRAM charge-sharing AND/OR, analytical
- ``sdram_functional``  in-DRAM computing executed for real (RowClone +
                        triple-row activation on a functional DRAM)
- ``acpim``             digital accelerator-in-memory
- ``ideal``             zero-cost bitwise ceiling

Cost-model schemes get functional semantics from the numpy oracle and a
loop-based ``bitwise_many``; the Pinatubo backend routes both entry
points through the runtime driver, so the whole stream is priced as one
command batch (the PR 1 engine).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.backends.config import SystemConfig
from repro.backends.protocol import (
    ALL_OPS,
    BackendCapabilities,
    BackendRun,
    BitwiseCall,
    BulkBitwiseBackend,
    RunStats,
    bitwise_oracle,
)
from repro.backends.registry import registry
from repro.baselines.acpim import AcPim
from repro.baselines.base import AccessPattern, BaselineCost, BitwiseBaseline
from repro.baselines.ideal import IdealPim
from repro.baselines.kernel import PortConfig, kernel_compute_time
from repro.baselines.sdram import SDram
from repro.baselines.sdram_functional import SDramExecutor
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.core.ops import PimOp
from repro.energy.cacti import MemorySystemModel
from repro.memsim.geometry import DRAM_GEOMETRY
from repro.memsim.timing import DDR3_1600
from repro.nvm.technology import get_technology


def _scaled(cost: BaselineCost, config: SystemConfig) -> BaselineCost:
    """Apply the config's timing/energy knobs (exact at the 1.0 default)."""
    if config.timing_scale == 1.0 and config.energy_scale == 1.0:
        return cost
    return BaselineCost(
        latency=cost.latency * config.timing_scale,
        energy=cost.energy * config.energy_scale,
        offloaded=cost.offloaded,
    )


def _operand_bits(operands: Sequence[np.ndarray]) -> int:
    """Common length of the operand bit arrays (validated)."""
    if not operands:
        raise ValueError("bitwise op needs at least one operand")
    n_bits = int(np.asarray(operands[0]).size)
    if any(np.asarray(o).size != n_bits for o in operands):
        raise ValueError("operand lengths differ")
    if n_bits < 1:
        raise ValueError("operands must be non-empty")
    return n_bits


class CostModelBackend(BulkBitwiseBackend):
    """Oracle semantics glued to an analytical cost model.

    Wraps any legacy :class:`~repro.baselines.base.BitwiseBaseline`:
    pricing delegates to the model bit-for-bit (the Fig. 10-12 golden
    test rides on this), functional results come from the numpy oracle.
    """

    def __init__(
        self,
        model: BitwiseBaseline,
        capabilities: BackendCapabilities,
        config: SystemConfig,
        name: Optional[str] = None,
    ):
        self.model = model
        self.config = config
        self.name = name or model.name
        self._caps = capabilities

    def capabilities(self) -> BackendCapabilities:
        return self._caps

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        return _scaled(
            self.model.bitwise_cost(op, n_operands, vector_bits, access),
            self.config,
        )

    def bitwise(
        self,
        op: str,
        operands: Sequence[np.ndarray],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BackendRun:
        with telemetry.span(f"backends.{self.name}.bitwise", op=op) as sp:
            bits = bitwise_oracle(op, operands)
            n_bits = _operand_bits(operands)
            cost = self.bitwise_cost(op, len(operands), n_bits, access)
            stats = RunStats(
                backend=self.name,
                op=PimOp.parse(op).value,
                latency=cost.latency,
                energy=cost.energy,
                bits_processed=n_bits * len(operands),
                in_memory=cost.offloaded,
                steps=0,
            )
            # analytic backend: no controller beneath, so the backend
            # span is the leaf that carries the cost attribution
            sp.add(latency_s=stats.latency, energy_j=stats.energy)
            return BackendRun(bits=bits, stats=stats.validate())


class PinatuboBackend(BulkBitwiseBackend):
    """The functional Pinatubo stack behind the backend protocol.

    Functional ops run through the full runtime (allocator -> driver ->
    executor -> controller); :meth:`bitwise_many` submits the whole
    stream and flushes it as **one** driver batch, so the PR 1 batched
    engine is the default path rather than a Pinatubo-only special case.
    Trace pricing delegates to :class:`~repro.core.model.PinatuboModel`
    with the same technology/geometry/row limit.
    """

    def __init__(self, config: SystemConfig):
        self.config = config
        self.pricer = PinatuboModel(
            geometry=config.geometry_object(),
            technology=config.technology_object(),
            max_rows=config.max_rows,
        )
        self.name = self.pricer.name  # "Pinatubo-<rows>"
        self._runtime = None

    @property
    def runtime(self):
        """The lazily-built functional runtime (pricing never needs it)."""
        if self._runtime is None:
            self._runtime = self.build_runtime()
        return self._runtime

    def build_runtime(self, **kwargs):
        """Construct a fresh :class:`~repro.runtime.api.PimRuntime` over
        this backend's configuration.

        The one place a functional runtime is assembled from a
        declarative config: ``PimRuntime.from_config`` routes here
        through :func:`repro.backends.build_system`, so the registry is
        the single source of truth for how a config becomes a system.
        ``kwargs`` (``plan``/``plan_cache_bytes``/``compile``/``repair``)
        pass through to the :class:`PimRuntime` constructor.
        """
        from repro.core.pinatubo import PinatuboSystem
        from repro.runtime.api import PimRuntime

        return PimRuntime(
            PinatuboSystem.from_config(self.config),
            policy=self.config.placement_policy(),
            **kwargs,
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=frozenset(ALL_OPS),
            max_fanin=self.pricer.limits.or_rows,
            in_memory=True,
            placement_sensitive=True,
            functional=True,
        )

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        return _scaled(
            self.pricer.bitwise_cost(op, n_operands, vector_bits, access),
            self.config,
        )

    def bitwise(
        self,
        op: str,
        operands: Sequence[np.ndarray],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BackendRun:
        return self.bitwise_many([(op, operands)], access)[0]

    def bitwise_many(
        self,
        calls: Sequence[BitwiseCall],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> List[BackendRun]:
        """Execute a stream as one driver batch (one command batch).

        Placement follows the runtime's allocator policy; the ``access``
        argument is accepted for protocol uniformity (pass a config with
        ``placement="interleaved"`` to model scattered operands).
        """
        rt = self.runtime
        del access  # placement is the allocator's job on this backend
        with telemetry.span(
            f"backends.{self.name}.bitwise_many", calls=len(calls)
        ):
            return self._bitwise_many_batched(rt, calls)

    def _bitwise_many_batched(self, rt, calls) -> List[BackendRun]:
        staged = []
        for op, operands in calls:
            arrays = [np.asarray(o, dtype=np.uint8) for o in operands]
            n_bits = _operand_bits(arrays)
            sources = [rt.pim_malloc(n_bits, "backend") for _ in arrays]
            for handle, bits in zip(sources, arrays):
                rt.pim_write(handle, bits)
            dest = rt.pim_malloc(n_bits, "backend")
            rt.driver.submit(op, dest, sources, n_bits)
            staged.append((op, dest, sources, n_bits))
        results = rt.driver.flush(batched=True)

        runs = []
        for (op, dest, sources, n_bits), result in zip(staged, results):
            bits = rt.pim_read(dest, n_bits)
            acct = result.accounting
            stats = RunStats(
                backend=self.name,
                op=PimOp.parse(op).value,
                latency=acct.latency * self.config.timing_scale,
                energy=acct.energy * self.config.energy_scale,
                bits_processed=acct.bits_processed,
                in_memory=result.steps > 0,
                steps=result.steps,
            )
            runs.append(BackendRun(bits=bits, stats=stats.validate()))
            for handle in sources:
                rt.pim_free(handle)
            rt.pim_free(dest)
        return runs


class KernelCpu(SimdCpu):
    """SIMD CPU whose compute leg is the port-pressure kernel model.

    Refines the roofline's lane bound with the unrolled SSE/AVX loop's
    issue/load/store/ALU port pressure (:mod:`repro.baselines.kernel`)
    over the same cache-backed memory legs.
    """

    name = "SIMD-kernel"

    def __init__(self, *args, ports: PortConfig = PortConfig(), **kwargs):
        super().__init__(*args, **kwargs)
        self.ports = ports

    def _compute_time(self, n_operands: int, vector_bits: int) -> float:
        return kernel_compute_time(
            n_operands, vector_bits, self.config, self.ports
        )


class SDramFunctionalBackend(BulkBitwiseBackend):
    """In-DRAM computing executed for real (RowClone + TRA).

    AND/OR run inside a functional DRAM via
    :class:`~repro.baselines.sdram_functional.SDramExecutor`: operands
    are written into data rows, accumulated pairwise through triple-row
    activations (chunked across subarrays for long vectors), and the
    result row is read back.  XOR/INV fall back to the SIMD CPU over
    DRAM -- exactly the penalty the paper charges the scheme.
    """

    name = "S-DRAM-functional"

    #: per 2-row op: copy in both operands + program the control row +
    #: copy the result out (AAPs), around one triple-row activation
    _AAPS_PER_OP = 4
    _TRAS_PER_OP = 1

    def __init__(self, config: SystemConfig):
        self.config = config
        geometry = (
            DRAM_GEOMETRY
            if config.geometry == "default"
            else config.geometry_object()
        )
        self.executor = SDramExecutor(geometry, DDR3_1600)
        self.cpu = SimdCpu.with_dram()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=frozenset(("or", "and")),
            max_fanin=2,
            in_memory=True,
            placement_sensitive=False,
            functional=True,
        )

    # -- pricing -------------------------------------------------------------

    def _op_cost(self, chunk_bits: int) -> BaselineCost:
        """Cost of one pairwise in-DRAM op on one (full-row) chunk."""
        timing = self.executor.timing
        primitives = self._AAPS_PER_OP + self._TRAS_PER_OP
        latency = primitives * timing.t_rc
        e_row = self.executor.geometry.row_bits * (
            timing.e_activate_per_bit + timing.e_sense_per_bit
        )
        energy = (2 * self._AAPS_PER_OP + 3 * self._TRAS_PER_OP) * e_row
        del chunk_bits  # whole rows activate regardless of the used bits
        return BaselineCost(latency=latency, energy=energy, offloaded=True)

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        if not self.supports(op):
            return _scaled(
                self.cpu.bitwise_cost(op, n_operands, vector_bits, access),
                self.config,
            )
        chunks = self.executor.geometry.rows_for_bits(vector_bits)
        per_op = self._op_cost(self.executor.geometry.row_bits)
        n_ops = max(1, n_operands - 1) * chunks
        return _scaled(
            BaselineCost(
                latency=per_op.latency * n_ops,
                energy=per_op.energy * n_ops,
                offloaded=True,
            ),
            self.config,
        )

    # -- functional execution ------------------------------------------------

    def bitwise(
        self,
        op: str,
        operands: Sequence[np.ndarray],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BackendRun:
        with telemetry.span(f"backends.{self.name}.bitwise", op=op) as sp:
            arrays = [np.asarray(o, dtype=np.uint8) for o in operands]
            n_bits = _operand_bits(arrays)
            expected = bitwise_oracle(op, arrays)  # validates op/arity too
            op = PimOp.parse(op).value
            if op not in ("or", "and"):
                cost = self.bitwise_cost(op, len(arrays), n_bits, access)
                stats = RunStats(
                    backend=self.name,
                    op=op,
                    latency=cost.latency,
                    energy=cost.energy,
                    bits_processed=n_bits * len(arrays),
                    in_memory=False,
                    steps=0,
                )
                sp.add(latency_s=stats.latency, energy_j=stats.energy)
                return BackendRun(bits=expected, stats=stats.validate())

            g = self.executor.geometry
            row_bits = g.row_bits
            chunks = g.rows_for_bits(n_bits)
            latency = 0.0
            energy = 0.0
            steps = 0
            parts = []
            acc_row = len(arrays)  # data row accumulating the result
            for c in range(chunks):
                lo, hi = c * row_bits, min((c + 1) * row_bits, n_bits)
                for i, bits in enumerate(arrays):
                    self.executor.write_data_row(
                        c, i, _padded(bits[lo:hi], row_bits)
                    )
                self.executor.bitwise(op, acc_row, 0, 1, subarray_index=c)
                steps += 1
                for i in range(2, len(arrays)):
                    self.executor.bitwise(
                        op, acc_row, acc_row, i, subarray_index=c
                    )
                    steps += 1
                per_op = self._op_cost(row_bits)
                latency += per_op.latency * max(1, len(arrays) - 1)
                energy += per_op.energy * max(1, len(arrays) - 1)
                parts.append(self.executor.read_data_row(c, acc_row, hi - lo))
            bits = np.concatenate(parts).astype(np.uint8)
            stats = RunStats(
                backend=self.name,
                op=op,
                latency=latency * self.config.timing_scale,
                energy=energy * self.config.energy_scale,
                bits_processed=n_bits * len(arrays),
                in_memory=True,
                steps=steps,
            )
            sp.add(latency_s=stats.latency, energy_j=stats.energy)
            return BackendRun(bits=bits, stats=stats.validate())


def _padded(bits: np.ndarray, row_bits: int) -> np.ndarray:
    if bits.size == row_bits:
        return bits
    out = np.zeros(row_bits, dtype=np.uint8)
    out[: bits.size] = bits
    return out


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------


def _cpu_for(config: SystemConfig, cls=SimdCpu):
    """A SIMD CPU paired with the config's ``cpu_memory``."""
    if config.cpu_memory == "dram":
        return cls.with_dram()
    if config.cpu_memory == "pcm":
        return cls.with_pcm()
    return cls(memory=MemorySystemModel.nvm(get_technology(config.cpu_memory)))


_CPU_CAPS = BackendCapabilities(
    ops=frozenset(ALL_OPS),
    max_fanin=2,  # pairwise SIMD lanes; wide fan-in is (n-1) lane passes
    in_memory=False,
    placement_sensitive=True,  # row misses at vector boundaries
    functional=False,
)


@registry.register("pinatubo")
def _build_pinatubo(config: SystemConfig) -> PinatuboBackend:
    return PinatuboBackend(config)


@registry.register("simd")
def _build_simd(config: SystemConfig) -> CostModelBackend:
    return CostModelBackend(_cpu_for(config), _CPU_CAPS, config, name="SIMD")


@registry.register("kernel")
def _build_kernel(config: SystemConfig) -> CostModelBackend:
    return CostModelBackend(
        _cpu_for(config, KernelCpu), _CPU_CAPS, config, name="SIMD-kernel"
    )


@registry.register("sdram")
def _build_sdram(config: SystemConfig) -> CostModelBackend:
    caps = BackendCapabilities(
        ops=frozenset(("or", "and")),
        max_fanin=2,
        in_memory=True,
        placement_sensitive=True,
        functional=False,
    )
    return CostModelBackend(SDram(), caps, config, name="S-DRAM")


@registry.register("sdram_functional")
def _build_sdram_functional(config: SystemConfig) -> SDramFunctionalBackend:
    return SDramFunctionalBackend(config)


@registry.register("acpim")
def _build_acpim(config: SystemConfig) -> CostModelBackend:
    caps = BackendCapabilities(
        ops=frozenset(ALL_OPS),
        max_fanin=1,  # every operand is a serial digital row read
        in_memory=True,
        placement_sensitive=False,
        functional=False,
    )
    return CostModelBackend(
        AcPim(technology=config.technology_object()), caps, config,
        name="AC-PIM",
    )


@registry.register("ideal")
def _build_ideal(config: SystemConfig) -> CostModelBackend:
    caps = BackendCapabilities(
        ops=frozenset(ALL_OPS),
        max_fanin=1 << 30,  # no substrate constraint at zero cost
        in_memory=True,
        placement_sensitive=False,
        functional=False,
    )
    return CostModelBackend(IdealPim(), caps, config, name="Ideal")
