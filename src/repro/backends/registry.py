"""String-keyed backend registry and the ``build_system`` factory.

Backends register a builder ``callable(SystemConfig) -> backend`` under a
name; harnesses select substrates declaratively::

    from repro.backends import SystemConfig, build_system
    backend = build_system(SystemConfig(backend="pinatubo", max_rows=2))
    run = backend.bitwise("or", [a, b, c])

The stock backends (``pinatubo``, ``simd``, ``kernel``, ``sdram``,
``sdram_functional``, ``acpim``, ``ideal``) self-register when
:mod:`repro.backends` is imported.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.backends.config import SystemConfig
from repro.backends.protocol import BulkBitwiseBackend

#: a backend builder: consumes the declarative config, returns the backend
BackendBuilder = Callable[[SystemConfig], BulkBitwiseBackend]


class BackendRegistry:
    """Name -> builder mapping with decorator-style registration."""

    def __init__(self) -> None:
        self._builders: Dict[str, BackendBuilder] = {}

    def register(
        self, name: str, builder: Optional[BackendBuilder] = None
    ):
        """Register a builder under ``name`` (usable as a decorator)."""
        if not name or not isinstance(name, str):
            raise ValueError("backend name must be a non-empty string")

        def _register(fn: BackendBuilder) -> BackendBuilder:
            if name in self._builders:
                raise ValueError(f"backend {name!r} already registered")
            self._builders[name] = fn
            return fn

        if builder is not None:
            return _register(builder)
        return _register

    def create(
        self, name: str, config: Optional[SystemConfig] = None
    ) -> BulkBitwiseBackend:
        """Build the backend registered under ``name``."""
        try:
            builder = self._builders[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r}; registered: {self.names()}"
            ) from None
        if config is None:
            config = SystemConfig(backend=name)
        return builder(config)

    def names(self) -> List[str]:
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._builders)


#: the process-wide registry the stock backends register into
registry = BackendRegistry()


def build_system(config: SystemConfig) -> BulkBitwiseBackend:
    """Construct the backend a :class:`SystemConfig` describes."""
    return registry.create(config.backend, config)
