"""String-keyed backend registry and the ``build_system`` factory.

Backends register a builder ``callable(SystemConfig) -> backend`` under a
name; harnesses select substrates declaratively::

    from repro.backends import SystemConfig, build_system
    backend = build_system(SystemConfig(backend="pinatubo", max_rows=2))
    run = backend.bitwise("or", [a, b, c])

The stock backends (``pinatubo``, ``simd``, ``kernel``, ``sdram``,
``sdram_functional``, ``acpim``, ``ideal``) self-register when
:mod:`repro.backends` is imported.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.backends.config import SystemConfig
from repro.backends.protocol import BackendCapabilities, BulkBitwiseBackend

#: a backend builder: consumes the declarative config, returns the backend
BackendBuilder = Callable[[SystemConfig], BulkBitwiseBackend]


class BackendRegistry:
    """Name -> builder mapping with decorator-style registration."""

    def __init__(self) -> None:
        self._builders: Dict[str, BackendBuilder] = {}
        self._caps: Dict[str, BackendCapabilities] = {}

    def register(
        self, name: str, builder: Optional[BackendBuilder] = None
    ):
        """Register a builder under ``name`` (usable as a decorator)."""
        if not name or not isinstance(name, str):
            raise ValueError("backend name must be a non-empty string")

        def _register(fn: BackendBuilder) -> BackendBuilder:
            if name in self._builders:
                raise ValueError(f"backend {name!r} already registered")
            self._builders[name] = fn
            return fn

        if builder is not None:
            return _register(builder)
        return _register

    def create(
        self, name: str, config: Optional[SystemConfig] = None
    ) -> BulkBitwiseBackend:
        """Build the backend registered under ``name``."""
        try:
            builder = self._builders[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r}; registered: {self.names()}"
            ) from None
        if config is None:
            config = SystemConfig(backend=name)
        return builder(config)

    def names(self) -> List[str]:
        return sorted(self._builders)

    def capabilities(self, name: str) -> BackendCapabilities:
        """What the backend registered under ``name`` can do.

        Built from a default-config instance on first use and cached, so
        consumers (e.g. the service layer rejecting unsupported ops) can
        query capabilities without constructing a backend per lookup.
        """
        caps = self._caps.get(name)
        if caps is None:
            caps = self._caps[name] = self.create(name).capabilities()
        return caps

    def describe(self, name: str) -> str:
        """One line: name + capability summary (ops, fan-in, flavour)."""
        caps = self.capabilities(name)
        flags = [
            "in-memory" if caps.in_memory else "host",
            "functional" if caps.functional else "cost-model",
        ]
        if caps.placement_sensitive:
            flags.append("placement-sensitive")
        fanin = "inf" if caps.max_fanin is None else str(caps.max_fanin)
        return (
            f"{name}: ops={{{', '.join(sorted(caps.ops))}}} "
            f"fanin<={fanin} [{', '.join(flags)}]"
        )

    def list(self) -> List[str]:
        """Capability-annotated listing, one line per registered backend."""
        return [self.describe(name) for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._builders)

    def __repr__(self) -> str:
        lines = "\n".join(f"  {line}" for line in self.list())
        return f"BackendRegistry({len(self)} backends)\n{lines}"


#: the process-wide registry the stock backends register into
registry = BackendRegistry()


def build_system(config: SystemConfig) -> BulkBitwiseBackend:
    """Construct the backend a :class:`SystemConfig` describes."""
    return registry.create(config.backend, config)
