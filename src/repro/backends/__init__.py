"""Unified bulk-bitwise backend protocol + declarative system configs.

Every evaluated substrate -- the functional Pinatubo runtime, the SIMD
CPU roofline (and its instruction-level kernel refinement), analytical
and functional in-DRAM computing, AC-PIM and the Ideal ceiling -- sits
behind one :class:`BulkBitwiseBackend` protocol, selected by name from a
:class:`SystemConfig`::

    from repro.backends import SystemConfig, build_system
    backend = build_system(SystemConfig(backend="pinatubo", max_rows=2))
    run = backend.bitwise("or", [a, b, c])
    run.bits, run.stats.latency, run.stats.energy

Importing this package registers the stock backends.
"""

from repro.backends.config import (
    GEOMETRIES,
    SystemConfig,
    register_geometry,
)
from repro.backends.protocol import (
    ALL_OPS,
    BackendCapabilities,
    BackendRun,
    BulkBitwiseBackend,
    RunStats,
    UnsupportedOpError,
    bitwise_oracle,
)
from repro.backends.registry import BackendRegistry, build_system, registry

# importing the adapters registers the stock backends with `registry`
from repro.backends import adapters as _adapters  # noqa: F401  (self-registration)

__all__ = [
    "ALL_OPS",
    "GEOMETRIES",
    "BackendCapabilities",
    "BackendRegistry",
    "BackendRun",
    "BulkBitwiseBackend",
    "RunStats",
    "SystemConfig",
    "UnsupportedOpError",
    "bitwise_oracle",
    "build_system",
    "register_geometry",
    "registry",
]
