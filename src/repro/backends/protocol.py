"""The unified bulk-bitwise backend protocol.

Every execution substrate the evaluation compares -- Pinatubo itself, the
SIMD CPU, in-DRAM computing, AC-PIM, the Ideal ceiling -- implements one
contract here, so applications, the figure harnesses and the parity tests
can drive any of them interchangeably:

- :class:`BulkBitwiseBackend`: single-op :meth:`~BulkBitwiseBackend.
  bitwise` plus batched :meth:`~BulkBitwiseBackend.bitwise_many` (with a
  loop-based default for schemes without a native batched path), and the
  trace-pricing entry :meth:`~BulkBitwiseBackend.bitwise_cost` shared
  with the legacy :class:`~repro.baselines.base.BitwiseBaseline`
  interface;
- :class:`BackendCapabilities`: which ops run natively, the single-step
  operand fan-in, and placement constraints;
- :class:`RunStats`: the uniform stats contract every functional run
  returns (validated by ``tests/backends/test_parity.py``).

Functional semantics are pinned to the numpy oracle
(:func:`bitwise_oracle`): a backend may *price* an op however its
hardware does, but the bits it returns must match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.baselines.base import AccessPattern, BaselineCost, validate_request

#: the full Pinatubo operation vocabulary (paper Section 4.2)
ALL_OPS = ("or", "and", "xor", "inv")


class UnsupportedOpError(ValueError):
    """The configured backend cannot serve the requested op.

    A backend-level concern: capability checks live with the
    :class:`BackendCapabilities` contract, and every layer above (the
    service engines, the cluster router) raises this same type.
    ``repro.service.engine`` re-exports it for compatibility.
    """

#: one queued logical operation: ``(op, [operand bit arrays])``
BitwiseCall = Tuple[str, Sequence[np.ndarray]]


def bitwise_oracle(op: str, operands: Sequence[np.ndarray]) -> np.ndarray:
    """Reference semantics: ``op`` over uint8 0/1 bit arrays.

    Validates the request exactly like the baselines do and is the
    ground truth the parity tests hold every backend to.
    """
    operands = [np.asarray(o, dtype=np.uint8) for o in operands]
    if not operands:
        raise ValueError("bitwise op needs at least one operand")
    n_bits = operands[0].size
    if any(o.size != n_bits for o in operands):
        raise ValueError("operand lengths differ")
    op = validate_request(op, len(operands), n_bits)
    if op == "inv":
        return (1 - operands[0]).astype(np.uint8)
    ufunc = {"or": np.bitwise_or, "and": np.bitwise_and, "xor": np.bitwise_xor}[op]
    out = operands[0]
    for o in operands[1:]:
        out = ufunc(out, o)
    return out.astype(np.uint8)


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can execute, and under which constraints."""

    #: ops the scheme executes natively (others fall back to the host CPU)
    ops: frozenset
    #: operand rows one native step combines (128 for Pinatubo-PCM OR,
    #: 2 for in-DRAM TRA and STT; wider requests decompose)
    max_fanin: int
    #: the op executes inside the memory (False: host CPU scheme)
    in_memory: bool
    #: costs depend on operand placement (intra-subarray vs scattered)
    placement_sensitive: bool
    #: computes bits with a real executor (False: numpy-oracle semantics
    #: attached to an analytical cost model)
    functional: bool

    def __post_init__(self) -> None:
        unknown = set(self.ops) - set(ALL_OPS)
        if unknown:
            raise ValueError(f"unknown ops in capabilities: {sorted(unknown)}")
        if self.max_fanin < 1:
            raise ValueError("max_fanin must be >= 1")

    def supports(self, op: str) -> bool:
        return str(op).lower() in self.ops


@dataclass
class RunStats:
    """Uniform cost/shape record of one executed bulk bitwise operation."""

    backend: str
    op: str
    latency: float  # s
    energy: float  # J
    bits_processed: int  # operand bits consumed
    in_memory: bool  # executed in memory (False: host/CPU path)
    steps: int = 0  # in-memory combine steps (0 on the host path)

    #: the field names every backend must populate (the stats contract)
    FIELDS = ("backend", "op", "latency", "energy", "bits_processed",
              "in_memory", "steps")

    def validate(self) -> "RunStats":
        """Enforce the contract; returns self so calls chain."""
        if not self.backend:
            raise ValueError("stats must name their backend")
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown op in stats: {self.op!r}")
        for name in ("latency", "energy"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and non-negative")
        if self.bits_processed < 0 or self.steps < 0:
            raise ValueError("counters must be non-negative")
        # energy/latency consistency: zero-time execution cannot burn
        # dynamic energy (only the Ideal backend hits this corner)
        if self.latency == 0.0 and self.energy != 0.0:
            raise ValueError("zero-latency run reports nonzero energy")
        return self

    def merged(self, other: "RunStats") -> "RunStats":
        return RunStats(
            backend=self.backend,
            op=self.op if self.op == other.op else self.op,
            latency=self.latency + other.latency,
            energy=self.energy + other.energy,
            bits_processed=self.bits_processed + other.bits_processed,
            in_memory=self.in_memory and other.in_memory,
            steps=self.steps + other.steps,
        )

    def to_dict(self) -> dict:
        """JSON-ready dict of every contract field."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def summary(self) -> str:
        """One-line human-readable digest."""
        where = "in-memory" if self.in_memory else "host"
        return (
            f"RunStats[{self.backend}] {self.op}: "
            f"{self.bits_processed} bits in {self.steps} steps ({where}), "
            f"latency {self.latency:.3e}s, energy {self.energy:.3e}J"
        )


@dataclass
class BackendRun:
    """Functional result + stats of one executed operation."""

    bits: np.ndarray
    stats: RunStats


class BulkBitwiseBackend:
    """Interface every bulk-bitwise execution substrate implements.

    Subclasses provide :meth:`capabilities`, :meth:`bitwise` and
    :meth:`bitwise_cost`; :meth:`bitwise_many` has a loop-based default
    so cost-model schemes get the batched entry point for free, while
    Pinatubo overrides it with its one-command-batch fast path.
    """

    #: display name used by harnesses and stats
    name: str = "backend"

    def capabilities(self) -> BackendCapabilities:
        raise NotImplementedError

    def supports(self, op: str) -> bool:
        """Whether the scheme executes ``op`` natively (no host fallback)."""
        return self.capabilities().supports(op)

    # -- functional execution ----------------------------------------------

    def bitwise(
        self,
        op: str,
        operands: Sequence[np.ndarray],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BackendRun:
        """Execute ``op`` over bit arrays; returns bits + :class:`RunStats`."""
        raise NotImplementedError

    def bitwise_many(
        self,
        calls: Sequence[BitwiseCall],
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> List[BackendRun]:
        """Execute a stream of operations; one :class:`BackendRun` each.

        Default: loop over :meth:`bitwise` (semantically exact; no
        batching benefit).  Backends with a native batched path override
        this -- results must stay identical to the loop.
        """
        return [self.bitwise(op, operands, access) for op, operands in calls]

    # -- trace pricing -------------------------------------------------------

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        """Cost of one bulk op without touching data (trace pricing).

        Same contract as :meth:`repro.baselines.base.BitwiseBaseline.
        bitwise_cost`, so :meth:`repro.workloads.trace.OpTrace.price`
        drives backends and legacy baselines interchangeably.
        """
        raise NotImplementedError
