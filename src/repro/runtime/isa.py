"""Extended PIM instructions and their DDR-level translation.

The paper extends the host ISA with PIM instructions (after
PIM-enabled-instructions, Ahn et al. ISCA'15); the driver emits them and
the memory controller translates each into a mode-register write plus DDR
commands.  We model the instruction as a compact binary encoding (so the
driver/controller interface is a real byte protocol, testable for
round-tripping) and provide the MR4 mode-code mapping.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.ops import PimOp

#: MR4 register codes (also used by the executor).
MODE_CODES = {
    PimOp.OR: 0b001,
    PimOp.AND: 0b010,
    PimOp.XOR: 0b011,
    PimOp.INV: 0b100,
}
_CODE_TO_OP = {v: k for k, v in MODE_CODES.items()}

#: wire format: magic, op code, flags, dest frame, operand count, length
_HEADER = struct.Struct("<HBBQIQ")
_MAGIC = 0x7012  # "PIM" tag


@dataclass(frozen=True)
class PimInstruction:
    """One extended-ISA PIM operation over physical row frames."""

    op: PimOp
    dest_frame: int
    source_frames: tuple
    n_bits: int

    def __post_init__(self) -> None:
        if self.dest_frame < 0 or any(f < 0 for f in self.source_frames):
            raise ValueError("frames must be non-negative")
        if not self.source_frames:
            raise ValueError("instruction needs at least one source frame")
        if self.n_bits < 1:
            raise ValueError("n_bits must be positive")

    @property
    def mode_code(self) -> int:
        return MODE_CODES[self.op]


def encode_instruction(instr: PimInstruction) -> bytes:
    """Serialise to the driver-controller wire format."""
    header = _HEADER.pack(
        _MAGIC,
        instr.mode_code,
        0,
        instr.dest_frame,
        len(instr.source_frames),
        instr.n_bits,
    )
    body = b"".join(struct.pack("<Q", f) for f in instr.source_frames)
    return header + body


def decode_instruction(payload: bytes) -> PimInstruction:
    """Parse the wire format back into an instruction."""
    if len(payload) < _HEADER.size:
        raise ValueError("truncated PIM instruction")
    magic, code, _flags, dest, n_src, n_bits = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad PIM instruction magic 0x{magic:04x}")
    if code not in _CODE_TO_OP:
        raise ValueError(f"unknown PIM mode code {code:#05b}")
    expected = _HEADER.size + 8 * n_src
    if len(payload) != expected:
        raise ValueError(
            f"PIM instruction length mismatch: {len(payload)} != {expected}"
        )
    sources = struct.unpack_from(f"<{n_src}Q", payload, _HEADER.size)
    return PimInstruction(
        op=_CODE_TO_OP[code],
        dest_frame=dest,
        source_frames=tuple(sources),
        n_bits=n_bits,
    )
