"""The dynamic-linked driver library (paper Section 5).

"Based on the PAs, the dynamic linked driver library first optimizes and
reschedules the operation requests, and then issues extended instruction
for PIM."  The driver here:

1. collects :class:`PimRequest` objects (handles, not addresses);
2. resolves physical placement through the OS manager;
3. *reorders* the batch so same-op requests run back-to-back (each op
   switch costs a mode-register write) while preserving data dependences
   (a request reading a vector an earlier request writes cannot hop over
   it);
4. encodes each request as an extended instruction and hands it to the
   executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.executor import OpResult, PinatuboExecutor, PlacementError
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.runtime.allocator import BitVectorHandle
from repro.runtime.isa import PimInstruction, decode_instruction, encode_instruction

#: numpy ufuncs for the host fallback path
_HOST_UFUNCS = {
    PimOp.OR: np.bitwise_or,
    PimOp.AND: np.bitwise_and,
    PimOp.XOR: np.bitwise_xor,
}

# always-live instruments (survive telemetry.reset(): values are zeroed,
# the objects stay registered)
_REQUESTS = telemetry.counter("runtime.driver.requests")
_FLUSHES = telemetry.counter("runtime.driver.flushes")
_MODE_SWITCHES = telemetry.counter("runtime.driver.mode_switches")
_HOST_FALLBACKS = telemetry.counter("runtime.driver.host_fallbacks")


def _submission_order(order: Sequence[int], results: Sequence) -> List:
    """Map results computed in execution order back to submission order."""
    out = [None] * len(results)
    for pos, result in zip(order, results):
        out[pos] = result
    return out


@dataclass(frozen=True, slots=True)
class PimRequest:
    """One queued pim_op call."""

    op: PimOp
    dest: BitVectorHandle
    sources: Tuple[BitVectorHandle, ...]
    n_bits: int
    overlap_chunks: bool = False

    def depends_on(self, other: "PimRequest") -> bool:
        """True if this request must stay after ``other``."""
        reads = {h.vid for h in self.sources}
        writes_mine = self.dest.vid
        # RAW: we read what the other wrote; WAW/WAR on the destination.
        if other.dest.vid in reads:
            return True
        if other.dest.vid == writes_mine:
            return True
        if writes_mine in {h.vid for h in other.sources}:
            return True
        return False


@dataclass(slots=True)
class DriverStats:
    requests: int = 0
    instructions: int = 0
    mode_switches: int = 0
    host_fallbacks: int = 0
    accounting: OpAccounting = field(default_factory=OpAccounting)

    def to_dict(self) -> dict:
        """Uniform stat record (the RunStats field vocabulary, aggregated
        over every request this driver has flushed)."""
        return {
            "latency": self.accounting.latency,
            "energy": self.accounting.energy,
            "bits_processed": self.accounting.bits_processed,
            "steps": self.accounting.in_memory_steps,
            "requests": self.requests,
            "instructions": self.instructions,
            "mode_switches": self.mode_switches,
            "host_fallbacks": self.host_fallbacks,
        }

    def summary(self) -> str:
        """One-line human-readable digest.

        .. note:: before the stats-convention convergence this method
           returned a dict; that payload now lives on :meth:`to_dict`.
        """
        return (
            f"DriverStats: {self.requests} requests / "
            f"{self.instructions} instructions, "
            f"{self.mode_switches} mode switches, "
            f"{self.host_fallbacks} host fallbacks, "
            f"latency {self.accounting.latency:.3e}s, "
            f"energy {self.accounting.energy:.3e}J"
        )


class PimDriver:
    """Batches, reorders and issues PIM requests."""

    def __init__(self, executor: PinatuboExecutor):
        self.executor = executor
        self._queue: List[PimRequest] = []
        self.stats = DriverStats()
        #: execution-order permutation of the most recent :meth:`flush`
        #: (submission indices); the kernel compiler reads it to map
        #: recorded command streams back to submitted requests
        self.last_order: List[int] = []

    # -- request queue ------------------------------------------------------

    def submit(
        self,
        op,
        dest: BitVectorHandle,
        sources,
        n_bits: Optional[int] = None,
        overlap_chunks: bool = False,
    ) -> None:
        """Queue one operation (flushed explicitly or via ``flush``)."""
        op = PimOp.parse(op)
        sources = tuple(sources)
        if n_bits is None:
            n_bits = min([dest.n_bits] + [s.n_bits for s in sources])
        self._queue.append(PimRequest(op, dest, sources, n_bits, overlap_chunks))
        self.stats.requests += 1
        _REQUESTS.add()

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------

    def _reorder(self, requests: Sequence[PimRequest]) -> List[int]:
        """Stable op-grouping that respects data dependences.

        Greedy list scheduling: repeatedly emit the longest run of
        ready requests sharing one op.  Returns the execution order as a
        permutation of submission indices so :meth:`flush` can hand the
        per-request results back in submission order.
        """
        # (submission index, request, dest vid, source vid set): hoisted
        # so the O(n^2) dependence scan below is pure set work
        remaining = [
            (i, req, req.dest.vid, {h.vid for h in req.sources})
            for i, req in enumerate(requests)
        ]
        order: List[int] = []
        while remaining:
            # ready = requests with no dependence on anything still queued
            # before them (RAW / WAW / WAR against an earlier request)
            ready_idx = []
            for i, (_pos, _req, write, reads) in enumerate(remaining):
                ready = True
                for _ppos, _prev, p_write, p_reads in remaining[:i]:
                    if p_write in reads or p_write == write or write in p_reads:
                        ready = False
                        break
                if ready:
                    ready_idx.append(i)
            if not ready_idx:  # cycle cannot happen with RAW/WAW/WAR; safety
                ready_idx = [0]
            # pick the op with the most ready requests
            by_op = {}
            for i in ready_idx:
                by_op.setdefault(remaining[i][1].op, []).append(i)
            best_op = max(by_op, key=lambda op: len(by_op[op]))
            # keep submission order within the emitted group; pop from the
            # back so earlier indices stay valid
            order.extend(remaining[i][0] for i in by_op[best_op])
            for i in reversed(by_op[best_op]):
                remaining.pop(i)
        return order

    def flush(self, batched: bool = False) -> List[OpResult]:
        """Issue every queued request; returns the per-request results.

        Results come back in **submission order** regardless of how the
        scheduler reordered execution, so callers can zip them against
        what they queued.

        With ``batched=True`` (and a batching executor) the whole
        reordered stream is priced as **one** command batch through
        :meth:`PinatuboExecutor.bitwise_many`; per-request results are
        identical to the sequential path.  If any request's placement
        is in-memory-infeasible, the stream falls back to the
        per-request path so individual requests can take the host
        fallback -- ``bitwise_many`` validates placement before touching
        any state, which is what makes the retry safe.
        """
        with telemetry.span("runtime.driver.flush", batched=batched) as sp:
            batch, self._queue = self._queue, []
            order = self._reorder(batch)
            self.last_order = order
            ordered = [batch[i] for i in order]
            sp.add(requests=len(ordered))
            _FLUSHES.add()
            last_op = None
            for req in ordered:
                if req.op != last_op:
                    self.stats.mode_switches += 1
                    _MODE_SWITCHES.add()
                    last_op = req.op
                instr = PimInstruction(
                    op=req.op,
                    dest_frame=req.dest.frames[0],
                    source_frames=tuple(s.frames[0] for s in req.sources),
                    n_bits=req.n_bits,
                )
                # round-trip through the wire format: the controller sees bytes
                decoded = decode_instruction(encode_instruction(instr))
                assert decoded == instr

            if batched and self.executor.batch_commands and len(ordered) > 1:
                try:
                    results = self.executor.bitwise_many(
                        [
                            (
                                req.op,
                                list(req.dest.frames),
                                [list(s.frames) for s in req.sources],
                                req.n_bits,
                                req.overlap_chunks,
                            )
                            for req in ordered
                        ]
                    )
                except PlacementError:
                    results = None  # retry request-by-request with host fallback
                if results is not None:
                    for result in results:
                        self.stats.instructions += 1
                        self.stats.accounting = self.stats.accounting.merged(
                            result.accounting
                        )
                    return _submission_order(order, results)

            results = []
            for req in ordered:
                try:
                    result = self.executor.bitwise(
                        req.op,
                        list(req.dest.frames),
                        [list(s.frames) for s in req.sources],
                        req.n_bits,
                        overlap_chunks=req.overlap_chunks,
                    )
                except PlacementError:
                    # operands span chips/channels: the memory cannot combine
                    # them, so the driver falls back to the host path (read
                    # every operand over the bus, compute, write back) -- the
                    # cost the PIM-aware allocator exists to avoid
                    result = self._host_fallback(req)
                    self.stats.host_fallbacks += 1
                    _HOST_FALLBACKS.add()
                self.stats.instructions += 1
                self.stats.accounting = self.stats.accounting.merged(result.accounting)
                results.append(result)
            return _submission_order(order, results)

    def _host_fallback(self, req: PimRequest) -> OpResult:
        """Execute one request on the host: bus reads + CPU op + write."""
        acct = OpAccounting()
        if req.op is PimOp.INV:
            bits, read_acct = self.executor.read_vector(
                list(req.sources[0].frames), req.n_bits
            )
            acct = acct.merged(read_acct)
            out = (1 - bits).astype(np.uint8)
        else:
            ufunc = _HOST_UFUNCS[req.op]
            out = None
            for source in req.sources:
                bits, read_acct = self.executor.read_vector(
                    list(source.frames), req.n_bits
                )
                acct = acct.merged(read_acct)
                out = bits if out is None else ufunc(out, bits)
        write_acct = self.executor.write_vector(list(req.dest.frames), out)
        acct = acct.merged(write_acct)
        acct.count_bits(req.n_bits * len(req.sources))
        return OpResult(op=req.op, accounting=acct, steps=0, localities={})

    def execute(
        self,
        op,
        dest,
        sources,
        n_bits: Optional[int] = None,
        overlap_chunks: bool = False,
    ) -> OpResult:
        """Submit + flush one request (the common synchronous path)."""
        self.submit(op, dest, sources, n_bits, overlap_chunks)
        return self.flush()[0]

    def execute_many(self, requests: Iterable[tuple]) -> List[OpResult]:
        """Submit a stream of ``(op, dest, sources[, n_bits])`` tuples and
        flush them as one command batch (see :meth:`flush`)."""
        for req in requests:
            self.submit(*req)
        return self.flush(batched=True)
