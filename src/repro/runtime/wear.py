"""Endurance monitoring for the NVM main memory.

PCM cells wear out (~1e8 programs in the catalog); a PIM system that
repeatedly writes operation results to the same accumulator rows
concentrates wear exactly where conventional wear-levelling (which sees
only host writes) cannot.  This module watches the functional memory's
per-frame program counts and answers the questions an operator would
ask: how skewed is the wear, which rows are hot, and how long until the
hottest row dies at the observed rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.memsim.mainmem import MainMemory
from repro.nvm.technology import NVMTechnology, get_technology

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

# wear rolled up into the process-wide telemetry registry: counters for
# the monotone quantities, gauges for the distribution shape
_TOTAL_WRITES = telemetry.counter("runtime.wear.total_writes")
_FRAMES_WRITTEN = telemetry.counter("runtime.wear.frames_written")
_MAX_WRITES = telemetry.gauge("runtime.wear.max_writes")
_MEAN_WRITES = telemetry.gauge("runtime.wear.mean_writes")
_IMBALANCE = telemetry.gauge("runtime.wear.imbalance")


@dataclass
class WearReport:
    """Snapshot of write-wear across the memory."""

    frames_written: int
    total_writes: int
    max_writes: int
    mean_writes: float
    hottest: list  # [(frame, writes)], descending, capped

    @property
    def imbalance(self) -> float:
        """Max-to-mean write ratio (1.0 = perfectly level)."""
        if self.mean_writes == 0:
            return 0.0
        return self.max_writes / self.mean_writes


class WearMonitor:
    """Tracks frame wear against the technology's endurance budget."""

    def __init__(
        self,
        memory: MainMemory,
        technology: NVMTechnology = None,
        hot_list_size: int = 8,
    ):
        if hot_list_size < 1:
            raise ValueError("hot_list_size must be positive")
        self.memory = memory
        self.technology = technology or get_technology("pcm")
        self.hot_list_size = hot_list_size
        # last values published to the counter registry, so repeated
        # publish() calls add only the delta (counters are monotone)
        self._published_total = 0
        self._published_frames = 0

    def report(self) -> WearReport:
        histogram = self.memory.write_histogram()
        if not histogram:
            return WearReport(0, 0, 0, 0.0, [])
        writes = list(histogram.values())
        hottest = sorted(histogram.items(), key=lambda kv: kv[1], reverse=True)
        return WearReport(
            frames_written=len(histogram),
            total_writes=sum(writes),
            max_writes=max(writes),
            mean_writes=sum(writes) / len(writes),
            hottest=hottest[: self.hot_list_size],
        )

    def publish(self) -> WearReport:
        """Push the current wear snapshot into the telemetry registry.

        Counters (``runtime.wear.total_writes`` / ``.frames_written``)
        accumulate deltas since this monitor's last publish, so calling
        after every workload phase keeps them monotone; gauges
        (``.max_writes`` / ``.mean_writes`` / ``.imbalance``) hold the
        latest snapshot.  The aggregate shows up in
        :func:`repro.telemetry.summary` and the exit report.
        """
        report = self.report()
        _TOTAL_WRITES.add(report.total_writes - self._published_total)
        _FRAMES_WRITTEN.add(report.frames_written - self._published_frames)
        self._published_total = report.total_writes
        self._published_frames = report.frames_written
        _MAX_WRITES.set(report.max_writes)
        _MEAN_WRITES.set(report.mean_writes)
        _IMBALANCE.set(report.imbalance)
        return report

    def remaining_endurance(self, frame: int) -> float:
        """Fraction of the frame's program budget still unused."""
        used = self.memory.frame_writes(frame)
        return max(0.0, 1.0 - used / self.technology.endurance)

    def lifetime_years(self, elapsed_seconds: float) -> float:
        """Years until the hottest frame exhausts its endurance, if the
        observed write rate continues."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        report = self.report()
        if report.max_writes == 0:
            return float("inf")
        rate = report.max_writes / elapsed_seconds  # writes/s on the hot frame
        remaining = self.technology.endurance - report.max_writes
        if remaining <= 0:
            return 0.0
        return remaining / rate / SECONDS_PER_YEAR

    def over_budget_frames(self, budget_fraction: float = 1.0) -> list:
        """Frames whose program count exceeds a fraction of endurance."""
        if budget_fraction <= 0:
            raise ValueError("budget_fraction must be positive")
        limit = self.technology.endurance * budget_fraction
        return sorted(
            frame
            for frame, writes in self.memory.write_histogram().items()
            if writes > limit
        )
