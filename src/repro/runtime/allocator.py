"""The PIM-aware allocation layer: ``pim_malloc`` semantics.

"The C/C++ run-time library is modified to provide a PIM-aware data
allocation function.  It ensures that different bit-vectors are allocated
to different memory rows, since Pinatubo is only able to process
inter-row operations."  A :class:`BitVectorHandle` is what ``pim_malloc``
returns: an opaque, row-aligned region of main memory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.memsim.geometry import MemoryGeometry
from repro.runtime.os_mm import PimMemoryManager


class AllocationError(RuntimeError):
    """pim_malloc / pim_free misuse."""


@dataclass(frozen=True)
class BitVectorHandle:
    """An allocated bit-vector: row-aligned frames in main memory."""

    vid: int
    n_bits: int
    frames: tuple
    group: str = "default"

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError("n_bits must be positive")
        if not self.frames:
            raise ValueError("a handle needs at least one frame")

    @property
    def n_rows(self) -> int:
        return len(self.frames)


class PimAllocator:
    """Row-granular allocator over the OS memory manager."""

    def __init__(self, manager: PimMemoryManager):
        self.manager = manager
        self._ids = itertools.count(1)
        self._live: dict = {}
        self._free_listeners: list = []

    def add_free_listener(self, callback) -> None:
        """Register ``callback(handle)`` to fire on every ``pim_free``.

        The planning layer hooks this to drop expression bindings and
        cached sub-results whose rows are about to be recycled.
        """
        self._free_listeners.append(callback)

    @property
    def geometry(self) -> MemoryGeometry:
        return self.manager.geometry

    def pim_malloc(self, n_bits: int, group: str = "default") -> BitVectorHandle:
        """Allocate a bit-vector of ``n_bits``, row-aligned.

        Vectors sharing a ``group`` are co-located in the same subarray
        whenever possible, which is what makes their mutual operations
        intra-subarray.
        """
        if n_bits < 1:
            raise AllocationError("pim_malloc needs a positive bit length")
        n_rows = self.geometry.rows_for_bits(n_bits)
        frames = self.manager.allocate_rows(n_rows, group)
        handle = BitVectorHandle(
            vid=next(self._ids), n_bits=n_bits, frames=tuple(frames), group=group
        )
        self._live[handle.vid] = handle
        return handle

    def pim_free(self, handle: BitVectorHandle) -> None:
        if handle.vid not in self._live:
            raise AllocationError(f"handle {handle.vid} is not live")
        del self._live[handle.vid]
        if self._free_listeners:
            for callback in self._free_listeners:
                callback(handle)
        self.manager.free_rows(handle.frames)

    @property
    def live_handles(self) -> int:
        return len(self._live)

    def is_live(self, handle: BitVectorHandle) -> bool:
        return handle.vid in self._live
