"""PIM-aware OS memory management (paper Section 5).

"The OS provides the PIM-aware memory management that maximizes the
opportunity for calling intra-subarray operations" -- this module is that
policy.  Bit-vectors tagged with the same *affinity group* are placed in
the same subarray whenever free rows remain there; a group spills to the
next subarray (then bank, then rank) only when full.  The manager also
plays the OS's second role: exposing the physical placement (row frames)
to the driver library, the paper's "expose PA by sys-call".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.memsim.address import AddressMapper, RowAddress
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry


class PlacementPolicy(enum.Enum):
    """How the OS maps new bit-vector rows to physical frames."""

    #: Fill one subarray before moving to the next (PIM-friendly).
    PIM_AWARE = "pim_aware"
    #: Scatter rows across banks (a conventional bank-interleaving OS);
    #: used to model the paper's random-access cases.
    INTERLEAVED = "interleaved"
    #: Extension beyond the paper: chunk c of every vector in a group
    #: goes to a dedicated subarray on channel ``c % channels``.  Each
    #: chunk's operation stays intra-subarray, while the chunks of one
    #: long vector can execute on different channels concurrently
    #: (see ``PinatuboExecutor.bitwise(overlap_chunks=True)``).
    CHANNEL_STRIPED = "channel_striped"
    #: Like PIM_AWARE (a group fills one subarray, ops stay
    #: intra-subarray), but fresh subarrays are claimed channel-first,
    #: then bank-first: consecutive *groups* land on different channels
    #: and banks.  This is the serving layer's placement: each tenant's
    #: vectors stay subarray-local while different tenants occupy
    #: independent (channel, bank) shards whose command streams the
    #: controller can interleave.
    BANK_SPREAD = "bank_spread"


@dataclass
class _SubarraySlot:
    """Free-row bookkeeping for one subarray.

    ``free_rows`` keeps the FIFO allocation order; ``free_set`` mirrors
    it for O(1) membership (the double-free check) instead of a list
    scan per released frame.
    """

    base_frame: int
    free_rows: list = field(default_factory=list)
    free_set: set = field(default_factory=set)


class PimMemoryManager:
    """Tracks free rows and serves placement requests."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        policy: PlacementPolicy = PlacementPolicy.PIM_AWARE,
    ):
        self.geometry = geometry
        self.policy = policy
        self.mapper = AddressMapper(geometry)
        g = geometry
        self._subarrays = []
        for channel in range(g.channels):
            for rank in range(g.ranks_per_channel):
                for bank in range(g.banks_per_rank):
                    for sub in range(g.subarrays_per_bank):
                        base = self.mapper.encode(
                            RowAddress(channel, rank, bank, sub, 0)
                        )
                        self._subarrays.append(
                            _SubarraySlot(
                                base_frame=base,
                                free_rows=list(range(g.rows_per_subarray)),
                                free_set=set(range(g.rows_per_subarray)),
                            )
                        )
        #: affinity group -> index of the subarray currently being filled
        self._group_cursor: dict = {}
        #: (group, chunk_channel) -> subarray index (CHANNEL_STRIPED)
        self._stripe_cursor: dict = {}
        self._next_fresh_subarray = 0
        #: BANK_SPREAD claim order: subarray position major, channel and
        #: bank minor, so consecutive claims hit different channels
        #: first, then different banks -- maximally independent shards
        self._spread_order = [
            self._index_of(channel, rank, bank, sub)
            for sub in range(g.subarrays_per_bank)
            for rank in range(g.ranks_per_channel)
            for bank in range(g.banks_per_rank)
            for channel in range(g.channels)
        ]
        self._next_spread_claim = 0
        self._interleave_cursor = 0
        self.frames_allocated = 0
        #: subarrays per channel, for the striped policy's channel maths
        self._subarrays_per_channel = len(self._subarrays) // g.channels
        #: running free-row count -- ``allocate_rows`` consults it on
        #: every call, so it must stay O(1) instead of a per-subarray scan
        self._free_total = len(self._subarrays) * g.rows_per_subarray

    # -- queries -------------------------------------------------------------

    @property
    def total_free_rows(self) -> int:
        return self._free_total

    def frame_address(self, frame: int) -> RowAddress:
        """The "expose PA by sys-call" interface for the driver."""
        return self.mapper.decode(frame)

    # -- allocation -------------------------------------------------------------

    def allocate_rows(self, n_rows: int, group: str = "default") -> list:
        """Allocate ``n_rows`` frames per the placement policy."""
        if n_rows < 1:
            raise ValueError("n_rows must be positive")
        if n_rows > self.total_free_rows:
            raise MemoryError(
                f"out of PIM memory: need {n_rows} rows, "
                f"{self.total_free_rows} free"
            )
        if self.policy is PlacementPolicy.INTERLEAVED:
            frames = self._allocate_interleaved(n_rows)
        elif self.policy is PlacementPolicy.CHANNEL_STRIPED:
            frames = self._allocate_channel_striped(n_rows, group)
        else:  # PIM_AWARE and BANK_SPREAD share the group-fill mechanics
            frames = self._allocate_pim_aware(n_rows, group)
        self.frames_allocated += n_rows
        return frames

    def _allocate_pim_aware(self, n_rows: int, group: str) -> list:
        frames = []
        while len(frames) < n_rows:
            slot = self._current_slot(group)
            rows = slot.free_rows
            if not rows:
                self._advance_group(group)
                continue
            # take the whole run from the front in one slice (same FIFO
            # order as popping row by row, without the per-row shifts)
            k = min(n_rows - len(frames), len(rows))
            taken = rows[:k]
            del rows[:k]
            slot.free_set.difference_update(taken)
            self._free_total -= k
            base = slot.base_frame
            frames.extend(base + row for row in taken)
        return frames

    def _current_slot(self, group: str) -> _SubarraySlot:
        if group not in self._group_cursor:
            self._group_cursor[group] = self._claim_fresh_subarray()
        return self._subarrays[self._group_cursor[group]]

    def _claim_fresh_subarray(self) -> int:
        if self.policy is PlacementPolicy.BANK_SPREAD:
            return self._claim_spread_subarray()
        n = len(self._subarrays)
        for _ in range(n):
            idx = self._next_fresh_subarray
            self._next_fresh_subarray = (idx + 1) % n
            if self._subarrays[idx].free_rows:
                return idx
        raise MemoryError("no subarray with free rows")

    def _claim_spread_subarray(self) -> int:
        """Next fresh subarray in channel-then-bank spread order."""
        n = len(self._spread_order)
        for _ in range(n):
            idx = self._spread_order[self._next_spread_claim]
            self._next_spread_claim = (self._next_spread_claim + 1) % n
            if self._subarrays[idx].free_rows:
                return idx
        raise MemoryError("no subarray with free rows")

    def _advance_group(self, group: str) -> None:
        self._group_cursor[group] = self._claim_fresh_subarray()

    def _allocate_channel_striped(self, n_rows: int, group: str) -> list:
        """Row i of the vector goes to the group's subarray on channel
        ``i % channels``; vectors in one group share those subarrays, so
        chunk-c operations stay intra-subarray while different chunks
        live on different channels."""
        frames = []
        n_channels = self.geometry.channels
        for i in range(n_rows):
            channel = i % n_channels
            key = (group, channel)
            while True:
                if key not in self._stripe_cursor:
                    self._stripe_cursor[key] = self._claim_fresh_on_channel(channel)
                slot = self._subarrays[self._stripe_cursor[key]]
                if slot.free_rows:
                    break
                del self._stripe_cursor[key]
            row = slot.free_rows.pop(0)
            slot.free_set.discard(row)
            self._free_total -= 1
            frames.append(slot.base_frame + row)
        return frames

    def _claim_fresh_on_channel(self, channel: int) -> int:
        """First subarray with free rows on the given channel."""
        start = channel * self._subarrays_per_channel
        for offset in range(self._subarrays_per_channel):
            idx = start + offset
            if self._subarrays[idx].free_rows:
                return idx
        raise MemoryError(f"no free subarray on channel {channel}")

    def _allocate_interleaved(self, n_rows: int) -> list:
        frames = []
        n = len(self._subarrays)
        while len(frames) < n_rows:
            idx = self._interleave_cursor
            self._interleave_cursor = (idx + 1) % n
            slot = self._subarrays[idx]
            if slot.free_rows:
                row = slot.free_rows.pop(0)
                slot.free_set.discard(row)
                self._free_total -= 1
                frames.append(slot.base_frame + row)
        return frames

    # -- release --------------------------------------------------------------

    def free_rows(self, frames) -> None:
        """Return frames to their subarrays' free lists."""
        for frame in frames:
            addr = self.mapper.decode(frame)
            sub_index = self._subarray_index(addr)
            slot = self._subarrays[sub_index]
            row = frame - slot.base_frame
            if row in slot.free_set:
                raise ValueError(f"double free of frame {frame}")
            slot.free_rows.append(row)
            slot.free_set.add(row)
            self._free_total += 1
            self.frames_allocated -= 1

    def _subarray_index(self, addr: RowAddress) -> int:
        return self._index_of(addr.channel, addr.rank, addr.bank, addr.subarray)

    def _index_of(self, channel: int, rank: int, bank: int, sub: int) -> int:
        g = self.geometry
        idx = channel
        idx = idx * g.ranks_per_channel + rank
        idx = idx * g.banks_per_rank + bank
        idx = idx * g.subarrays_per_bank + sub
        return idx
