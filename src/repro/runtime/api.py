"""The programming model: :class:`PimRuntime`.

The two calls the paper gives programmers (Fig. 4)::

    pim_malloc( )                      ->  PimRuntime.pim_malloc(n_bits)
    pim_op(dst, src1, src2,
           data_t, op_t, len)          ->  PimRuntime.pim_op(op, dst, srcs)

plus host-side reads/writes of vector contents and cost accounting.  This
is the layer applications (:mod:`repro.apps`) are written against.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.pinatubo import PinatuboSystem
from repro.core.stats import OpAccounting
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.runtime.allocator import BitVectorHandle, PimAllocator
from repro.runtime.driver import PimDriver
from repro.runtime.os_mm import PimMemoryManager, PlacementPolicy


def _canned_config(
    technology: str, max_rows: Optional[int], geometry: MemoryGeometry
):
    """The declarative config a pcm()/stt() shortcut stands for."""
    from repro.backends.config import SystemConfig, geometry_name

    return SystemConfig(
        backend="pinatubo",
        technology=technology,
        geometry=geometry_name(geometry),
        max_rows=max_rows,
    )


class PimRuntime:
    """End-to-end Pinatubo software stack over one memory system."""

    def __init__(
        self,
        system: Optional[PinatuboSystem] = None,
        policy: PlacementPolicy = PlacementPolicy.PIM_AWARE,
        plan: bool = False,
        plan_cache_bytes: int = 64 << 20,
        compile: bool = True,
        repair: bool = True,
    ):
        self.system = system or PinatuboSystem.pcm()
        self.manager = PimMemoryManager(self.system.geometry, policy)
        self.allocator = PimAllocator(self.manager)
        self.driver = PimDriver(self.system.executor)
        self.host_accounting = OpAccounting()
        self.planner = None
        if plan:
            # deferred import: repro.plan imports the driver module
            from repro.plan import QueryPlanner

            self.planner = QueryPlanner(
                self.driver,
                cache_bytes=plan_cache_bytes,
                compile=compile,
                repair=repair,
            )
            self.allocator.add_free_listener(self.planner.on_free)

    # -- canned configurations ----------------------------------------------

    @classmethod
    def from_config(
        cls,
        config,
        plan: bool = False,
        plan_cache_bytes: int = 64 << 20,
        compile: bool = True,
        repair: bool = True,
    ) -> "PimRuntime":
        """The canonical constructor: declarative config -> full stack.

        Routes through :func:`repro.backends.build_system` -- the same
        registry path every other consumer of a
        :class:`~repro.backends.config.SystemConfig` takes -- and asks
        the built backend for its functional runtime (only the
        ``pinatubo`` backend has one; anything else raises with the list
        of registered names).  The ``pcm()``/``stt()`` shortcuts and the
        direct ``PimRuntime(system)`` constructor are thin wrappers /
        injection hooks around this path: ``PimRuntime.pcm()`` is
        ``PimRuntime.from_config(SystemConfig(technology="pcm"))`` by
        definition, and builds an equivalent system.
        ``plan``/``compile``/``repair`` carry through to the constructor
        (planned execution with the kernel compiler and delta repair).
        """
        from repro.backends.registry import build_system

        backend = build_system(config)
        build_runtime = getattr(backend, "build_runtime", None)
        if build_runtime is None:
            from repro.backends.registry import registry

            raise ValueError(
                f"backend {config.backend!r} has no functional runtime; "
                f"registered: {registry.names()} (only 'pinatubo' builds "
                f"a PimRuntime)"
            )
        return build_runtime(
            plan=plan,
            plan_cache_bytes=plan_cache_bytes,
            compile=compile,
            repair=repair,
        )

    @classmethod
    def pcm(
        cls,
        max_rows: Optional[int] = None,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        **kwargs,
    ) -> "PimRuntime":
        """PCM main memory -- one-line wrapper over :meth:`from_config`."""
        return cls.from_config(_canned_config("pcm", max_rows, geometry), **kwargs)

    @classmethod
    def stt(
        cls, geometry: MemoryGeometry = DEFAULT_GEOMETRY, **kwargs
    ) -> "PimRuntime":
        """STT-MRAM main memory -- wrapper over :meth:`from_config`."""
        return cls.from_config(_canned_config("stt", None, geometry), **kwargs)

    # -- programming model ----------------------------------------------------

    def pim_malloc(self, n_bits: int, group: str = "default") -> BitVectorHandle:
        """Allocate a bit-vector in PIM memory (row-aligned)."""
        return self.allocator.pim_malloc(n_bits, group)

    def pim_free(self, handle: BitVectorHandle) -> None:
        self.allocator.pim_free(handle)

    def pim_op(self, op, dest, sources, *, n_bits: Optional[int] = None,
               overlap_chunks: bool = False):
        """``dest = op(sources)`` executed in memory; returns the OpResult.

        ``op`` is a :class:`~repro.core.ops.PimOp` or its string name
        (``"or"``/``"and"``/``"xor"``/``"inv"``), matching the backend
        protocol's :meth:`~repro.backends.BulkBitwiseBackend.bitwise`;
        the optional parameters are keyword-only for the same reason.
        ``overlap_chunks=True`` (extension) lets the chunks of a long
        vector execute concurrently when the placement policy striped
        them across channels.

        With ``plan=True`` the request goes through the
        :class:`~repro.plan.QueryPlanner` first, which may serve it from
        the sub-result cache instead of executing it.
        """
        if self.planner is not None:
            return self.planner.execute(op, dest, sources, n_bits, overlap_chunks)
        return self.driver.execute(op, dest, sources, n_bits, overlap_chunks)

    def pim_op_many(self, requests: Iterable[tuple]) -> List:
        """Issue a stream of ``(op, dest, sources[, n_bits])`` operations.

        The whole stream is reordered by the driver and priced as **one**
        command batch (one :meth:`MemoryController.execute_batch` call)
        instead of one stream per operation; per-op results are identical
        to sequential :meth:`pim_op` calls.  Returns the OpResults in
        issue order.

        With ``plan=True`` the whole stream is compiled by the
        :class:`~repro.plan.QueryPlanner`: duplicate sub-expressions are
        eliminated within the batch and against the sub-result cache.
        """
        if self.planner is not None:
            return self.planner.execute_many(requests)
        return self.driver.execute_many(requests)

    def pim_op_to_host(
        self, op, scratch, sources, *, n_bits: Optional[int] = None
    ) -> np.ndarray:
        """``op(sources)`` with the result streamed straight to the host.

        The paper's alternative emission path ("results can be sent to
        the I/O bus"): no destination row is programmed by the final
        step; ``scratch`` only holds intermediates when the operand list
        decomposes.  Returns the result bits.
        """
        sources = list(sources)
        if n_bits is None:
            n_bits = min([scratch.n_bits] + [s.n_bits for s in sources])
        scratch_frames = list(scratch.frames)
        source_frame_lists = [list(s.frames) for s in sources]
        if self.planner is not None:
            # planned runtimes route through the kernel compiler: the
            # call replays as a frozen program once its shape repeats
            bits, result = self.planner.execute_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        else:
            bits, result = self.system.executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        self.driver.stats.instructions += 1
        self.driver.stats.accounting = self.driver.stats.accounting.merged(
            result.accounting
        )
        return bits

    def pim_popcount(
        self, op, scratch, sources, *, n_bits: Optional[int] = None
    ) -> int:
        """``popcount(op(sources))``: a to-host op reduced to a count.

        The command stream and pricing are identical to
        :meth:`pim_op_to_host` -- the full result still crosses the I/O
        bus -- but the host side reduces the packed rows straight to a
        set-bit count, skipping the bit unpack.  The arithmetic
        subsystem's aggregation primitive (COUNT/SUM/histogram).
        """
        sources = list(sources)
        if n_bits is None:
            n_bits = min([scratch.n_bits] + [s.n_bits for s in sources])
        scratch_frames = list(scratch.frames)
        source_frame_lists = [list(s.frames) for s in sources]
        if self.planner is not None:
            count, result = self.planner.execute_popcount(
                op, scratch_frames, source_frame_lists, n_bits
            )
        else:
            bits, result = self.system.executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
            count = int(bits.sum())
        self.driver.stats.instructions += 1
        self.driver.stats.accounting = self.driver.stats.accounting.merged(
            result.accounting
        )
        return count

    def pim_write(self, handle: BitVectorHandle, bits: np.ndarray) -> None:
        """Host write of a vector's contents (pays bus cost)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size > handle.n_bits:
            raise ValueError("data longer than the allocated vector")
        acct = self.system.executor.write_vector(handle.frames, bits)
        self.host_accounting = self.host_accounting.merged(acct)

    def pim_read(
        self, handle: BitVectorHandle, n_bits: Optional[int] = None
    ) -> np.ndarray:
        """Host read of a vector's contents (pays bus cost)."""
        n_bits = handle.n_bits if n_bits is None else n_bits
        if n_bits > handle.n_bits:
            raise ValueError("read longer than the allocated vector")
        bits, acct = self.system.executor.read_vector(handle.frames, n_bits)
        self.host_accounting = self.host_accounting.merged(acct)
        return bits

    # -- accounting --------------------------------------------------------------

    @property
    def pim_accounting(self) -> OpAccounting:
        """Cost of every in-memory operation issued through the driver."""
        return self.driver.stats.accounting

    @property
    def plan_stats(self):
        """The planner's :class:`~repro.plan.PlanStats` (None when
        planning is off)."""
        return self.planner.stats if self.planner is not None else None

    def total_latency(self) -> float:
        return self.pim_accounting.latency + self.host_accounting.latency

    def total_energy(self) -> float:
        return self.pim_accounting.energy + self.host_accounting.energy
