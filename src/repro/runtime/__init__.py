"""System support for Pinatubo (paper Section 5 / Fig. 4).

The software stack has four layers, each modelled here:

- **programming model** (:mod:`repro.runtime.api`): ``pim_malloc`` and
  ``pim_op``, exposed through :class:`PimRuntime`;
- **C run-time / OS** (:mod:`repro.runtime.os_mm`): PIM-aware placement
  that keeps co-allocated bit-vectors in one subarray so operations stay
  intra-subarray, and exposes physical addresses to the driver;
- **driver library** (:mod:`repro.runtime.driver`): reorders and batches
  operation requests (minimising mode-register switches), then issues
  extended PIM instructions;
- **extended ISA / hardware control** (:mod:`repro.runtime.isa`):
  instruction encoding and the translation to DDR commands + MR4 writes.
"""

from repro.runtime.allocator import BitVectorHandle, PimAllocator, AllocationError
from repro.runtime.os_mm import PimMemoryManager, PlacementPolicy
from repro.runtime.isa import PimInstruction, encode_instruction, decode_instruction
from repro.runtime.driver import DriverStats, PimDriver, PimRequest
from repro.runtime.api import PimRuntime
from repro.runtime.wear import WearMonitor, WearReport

__all__ = [
    "DriverStats",
    "WearMonitor",
    "WearReport",
    "BitVectorHandle",
    "PimAllocator",
    "AllocationError",
    "PimMemoryManager",
    "PlacementPolicy",
    "PimInstruction",
    "encode_instruction",
    "decode_instruction",
    "PimDriver",
    "PimRequest",
    "PimRuntime",
]
