"""Cluster-level statistics: router accounting over per-node stats.

Two views, kept separate on purpose:

- **user-facing**: what a client observed through the router -- one
  latency sample per user request, counting a scattered range query
  once (at its gather completion), never counting internal replica
  writes or scatter parts;
- **node-level**: each node's own :class:`ServiceStats` (which *does*
  include internal work -- that is real load on that node), plus a
  merged node aggregate built with :meth:`LatencyRecorder.merge`.

Like every stats container in the repo, ``to_json()`` is byte-stable:
all inputs are simulated-clock quantities and dict order is fixed.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.service.request import QueryResult, RequestStatus
from repro.service.stats import LatencyRecorder, ServiceStats

__all__ = ["ClusterStats"]

#: ServiceStats integer counters summed node-wise for the aggregate view
_NODE_COUNTERS = (
    "submitted",
    "completed",
    "rejected",
    "delayed",
    "batches",
    "coalesced_requests",
    "updates",
    "subscriptions",
    "notifications",
)


class ClusterStats:
    """Aggregate + per-node statistics of one cluster run."""

    def __init__(self) -> None:
        #: live references to each node's ServiceStats, by node id
        #: (retired nodes keep their entry -- their work happened)
        self.node_stats: Dict[int, ServiceStats] = {}
        #: user-facing latency: one sample per completed user request
        self.latency = LatencyRecorder()
        self.routed = 0  # user requests routed
        self.completed = 0  # user requests completed
        self.rejected = 0  # user requests rejected
        self.scattered = 0  # range reads split across replicas
        self.gathers = 0  # scatter-gathers completed
        self.replica_writes = 0  # internal fan-in update copies issued
        self.notifications = 0  # delta notifications delivered
        self.rebalanced_tenants = 0  # tenants whose owner set changed
        self.moved_vectors = 0  # vectors copied during rebalancing
        self.membership_changes = 0  # node joins + leaves

    def attach_node(self, node_id: int, stats: ServiceStats) -> None:
        self.node_stats[node_id] = stats

    def record_result(self, result: QueryResult) -> None:
        """Account one *user-facing* terminal result."""
        if result.status is RequestStatus.COMPLETED:
            self.completed += 1
            self.latency.record(result.latency_s)
        else:
            self.rejected += 1

    # -- derived (over the node stats) ---------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_stats)

    @property
    def first_dispatch_s(self) -> float:
        starts = [s.first_dispatch_s for s in self.node_stats.values()]
        return min(starts) if starts else math.inf

    @property
    def last_completion_s(self) -> float:
        ends = [s.last_completion_s for s in self.node_stats.values()]
        return max(ends) if ends else 0.0

    @property
    def makespan_s(self) -> float:
        """Earliest node dispatch to latest node completion."""
        if not math.isfinite(self.first_dispatch_s):
            return 0.0
        return self.last_completion_s - self.first_dispatch_s

    @property
    def ops_per_s(self) -> float:
        """Completed *user* requests per simulated second of serving."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.completed / span

    @property
    def energy_j(self) -> float:
        return sum(s.energy_j for s in self.node_stats.values())

    @property
    def busy_s(self) -> float:
        """Summed per-node busy time (> makespan when nodes overlap)."""
        return sum(s.busy_s for s in self.node_stats.values())

    def node_aggregate(self) -> dict:
        """Node-level counters summed and latencies merged across nodes.

        Includes internal work (replica copies, scatter parts): this is
        the cluster's *load* view, complementing the user-facing view.
        """
        merged = LatencyRecorder()
        for stats in self.node_stats.values():
            merged.merge(stats.latency)
        out = {name: 0 for name in _NODE_COUNTERS}
        for stats in self.node_stats.values():
            for name in _NODE_COUNTERS:
                out[name] += getattr(stats, name)
        out["energy_j"] = self.energy_j
        out["busy_s"] = self.busy_s
        out["latency"] = merged.to_dict()
        return out

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "routed": self.routed,
            "completed": self.completed,
            "rejected": self.rejected,
            "scattered": self.scattered,
            "gathers": self.gathers,
            "replica_writes": self.replica_writes,
            "notifications": self.notifications,
            "rebalanced_tenants": self.rebalanced_tenants,
            "moved_vectors": self.moved_vectors,
            "membership_changes": self.membership_changes,
            "energy_j": self.energy_j,
            "busy_s": self.busy_s,
            "makespan_s": self.makespan_s,
            "ops_per_s": self.ops_per_s,
            "latency": self.latency.to_dict(),
            "node_aggregate": self.node_aggregate(),
            "nodes": {
                str(node_id): stats.to_dict()
                for node_id, stats in sorted(self.node_stats.items())
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialisation (the determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary(self) -> str:
        lat = self.latency
        lines: List[str] = [
            (
                f"ClusterStats[{self.n_nodes} nodes]: "
                f"{self.completed}/{self.routed} completed "
                f"({self.rejected} rejected, {self.scattered} scattered, "
                f"{self.replica_writes} replica writes), "
                f"{self.ops_per_s:.3e} ops/s over {self.makespan_s:.3e}s, "
                f"p50 {lat.percentile(50) if lat.count else 0.0:.3e}s, "
                f"p99 {lat.percentile(99) if lat.count else 0.0:.3e}s, "
                f"energy {self.energy_j:.3e}J"
            )
        ]
        for node_id in sorted(self.node_stats):
            stats = self.node_stats[node_id]
            lines.append(
                f"  node {node_id}: {stats.completed}/{stats.submitted} "
                f"completed in {stats.batches} batches, "
                f"busy {stats.busy_s:.3e}s"
            )
        return "\n".join(lines)
