"""`repro.cluster`: scale-out serving over N shared-clock PIM nodes.

The cluster layer runs N independent
:class:`~repro.service.service.BitmapQueryService` nodes -- each with
its own ``PimRuntime``/engine, admission controller, plan cache, and
stats -- on ONE deterministic :class:`~repro.service.clock.EventLoop`.
A :class:`ClusterRouter` owns tenant placement (consistent hashing or a
range-index table), scatters reads/updates to the owning replicas, and
gathers partial results.  A 1-node cluster reproduces the single-node
service byte-identically; see :mod:`repro.cluster.router`.

Drive it through the :class:`repro.service.api.ServiceClient` facade::

    from repro.cluster import ClusterConfig, ClusterRouter
    from repro.service.api import ServiceClient

    client = ServiceClient(ClusterRouter(ClusterConfig(n_nodes=4)))
    client.register_tenant("hot", replicas=2)
    client.load_vectors("hot", {"a": bits_a, "b": bits_b})
    h = client.query("hot", "and", ("a", "b"))
    stats = client.run()
"""

from repro.cluster.placement import (
    HashRing,
    RangeIndexPlacement,
    key_point,
    make_placement,
)
from repro.cluster.router import ClusterConfig, ClusterNode, ClusterRouter
from repro.cluster.stats import ClusterStats

__all__ = [
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "ClusterStats",
    "HashRing",
    "RangeIndexPlacement",
    "key_point",
    "make_placement",
]
