"""Deterministic placement of tenant vector sets across cluster nodes.

Two interchangeable strategies, both pure functions of the tenant name
and the current node set (no RNG, no iteration-order dependence -- the
cluster's determinism contract extends to placement):

- :class:`HashRing` -- classic consistent hashing with virtual nodes.
  Tenants and virtual nodes map to points on the unit circle via SHA-1;
  a tenant is owned by the next ``n_replicas`` *distinct* nodes
  clockwise.  Node join/leave moves only the tenants whose arcs change
  hands (minimal movement).
- :class:`RangeIndexPlacement` -- a spine-style routing table: the unit
  interval is split into contiguous key ranges, each owned by one node,
  kept as an explicit sorted boundary list that lookups bisect.  Joins
  split the widest range; leaves merge a range into its predecessor.
  This is the gnitz-style "range index" alternative: placement is an
  inspectable table (useful for range-partitioned namespaces) rather
  than ring arithmetic.

Both expose the same surface: ``owners(key, n_replicas)``,
``add_node(node_id)``, ``remove_node(node_id)``, ``node_ids``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing", "RangeIndexPlacement", "key_point", "make_placement"]


def key_point(key: str) -> float:
    """Deterministic point in ``[0, 1)`` for a placement key (SHA-1)."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, node_ids: Sequence[int], virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._nodes: List[int] = []
        #: sorted (point, node_id) pairs -- the ring
        self._ring: List[Tuple[float, int]] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def _vnode_points(self, node_id: int) -> List[float]:
        return [
            key_point(f"node{node_id}#vn{v}")
            for v in range(self.virtual_nodes)
        ]

    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already on the ring")
        self._nodes.append(node_id)
        for point in self._vnode_points(node_id):
            bisect.insort(self._ring, (point, node_id))

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id} not on the ring")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._nodes.remove(node_id)
        self._ring = [(p, n) for p, n in self._ring if n != node_id]

    def owners(self, key: str, n_replicas: int = 1) -> List[int]:
        """The first ``n_replicas`` distinct nodes clockwise of ``key``.

        The first entry is the primary.  ``n_replicas`` caps at the
        node count (a 2-node cluster cannot hold 3 replicas).
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        n_replicas = min(n_replicas, len(self._nodes))
        start = bisect.bisect_right(self._ring, (key_point(key), float("inf")))
        owners: List[int] = []
        for i in range(len(self._ring)):
            node = self._ring[(start + i) % len(self._ring)][1]
            if node not in owners:
                owners.append(node)
                if len(owners) == n_replicas:
                    break
        return owners


class RangeIndexPlacement:
    """Spine-style routing table: contiguous key ranges, one node each.

    The table is a sorted list of ``(upper_bound, node_id)`` entries
    covering ``[0, 1)``: a key belongs to the first range whose upper
    bound exceeds its point.  Initial construction splits the interval
    evenly across the given nodes.
    """

    def __init__(self, node_ids: Sequence[int]):
        node_ids = list(node_ids)
        if not node_ids:
            raise ValueError("need at least one node")
        n = len(node_ids)
        #: sorted (upper_bound, node_id); the last upper bound is 1.0
        self._table: List[Tuple[float, int]] = [
            ((i + 1) / n, node_id) for i, node_id in enumerate(node_ids)
        ]

    @property
    def node_ids(self) -> List[int]:
        return sorted({node for _, node in self._table})

    def __len__(self) -> int:
        return len(self.node_ids)

    @property
    def table(self) -> List[Tuple[float, int]]:
        """The routing table (upper bound, node), in key order."""
        return list(self._table)

    def _ranges(self) -> List[Tuple[float, float, int]]:
        out = []
        lo = 0.0
        for hi, node in self._table:
            out.append((lo, hi, node))
            lo = hi
        return out

    def add_node(self, node_id: int) -> None:
        """Split the widest range in half; the new node takes the top.

        Ties break toward the lowest range start, so the split point is
        a pure function of the table.
        """
        if node_id in {n for _, n in self._table}:
            raise ValueError(f"node {node_id} already placed")
        widest = max(self._ranges(), key=lambda r: (r[1] - r[0], -r[0]))
        lo, hi, old = widest
        mid = (lo + hi) / 2.0
        index = self._table.index((hi, old))
        self._table[index : index + 1] = [(mid, old), (hi, node_id)]

    def remove_node(self, node_id: int) -> None:
        """Merge each of the node's ranges into its *predecessor* range.

        Predecessor merge makes leave the exact inverse of join: a node
        added by :meth:`add_node` (which takes the top half of a split)
        hands its range straight back on removal, restoring the prior
        table.  The node's leading range(s), which have no predecessor,
        are absorbed downward by their successor instead.
        """
        if len(self.node_ids) == 1:
            raise ValueError("cannot remove the last node")
        if node_id not in {n for _, n in self._table}:
            raise ValueError(f"node {node_id} not placed")
        kept: List[Tuple[float, int]] = []
        for hi, node in self._table:
            if node != node_id:
                kept.append((hi, node))
            elif kept:
                kept[-1] = (hi, kept[-1][1])  # predecessor absorbs upward
            # else: leading range; deleting it lets the successor's
            # range grow downward to 0.0 automatically
        # collapse adjacent ranges owned by the same node
        merged: List[Tuple[float, int]] = []
        for hi, node in kept:
            if merged and merged[-1][1] == node:
                merged[-1] = (hi, node)
            else:
                merged.append((hi, node))
        self._table = merged

    def owners(self, key: str, n_replicas: int = 1) -> List[int]:
        """Primary = the range holder; replicas walk the next ranges."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        nodes_available = len(self.node_ids)
        n_replicas = min(n_replicas, nodes_available)
        point = key_point(key)
        uppers = [hi for hi, _ in self._table]
        start = bisect.bisect_right(uppers, point)
        if start == len(self._table):  # point == 1.0 cannot happen; guard
            start = len(self._table) - 1
        owners: List[int] = []
        for i in range(len(self._table)):
            node = self._table[(start + i) % len(self._table)][1]
            if node not in owners:
                owners.append(node)
                if len(owners) == n_replicas:
                    break
        return owners


#: placement strategies by config name
_STRATEGIES: Dict[str, type] = {
    "hash": HashRing,
    "range": RangeIndexPlacement,
}


def make_placement(name: str, node_ids: Sequence[int], virtual_nodes: int = 64):
    """Build the placement strategy a cluster config names."""
    if name == "hash":
        return HashRing(node_ids, virtual_nodes=virtual_nodes)
    if name == "range":
        return RangeIndexPlacement(node_ids)
    raise ValueError(
        f"unknown placement {name!r}; known: {sorted(_STRATEGIES)}"
    )
