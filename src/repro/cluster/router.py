"""`ClusterRouter`: scatter/gather front door over N service nodes.

Each node is a full :class:`~repro.service.service.BitmapQueryService`
-- its own ``PimRuntime``/engine, admission controller, coalescing
scheduler, plan cache, stats -- and every node shares ONE deterministic
:class:`~repro.service.clock.EventLoop`.  The router owns placement
(consistent hashing or a range-index table, see
:mod:`repro.cluster.placement`) and forwards each user request to the
owning node(s):

- **reads** go to one replica, chosen round-robin per tenant; wide
  range queries over replicated tenants *scatter*: the bin list splits
  into contiguous chunks, one per replica, and the router gathers the
  partial popcounts (equality-encoded bins are disjoint, so the gather
  is a sum; kept bits OR together);
- **updates** fan in to every replica: the user-visible result is the
  primary's, and the copies sent to secondaries are ``internal`` --
  they skip node-level rate admission (the write already passed it on
  the primary) so replicas cannot diverge;
- **subscriptions** live on the primary only.

A 1-node cluster is a pure pass-through: the router forwards the very
request objects to the single node in submission order on the shared
loop, so results, per-tenant stats, and ``service.*`` telemetry are
byte-identical to a standalone ``BitmapQueryService`` -- the
equivalence that makes this refactor safe (and that the cluster tests
pin).

Node join/leave (:meth:`ClusterRouter.add_node` /
:meth:`ClusterRouter.remove_node`) rebalances deterministically: for
each tenant in registration order, the new owner set is computed from
placement, vector sets are copied from a surviving owner's host
shadows, and old owners deregister.  Membership changes require a
drained loop -- moving live work between nodes would fork the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro import telemetry
from repro.cluster.placement import make_placement
from repro.cluster.stats import ClusterStats
from repro.service.admission import TenantQuota
from repro.service.clock import EventLoop
from repro.service.engine import oracle_analytics, oracle_bits
from repro.service.request import (
    DeltaNotification,
    QueryRequest,
    QueryResult,
    RequestStatus,
    UpdateRequest,
)
from repro.service.service import BitmapQueryService, ServiceConfig

__all__ = ["ClusterConfig", "ClusterNode", "ClusterRouter"]

#: router-synthesised request ids (scatter parts, replica write copies)
#: start far above any plausible user id so streams never collide
_INTERNAL_ID_BASE = 1 << 40

# always-live cluster instruments; additive-only so the 1-node
# equivalence tests can strip the ``cluster.*`` prefix and compare the
# remaining ``service.*`` counters byte-for-byte
_C_ROUTED = telemetry.counter("cluster.requests.routed")
_C_SCATTERED = telemetry.counter("cluster.reads.scattered")
_C_GATHERS = telemetry.counter("cluster.gathers.completed")
_C_REPLICA_WRITES = telemetry.counter("cluster.replica.writes")
_C_MOVED = telemetry.counter("cluster.rebalance.vectors_moved")
_C_NODES = telemetry.gauge("cluster.nodes")


@dataclass(frozen=True)
class ClusterConfig:
    """Declarative description of one cluster."""

    #: initial node count (ids 0..n-1)
    n_nodes: int = 1
    #: per-node service configuration (shared; frozen)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: placement strategy: "hash" (consistent hashing) | "range"
    #: (spine-style range-index table)
    placement: str = "hash"
    #: virtual nodes per physical node on the hash ring
    virtual_nodes: int = 64
    #: replica count for tenants registered without an explicit one
    #: (Zipf-head tenants are typically registered with more)
    default_replicas: int = 1
    #: minimum *unique* bin fan-in for a range read over a replicated
    #: tenant to scatter across replicas; 0 disables scatter
    scatter_fanin: int = 8

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.default_replicas < 1:
            raise ValueError("default_replicas must be >= 1")
        if self.scatter_fanin < 0:
            raise ValueError("scatter_fanin must be non-negative")


@dataclass
class ClusterNode:
    """One cluster member: an id and its node-local service."""

    node_id: int
    service: BitmapQueryService


@dataclass
class _TenantPlacement:
    """Router-side placement record of one tenant."""

    quota: Optional[TenantQuota]
    replicas: int
    owners: List[int]  # owners[0] is the primary
    rr: int = 0  # read round-robin cursor


@dataclass
class _Gather:
    """In-flight scatter-gather state of one ranged read."""

    request: QueryRequest
    parts: Dict[int, Optional[QueryResult]]  # sub_id -> part, in chunk order
    remaining: int


class ClusterRouter:
    """Routes user requests across N shared-clock service nodes."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        engine_factory=None,
    ):
        self.config = config or ClusterConfig()
        #: one deterministic timeline shared by every node service
        self.loop = EventLoop()
        #: optional node_id -> ServiceEngine builder (benchmarks inject
        #: custom-geometry runtimes); default: each service builds its
        #: own engine from ``config.service.system``
        self._engine_factory = engine_factory
        self.nodes: Dict[int, ClusterNode] = {}
        self.retired: List[ClusterNode] = []
        self._next_node_id = 0
        self.stats = ClusterStats()
        for _ in range(self.config.n_nodes):
            self._spawn_node()
        self.placement = make_placement(
            self.config.placement,
            sorted(self.nodes),
            virtual_nodes=self.config.virtual_nodes,
        )
        self._tenants: Dict[str, _TenantPlacement] = {}
        #: user-facing terminal results, in completion order
        self.results: List[QueryResult] = []
        #: user-facing delta notifications, in delivery order
        self.notifications: List[DeltaNotification] = []
        self._gathers: Dict[int, _Gather] = {}  # sub_id -> gather
        self._internal_updates: Set[int] = set()
        self._next_internal_id = _INTERNAL_ID_BASE
        _C_NODES.set(len(self.nodes))

    # -- membership ----------------------------------------------------------

    def _spawn_node(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        engine = (
            self._engine_factory(node_id) if self._engine_factory else None
        )
        service = BitmapQueryService(
            self.config.service, engine=engine, loop=self.loop
        )
        service.on_result = (
            lambda result, nid=node_id: self._on_node_result(nid, result)
        )
        service.on_notification = self._on_node_notification
        self.nodes[node_id] = ClusterNode(node_id, service)
        self.stats.attach_node(node_id, service.stats)
        return node_id

    def _check_quiescent(self, action: str) -> None:
        if self.loop.pending:
            raise RuntimeError(
                f"cannot {action} with {self.loop.pending} events in "
                f"flight; drain the loop (run()) first"
            )

    def add_node(self) -> int:
        """Join one node and rebalance tenants onto it; returns its id."""
        self._check_quiescent("add a node")
        node_id = self._spawn_node()
        self.placement.add_node(node_id)
        self.stats.membership_changes += 1
        self._rebalance()
        _C_NODES.set(len(self.nodes))
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Decommission a node: move its tenants off, then retire it."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}; alive: {sorted(self.nodes)}")
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._check_quiescent("remove a node")
        self.placement.remove_node(node_id)
        self.stats.membership_changes += 1
        # rebalance BEFORE retiring: vector sets may need to be copied
        # off the leaving node (it can be a tenant's only owner)
        self._rebalance()
        self.retired.append(self.nodes.pop(node_id))
        _C_NODES.set(len(self.nodes))

    def _rebalance(self) -> int:
        """Re-derive every tenant's owner set; move vector sets to match.

        Deterministic: tenants are visited in registration order and the
        new owners are a pure function of placement state.  Standing
        queries on a deregistered owner are dropped (subscribers
        re-subscribe on the new primary).  Returns vectors moved.
        """
        moved = 0
        for tenant, tp in self._tenants.items():
            new_owners = self.placement.owners(tenant, tp.replicas)
            if new_owners == tp.owners:
                continue
            added = [n for n in new_owners if n not in tp.owners]
            removed = [n for n in tp.owners if n not in new_owners]
            if added:
                source = next(
                    (n for n in tp.owners if n in new_owners), tp.owners[0]
                )
                vectors = self.nodes[source].service.engine.tenant_vectors(
                    tenant
                )
                for node_id in added:
                    node = self.nodes[node_id].service
                    node.register_tenant(tenant, tp.quota)
                    node.load_vectors(tenant, vectors)
                    moved += len(vectors)
            for node_id in removed:
                self.nodes[node_id].service.deregister_tenant(tenant)
            tp.owners = new_owners
            tp.rr = 0  # reset the read cursor so replays stay deterministic
            self.stats.rebalanced_tenants += 1
        self.stats.moved_vectors += moved
        if moved:
            _C_MOVED.add(moved)
        return moved

    # -- tenant/data management ----------------------------------------------

    def register_tenant(
        self,
        tenant: str,
        quota: Optional[TenantQuota] = None,
        *,
        replicas: Optional[int] = None,
    ) -> List[int]:
        """Place a tenant on its owner nodes; returns the owner ids.

        ``replicas`` defaults to the config's ``default_replicas``;
        Zipf-head tenants are typically registered with more so reads
        fan out.  The replica count caps at the node count.
        """
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} already registered")
        n_replicas = (
            replicas if replicas is not None else self.config.default_replicas
        )
        if n_replicas < 1:
            raise ValueError("replicas must be >= 1")
        owners = self.placement.owners(tenant, n_replicas)
        for node_id in owners:
            self.nodes[node_id].service.register_tenant(tenant, quota)
        self._tenants[tenant] = _TenantPlacement(
            quota=quota, replicas=n_replicas, owners=list(owners)
        )
        return list(owners)

    @property
    def tenants(self) -> List[str]:
        return list(self._tenants)

    def tenant_owners(self, tenant: str) -> List[int]:
        """Current owner node ids of a tenant (primary first)."""
        return list(self._placement_of(tenant).owners)

    def _placement_of(self, tenant: str) -> _TenantPlacement:
        tp = self._tenants.get(tenant)
        if tp is None:
            raise KeyError(
                f"unknown tenant {tenant!r}; registered: {self.tenants}"
            )
        return tp

    def load_vectors(self, tenant: str, vectors: Dict[str, np.ndarray]) -> None:
        """Load named bit-vectors on every replica of the tenant."""
        for node_id in self._placement_of(tenant).owners:
            self.nodes[node_id].service.load_vectors(tenant, vectors)

    def load_bitmap_index(
        self, tenant: str, column: str, bin_indices: np.ndarray, n_bins: int
    ) -> None:
        """Load a FastBit bitmap index on every replica of the tenant."""
        for node_id in self._placement_of(tenant).owners:
            self.nodes[node_id].service.load_bitmap_index(
                tenant, column, bin_indices, n_bins
            )

    def load_bitslice_column(
        self, tenant: str, column: str, values: np.ndarray, n_bits: int
    ) -> None:
        """Load a bit-sliced numeric column on every replica.

        The planes are ordinary named vectors, so rebalance moves them
        with the rest of the tenant's dataset and analytics reads
        round-robin across replicas like any other read.
        """
        for node_id in self._placement_of(tenant).owners:
            self.nodes[node_id].service.load_bitslice_column(
                tenant, column, values, n_bits
            )

    # -- submission / routing ------------------------------------------------

    def submit_request(self, request) -> None:
        """Route one user request to the owning node(s).

        The same typed-request entrypoint as the node service, so the
        :class:`repro.service.api.ServiceClient` facade drives a router
        and a single node interchangeably.
        """
        tp = self._placement_of(request.tenant)
        self.stats.routed += 1
        _C_ROUTED.add()
        if request.kind == "update":
            self._route_update(request, tp)
        elif request.kind == "subscribe":
            # standing queries live on the primary only
            self.nodes[tp.owners[0]].service.submit_request(request)
        else:
            self._route_read(request, tp)

    def submit_many(self, requests) -> int:
        count = 0
        for request in requests:
            self.submit_request(request)
            count += 1
        return count

    def _claim_internal_id(self) -> int:
        request_id = self._next_internal_id
        self._next_internal_id += 1
        return request_id

    def _route_update(self, request, tp: _TenantPlacement) -> None:
        """Primary write + internal fan-in copies to the secondaries."""
        self.nodes[tp.owners[0]].service.submit_request(request)
        for node_id in tp.owners[1:]:
            copy = UpdateRequest(
                self._claim_internal_id(),
                request.tenant,
                request.vector,
                request.bits,
                request.arrival_s,
                internal=True,
            )
            self._internal_updates.add(copy.request_id)
            self.stats.replica_writes += 1
            _C_REPLICA_WRITES.add()
            self.nodes[node_id].service.submit_request(copy)

    def _route_read(self, request: QueryRequest, tp: _TenantPlacement) -> None:
        unique = list(dict.fromkeys(request.vectors))
        if (
            request.kind == "range"
            and request.op == "or"
            and len(tp.owners) > 1
            and self.config.scatter_fanin
            and len(unique) >= self.config.scatter_fanin
        ):
            self._scatter_read(request, tp, unique)
            return
        # round-robin across replicas, per tenant: deterministic cursor
        owner = tp.owners[tp.rr % len(tp.owners)]
        tp.rr += 1
        self.nodes[owner].service.submit_request(request)

    def _scatter_read(
        self, request: QueryRequest, tp: _TenantPlacement, unique: List[str]
    ) -> None:
        """Split a wide range OR into per-replica partial sub-queries.

        Equality-encoded bins are disjoint, so the gathered popcount is
        the sum of the partial popcounts (kept bits OR together).  Each
        part rides its replica's normal admission -- a part rejection
        rejects the whole gathered read.
        """
        n_parts = min(len(tp.owners), len(unique))
        base, extra = divmod(len(unique), n_parts)
        gather = _Gather(request=request, parts={}, remaining=n_parts)
        chunks: List[tuple] = []
        start = 0
        for i in range(n_parts):
            size = base + (1 if i < extra else 0)
            chunk = tuple(unique[start : start + size])
            start += size
            if len(chunk) == 1:  # single-bin part: OR with itself
                chunk = chunk * 2
            chunks.append(chunk)
        self.stats.scattered += 1
        _C_SCATTERED.add()
        for i, chunk in enumerate(chunks):
            part = QueryRequest(
                self._claim_internal_id(),
                request.tenant,
                "or",
                chunk,
                request.arrival_s,
                kind="range",
            )
            gather.parts[part.request_id] = None
            self._gathers[part.request_id] = gather
            self.nodes[tp.owners[i]].service.submit_request(part)

    # -- node callbacks ------------------------------------------------------

    def _on_node_result(self, node_id: int, result: QueryResult) -> None:
        request_id = result.request.request_id
        gather = self._gathers.get(request_id)
        if gather is not None:
            gather.parts[request_id] = result
            gather.remaining -= 1
            if gather.remaining == 0:
                self._finish_gather(gather)
            return
        if request_id in self._internal_updates:
            # replica fan-in copy landed; the user already has the
            # primary's result
            self._internal_updates.discard(request_id)
            return
        self._record_user_result(result)

    def _finish_gather(self, gather: _Gather) -> None:
        parts = list(gather.parts.values())  # chunk order
        for sub_id in gather.parts:
            del self._gathers[sub_id]
        rejected = [
            p for p in parts if p.status is not RequestStatus.COMPLETED
        ]
        if rejected:
            final = QueryResult(
                request=gather.request,
                status=RequestStatus.REJECTED,
                completed_s=max(p.completed_s for p in parts),
                reject_reason=(
                    f"scatter part rejected: {rejected[0].reject_reason}"
                ),
            )
        else:
            bits = None
            if all(p.bits is not None for p in parts):
                bits = parts[0].bits.copy()
                for p in parts[1:]:
                    np.bitwise_or(bits, p.bits, out=bits)
            final = QueryResult(
                request=gather.request,
                status=RequestStatus.COMPLETED,
                # disjoint bins: the gathered popcount is the sum
                popcount=sum(p.popcount for p in parts),
                dispatched_s=min(p.dispatched_s for p in parts),
                completed_s=max(p.completed_s for p in parts),
                service_s=sum(p.service_s for p in parts),
                energy_j=sum(p.energy_j for p in parts),
                batch_id=-1,  # spans batches on several nodes
                bits=bits,
            )
        self.stats.gathers += 1
        _C_GATHERS.add()
        self._record_user_result(final)

    def _record_user_result(self, result: QueryResult) -> None:
        self.results.append(result)
        self.stats.record_result(result)

    def _on_node_notification(self, note: DeltaNotification) -> None:
        # subscriptions are primary-only and never internal: every
        # delivered notification is user-facing
        self.notifications.append(note)
        self.stats.notifications += 1

    # -- running -------------------------------------------------------------

    def event_budget(self) -> int:
        """Livelock guard for the shared loop: summed node budgets."""
        return sum(n.service.event_budget() for n in self.nodes.values()) + 64

    def run(self, max_events: Optional[int] = None) -> ClusterStats:
        """Drain the shared loop, finalize every node; returns stats."""
        self.loop.run(max_events=max_events or self.event_budget())
        for node in self.nodes.values():
            node.service.finalize()
        return self.stats

    # -- verification --------------------------------------------------------

    def verify_results(self) -> int:
        """Check every completed user *read* against the numpy oracle.

        The oracle runs on the tenant's primary engine (replicas hold
        identical shadows by construction); gathered range results
        verify against the original, un-split request.  Same final-state
        caveat as ``BitmapQueryService.verify_results``.
        """
        checked = 0
        for result in self.results:
            if result.status is not RequestStatus.COMPLETED:
                continue
            if result.request.kind in ("update", "subscribe"):
                continue
            primary = self._placement_of(result.request.tenant).owners[0]
            if result.request.kind == "analytics":
                mask, value, groups = oracle_analytics(
                    self.nodes[primary].service.engine,
                    result.request.tenant,
                    result.request.filters,
                    result.request.aggregate,
                )
                if (
                    result.popcount != int(mask.sum())
                    or result.value != value
                    or result.groups != groups
                ):
                    raise AssertionError(
                        f"analytics request {result.request.request_id}: "
                        f"got (popcount={result.popcount}, "
                        f"value={result.value}, groups={result.groups}), "
                        f"oracle ({int(mask.sum())}, {value}, {groups})"
                    )
                checked += 1
                continue
            expected = oracle_bits(
                self.nodes[primary].service.engine,
                result.request.tenant,
                result.request.op,
                result.request.vectors,
            )
            if result.popcount != int(expected.sum()):
                raise AssertionError(
                    f"request {result.request.request_id}: popcount "
                    f"{result.popcount} != oracle {int(expected.sum())}"
                )
            if result.bits is not None and not np.array_equal(
                result.bits, expected
            ):
                raise AssertionError(
                    f"request {result.request.request_id}: bits differ "
                    f"from the numpy oracle"
                )
            checked += 1
        return checked

    def verify_replicas(self) -> int:
        """Assert every replica holds byte-identical host shadows.

        The fan-in write path's invariant; returns vectors compared.
        """
        checked = 0
        for tenant, tp in self._tenants.items():
            primary = self.nodes[tp.owners[0]].service.engine
            reference = primary.tenant_vectors(tenant)
            for node_id in tp.owners[1:]:
                replica = self.nodes[node_id].service.engine
                mirror = replica.tenant_vectors(tenant)
                if list(mirror) != list(reference):
                    raise AssertionError(
                        f"tenant {tenant!r}: replica on node {node_id} "
                        f"holds different vectors than the primary"
                    )
                for name, bits in reference.items():
                    if not np.array_equal(mirror[name], bits):
                        raise AssertionError(
                            f"tenant {tenant!r} vector {name!r}: replica "
                            f"on node {node_id} diverged from the primary"
                        )
                    checked += 1
        return checked
