"""ASCII rendering of transient waveforms.

The paper shows HSPICE waveform screenshots (Figs. 6-7); offline we
render the behavioural solver's traces as terminal plots so examples and
benchmark output can *show* the latch holding or the CSA resolving, not
just assert it.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.transient import Waveform

_LEVELS = " .:-=+*#%@"


def render_waveform(
    wave: Waveform,
    width: int = 64,
    height: int = 8,
    label: str = "",
    v_max: float = None,
) -> str:
    """Render one analog waveform as an ASCII intensity plot."""
    if width < 2 or height < 2:
        raise ValueError("plot must be at least 2x2")
    if wave.values.size == 0:
        raise ValueError("empty waveform")
    times = np.linspace(wave.times[0], wave.times[-1], width)
    samples = np.interp(times, wave.times, wave.values)
    top = v_max if v_max is not None else max(float(samples.max()), 1e-12)
    levels = np.clip(samples / top, 0.0, 1.0)
    rows = []
    for r in range(height, 0, -1):
        hi = r / height
        lo = (r - 1) / height
        line = "".join(
            "#" if v >= hi else ("." if v > lo else " ") for v in levels
        )
        rows.append(f"{hi * top:7.2f} |{line}|")
    t_span = (wave.times[-1] - wave.times[0]) * 1e9
    footer = f"{'':7s} +{'-' * width}+  {t_span:.1f} ns"
    header = f"{label}" if label else ""
    return "\n".join(filter(None, [header] + rows + [footer]))


def render_digital(wave: Waveform, threshold: float, width: int = 64) -> str:
    """Render a waveform as a one-line high/low digital trace."""
    if width < 2:
        raise ValueError("width must be >= 2")
    times = np.linspace(wave.times[0], wave.times[-1], width)
    samples = np.interp(times, wave.times, wave.values)
    return "".join("^" if v >= threshold else "_" for v in samples)


def render_traces(traces: dict, threshold: float, width: int = 64) -> str:
    """Render several named waveforms as aligned digital traces."""
    if not traces:
        raise ValueError("no traces to render")
    name_width = max(len(str(k)) for k in traces)
    lines = []
    for name, wave in traces.items():
        digital = render_digital(wave, threshold, width)
        lines.append(f"{str(name):>{name_width}s} {digital}")
    return "\n".join(lines)
