"""Corner-sweep validation of the CSA circuit (the paper's Fig. 6 claim).

"The circuit is tested with a large range of cell resistances from the
recent PCM, STT-MRAM, and ReRAM prototypes" -- we reproduce that test:
every operation is simulated at the variation corners and over Monte-Carlo
samples of the technologies' resistance distributions, and the resolved
digital outputs are checked against the boolean truth tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.csa_sim import CSAConfig, CSATransientSim
from repro.nvm.margin import MarginAnalysis
from repro.nvm.technology import NVMTechnology
from repro.nvm.variation import VariationModel


@dataclass
class CornerReport:
    """Result of a corner/Monte-Carlo validation run."""

    technology: str
    n_cases: int = 0
    n_pass: int = 0
    failures: list = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return self.n_cases > 0 and self.n_pass == self.n_cases

    def record(self, op: str, inputs, expected: int, got: int) -> None:
        self.n_cases += 1
        if expected == got:
            self.n_pass += 1
        else:
            self.failures.append(
                {"op": op, "inputs": inputs, "expected": expected, "got": got}
            )


def _corner_resistances(technology: NVMTechnology, variation: VariationModel, bit: int):
    """Nominal plus both k-sigma corners for one stored bit."""
    nominal = technology.r_low if bit else technology.r_high
    state = "low" if bit else "high"
    return [
        nominal,
        variation.lower_corner(nominal, state),
        variation.upper_corner(nominal, state),
    ]


def validate_csa_corners(
    technology: NVMTechnology,
    config: CSAConfig = None,
    monte_carlo: int = 0,
    or_rows: int = 2,
    rng: np.random.Generator = None,
) -> CornerReport:
    """Exhaustive corner test of READ / OR / AND / XOR / INV.

    For each operation every input bit pattern is applied with every
    combination of corner resistances; optionally ``monte_carlo`` extra
    random resistance samples per pattern are run too.
    """
    sim = CSATransientSim(technology, config)
    variation = VariationModel.for_technology(technology)
    margins = MarginAnalysis(technology, variation)
    report = CornerReport(technology=technology.name)
    rng = rng or np.random.default_rng(2016)

    def samples_for(bit, n):
        state = "low" if bit else "high"
        nominal = technology.r_low if bit else technology.r_high
        return variation.sample_state(nominal, state, rng, size=n)

    # READ and INV over both bits, all corners.
    for bit in (0, 1):
        for r in _corner_resistances(technology, variation, bit):
            report.record("read", (bit,), bit, sim.read(r).bit)
            report.record("inv", (bit,), 1 - bit, sim.invert(r).bit)
        for r in samples_for(bit, monte_carlo):
            report.record("read-mc", (bit,), bit, sim.read(float(r)).bit)

    # 2-input OR / AND / XOR over all patterns, corner cross-products.
    for a in (0, 1):
        for b in (0, 1):
            for ra in _corner_resistances(technology, variation, a):
                for rb in _corner_resistances(technology, variation, b):
                    report.record("or", (a, b), a | b, sim.bitwise_or([ra, rb]).bit)
                    if margins.and_feasible(2):
                        report.record(
                            "and", (a, b), a & b, sim.bitwise_and([ra, rb]).bit
                        )
                    report.record("xor", (a, b), a ^ b, sim.bitwise_xor(ra, rb).bit)

    # Multi-row OR worst cases at the technology's supported row count.
    n = min(or_rows, margins.max_or_rows())
    if n >= 2:
        # all zeros -> 0, single one in the worst slot -> 1
        zeros = [
            variation.upper_corner(technology.r_high, "high") for _ in range(n)
        ]
        report.record("or-n", ("all0", n), 0, sim.bitwise_or(zeros).bit)
        weak = list(zeros)
        weak[0] = variation.upper_corner(technology.r_low, "low")
        report.record("or-n", ("one1", n), 1, sim.bitwise_or(weak).bit)

    return report
