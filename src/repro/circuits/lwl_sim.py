"""Transient model of the modified local-wordline driver (paper Fig. 7).

The conventional LWL driver is a chain of inverters amplifying the decoded
address.  Pinatubo adds two transistors per driver:

- a *feedback* transistor that couples the signal between the inverters
  back to the input, forming a latch, so a selected wordline stays at VDD
  after its address pulse ends;
- a *reset* transistor that forces the driver input to ground when the
  global RESET is asserted, clearing every latch before a new multi-row
  activation sequence.

The model drives each wordline node as an RC load charged/discharged by
behavioural inverter stages and reproduces the Fig. 7 waveform: RESET
pulse, per-row decode pulses DEC_n, and WL_n latching high until the next
RESET.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.transient import RCNode, Switch, TransientSolver, Waveform


@dataclass(frozen=True)
class LWLConfig:
    """Electrical configuration of the behavioural LWL driver."""

    vdd: float = 1.5  # V (wordline drivers run at boosted voltage)
    c_wordline: float = 50e-15  # F, wordline load
    r_driver: float = 5e3  # ohm, driver pull-up/pull-down strength
    r_latch: float = 20e3  # ohm, weaker latch feedback path
    dt: float = 2e-11  # s


@dataclass
class LWLTrace:
    """Waveforms of one multi-row activation sequence."""

    reset: Waveform
    decode: dict  # row -> decode-pulse Waveform (logical 0/vdd)
    wordline: dict  # row -> WL voltage Waveform
    latched_rows: tuple  # rows left high at the end


class LWLDriverSim:
    """Simulates a group of LWL drivers through an activation sequence."""

    def __init__(self, n_rows: int, config: LWLConfig = None):
        if n_rows < 1:
            raise ValueError("n_rows must be positive")
        self.n_rows = n_rows
        self.config = config or LWLConfig()

    def run_sequence(
        self,
        activations,
        pulse_width: float = 0.5e-9,
        gap: float = 0.5e-9,
        reset_width: float = 0.5e-9,
        tail: float = 2e-9,
    ) -> LWLTrace:
        """Simulate: RESET, then one decode pulse per row in ``activations``.

        Returns full waveforms; ``latched_rows`` must equal ``activations``
        for a correct latch (checked by the tests and the Fig. 7 bench).
        """
        activations = list(activations)
        for row in activations:
            if not 0 <= row < self.n_rows:
                raise ValueError(f"row {row} out of range")
        if len(set(activations)) != len(activations):
            raise ValueError("duplicate activations in one sequence")

        cfg = self.config
        # Timeline: [0, reset_width) RESET; then per-activation windows.
        pulse_starts = {
            row: reset_width + gap + i * (pulse_width + gap)
            for i, row in enumerate(activations)
        }
        t_end = (
            reset_width
            + gap
            + len(activations) * (pulse_width + gap)
            + tail
        )

        solver = TransientSolver()
        interesting = sorted(set(activations) | ({0, self.n_rows - 1} & set(range(self.n_rows))))
        for row in interesting:
            solver.add_node(RCNode(f"wl_{row}", cfg.c_wordline))

        for row in interesting:
            node = f"wl_{row}"
            # RESET transistor: pulls the driver input (hence WL) to ground.
            solver.add_resistor_to_rail(
                node, 0.0, cfg.r_driver, Switch.window(0.0, reset_width)
            )
            if row in pulse_starts:
                t_on = pulse_starts[row]
                # Decode pulse: strong pull-up while the address is decoded.
                solver.add_resistor_to_rail(
                    node, cfg.vdd, cfg.r_driver, Switch.window(t_on, t_on + pulse_width)
                )
                # Latch feedback: once the WL has risen past threshold the
                # feedback transistor holds it at VDD.  Behaviourally: a
                # weaker pull-up active from the pulse onward, gated by the
                # node itself having charged (positive feedback).
                threshold = cfg.vdd / 2

                def latch_current(time, volts, node=node, t_on=t_on):
                    if time < t_on:
                        return 0.0
                    v = volts[node]
                    if v < threshold:
                        return 0.0
                    return (cfg.vdd - v) / cfg.r_latch

                solver.add_current_source(node, latch_current)
            else:
                # Unselected rows keep a weak pull-down (decoder default).
                solver.add_resistor_to_rail(
                    node, 0.0, cfg.r_latch * 4, Switch.after(reset_width)
                )

        waves = solver.run(t_end, dt=cfg.dt)

        times = waves[f"wl_{interesting[0]}"].times
        reset_wave = Waveform(
            times, np.where(times < reset_width, cfg.vdd, 0.0)
        )
        decode_waves = {}
        for row in activations:
            t_on = pulse_starts[row]
            decode_waves[row] = Waveform(
                times,
                np.where((times >= t_on) & (times < t_on + pulse_width), cfg.vdd, 0.0),
            )
        wordline_waves = {row: waves[f"wl_{row}"] for row in interesting}
        latched = tuple(
            row
            for row in interesting
            if wordline_waves[row].final > cfg.vdd * 0.8
        )
        return LWLTrace(
            reset=reset_wave,
            decode=decode_waves,
            wordline=wordline_waves,
            latched_rows=latched,
        )
