"""Minimal forward-Euler transient solver for switched RC networks.

This is deliberately not a general SPICE: it solves networks of

- capacitive nodes (:class:`RCNode`),
- resistive branches between nodes or to fixed rails, each optionally
  gated by a time-dependent :class:`Switch`,
- current sources into nodes, optionally time-dependent,

with explicit forward-Euler integration.  That covers the two circuits the
paper simulates (a current-sampling SA and a wordline driver latch), whose
dynamics are first-order RC charging plus regenerative feedback, while
staying small enough to test exhaustively.

Stability note: forward Euler requires ``dt`` well below the smallest
``R*C`` in the network; :meth:`TransientSolver.run` auto-selects a safe
step from the network constants unless one is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass
class Waveform:
    """A sampled signal: times (s) and values (V or logical levels)."""

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have the same shape")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")

    @property
    def final(self) -> float:
        """Last sampled value."""
        if not self.values.size:
            raise ValueError("empty waveform")
        return float(self.values[-1])

    def at(self, t: float) -> float:
        """Linearly-interpolated value at time ``t``."""
        return float(np.interp(t, self.times, self.values))

    def crossing_time(self, level: float, rising: bool = True) -> Optional[float]:
        """First time the waveform crosses ``level`` in the given direction.

        Returns None if it never crosses.
        """
        v = self.values
        if rising:
            hits = np.nonzero((v[:-1] < level) & (v[1:] >= level))[0]
        else:
            hits = np.nonzero((v[:-1] > level) & (v[1:] <= level))[0]
        if hits.size == 0:
            return None
        i = int(hits[0])
        # linear interpolation within the step
        t0, t1 = self.times[i], self.times[i + 1]
        v0, v1 = v[i], v[i + 1]
        if v1 == v0:
            return float(t0)
        return float(t0 + (level - v0) * (t1 - t0) / (v1 - v0))

    def settled(self, level: float, tolerance: float, tail_fraction: float = 0.1) -> bool:
        """True if the last ``tail_fraction`` of samples sit within
        ``tolerance`` of ``level``."""
        n_tail = max(1, int(self.values.size * tail_fraction))
        tail = self.values[-n_tail:]
        return bool(np.all(np.abs(tail - level) <= tolerance))


@dataclass
class RCNode:
    """A capacitive circuit node."""

    name: str
    capacitance: float  # F
    v_init: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError("node capacitance must be positive")


@dataclass
class Switch:
    """A time-gated connection (ideal switch in series with a branch)."""

    is_closed: Callable[[float], bool]

    @classmethod
    def always(cls) -> "Switch":
        return cls(lambda t: True)

    @classmethod
    def window(cls, t_on: float, t_off: float) -> "Switch":
        """Closed during [t_on, t_off)."""
        if t_off <= t_on:
            raise ValueError("switch window must have t_off > t_on")
        return cls(lambda t: t_on <= t < t_off)

    @classmethod
    def after(cls, t_on: float) -> "Switch":
        return cls(lambda t: t >= t_on)


@dataclass
class _Branch:
    node_a: str
    node_b: Optional[str]  # None => fixed rail
    rail_voltage: float
    resistance: float
    switch: Switch


@dataclass
class _CurrentSource:
    node: str
    current: Callable[[float, dict], float]  # (t, node_voltages) -> A


class TransientSolver:
    """Forward-Euler solver over a set of RC nodes and switched branches."""

    def __init__(self) -> None:
        self._nodes: dict = {}
        self._branches: list = []
        self._sources: list = []

    # -- network construction -------------------------------------------------

    def add_node(self, node: RCNode) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node

    def add_resistor_to_rail(
        self,
        node: str,
        rail_voltage: float,
        resistance: float,
        switch: Switch = None,
    ) -> None:
        """Resistor from ``node`` to a fixed-voltage rail."""
        self._check_node(node)
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        self._branches.append(
            _Branch(node, None, rail_voltage, resistance, switch or Switch.always())
        )

    def add_resistor(
        self, node_a: str, node_b: str, resistance: float, switch: Switch = None
    ) -> None:
        """Resistor between two capacitive nodes."""
        self._check_node(node_a)
        self._check_node(node_b)
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        self._branches.append(
            _Branch(node_a, node_b, 0.0, resistance, switch or Switch.always())
        )

    def add_current_source(
        self, node: str, current: Callable[[float, dict], float]
    ) -> None:
        """Current source injecting into ``node`` (positive = charging)."""
        self._check_node(node)
        self._sources.append(_CurrentSource(node, current))

    def _check_node(self, name: str) -> None:
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")

    # -- integration -----------------------------------------------------------

    def _auto_dt(self) -> float:
        """Pick a step well below the fastest branch time constant."""
        tau_min = np.inf
        for br in self._branches:
            c_a = self._nodes[br.node_a].capacitance
            tau = br.resistance * c_a
            if br.node_b is not None:
                c_b = self._nodes[br.node_b].capacitance
                tau = br.resistance * min(c_a, c_b)
            tau_min = min(tau_min, tau)
        if not np.isfinite(tau_min):
            tau_min = 1e-9
        return tau_min / 20.0

    def run(self, t_end: float, dt: float = None) -> dict:
        """Integrate from t=0 to ``t_end``; returns {node: Waveform}."""
        if t_end <= 0:
            raise ValueError("t_end must be positive")
        if dt is None:
            dt = self._auto_dt()
        if dt <= 0:
            raise ValueError("dt must be positive")
        n_steps = max(2, int(np.ceil(t_end / dt)) + 1)
        times = np.linspace(0.0, t_end, n_steps)
        dt = times[1] - times[0]

        names = list(self._nodes)
        volts = {n: self._nodes[n].v_init for n in names}
        history = {n: np.empty(n_steps) for n in names}
        for i, t in enumerate(times):
            for n in names:
                history[n][i] = volts[n]
            if i == n_steps - 1:
                break
            currents = {n: 0.0 for n in names}
            for br in self._branches:
                if not br.switch.is_closed(t):
                    continue
                v_a = volts[br.node_a]
                v_b = br.rail_voltage if br.node_b is None else volts[br.node_b]
                i_branch = (v_b - v_a) / br.resistance
                currents[br.node_a] += i_branch
                if br.node_b is not None:
                    currents[br.node_b] -= i_branch
            for src in self._sources:
                currents[src.node] += src.current(t, volts)
            for n in names:
                volts[n] += dt * currents[n] / self._nodes[n].capacitance

        return {n: Waveform(times, history[n]) for n in names}
