"""Behavioural transient circuit simulation (the repo's HSPICE substitute).

The paper validates its two circuit modifications with HSPICE (Fig. 6: the
modified CSA computing OR/AND/XOR; Fig. 7: the LWL driver latching multiple
wordlines).  We have no SPICE or PDK offline, so this package implements a
small forward-Euler transient solver for switched RC networks
(:mod:`repro.circuits.transient`) plus behavioural netlists of the two
circuits (:mod:`repro.circuits.csa_sim`, :mod:`repro.circuits.lwl_sim`) and
a corner-sweep validator (:mod:`repro.circuits.validate`).

What is preserved from the paper's experiment: waveform *shape* (sampling,
amplification, regeneration phases; latch-and-hold wordlines), functional
correctness of every operation over the technologies' resistance corners,
and the timing relationship between phases.  What is not: absolute analog
accuracy of a 65 nm PDK.
"""

from repro.circuits.transient import Waveform, TransientSolver, RCNode, Switch
from repro.circuits.csa_sim import CSATransientSim, CSAConfig, SenseTrace
from repro.circuits.lwl_sim import LWLDriverSim, LWLTrace
from repro.circuits.validate import validate_csa_corners, CornerReport
from repro.circuits.render import render_waveform, render_digital, render_traces

__all__ = [
    "render_waveform",
    "render_digital",
    "render_traces",
    "Waveform",
    "TransientSolver",
    "RCNode",
    "Switch",
    "CSATransientSim",
    "CSAConfig",
    "SenseTrace",
    "LWLDriverSim",
    "LWLTrace",
    "validate_csa_corners",
    "CornerReport",
]
