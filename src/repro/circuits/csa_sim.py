"""Transient model of the modified current sense amplifier (paper Fig. 6).

The CSA (Chang et al., JSSC 2013) senses in three phases:

1. *current sampling*: the clamped bitline current and the selected
   reference current each charge a sampling capacitor (Cs / Cs-ref);
2. *current-ratio amplification*: a cross-coupled pair regeneratively
   amplifies the voltage difference between the two capacitors;
3. *2nd-stage amplification*: a second stage drives the digital output
   rail-to-rail.

Pinatubo's modifications, all modelled here:

- selectable references (READ / OR(n) / AND) that change the reference
  branch current;
- a hold capacitor ``Ch`` plus a pass-transistor XOR pair for the
  two-micro-step XOR;
- the differential (complement) output for INV.

The solver is the behavioural :class:`repro.circuits.transient.TransientSolver`;
currents saturate near the rails via ``(1 - V/VDD)`` factors, which is the
standard velocity-saturation-free behavioural MOS approximation.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.circuits.transient import RCNode, TransientSolver, Waveform
from repro.nvm.sense_amp import ReferenceScheme, SenseMode
from repro.nvm.technology import NVMTechnology


@dataclass(frozen=True)
class CSAConfig:
    """Electrical configuration of the behavioural CSA."""

    vdd: float = 1.2  # V
    c_sample: float = 20e-15  # F, sampling caps (Cs and reference Cs)
    c_hold: float = 20e-15  # F, XOR hold cap Ch
    c_out: float = 10e-15  # F, output node
    t_sample: float = 3e-9  # s, phase 1
    t_amplify: float = 2e-9  # s, phase 2
    t_output: float = 2e-9  # s, phase 3
    gm_regeneration: float = 40e-6  # S, cross-coupled pair transconductance
    gm_output: float = 80e-6  # S, 2nd stage drive
    dt: float = 2e-11  # s, integration step

    @property
    def t_total(self) -> float:
        return self.t_sample + self.t_amplify + self.t_output


@dataclass
class SenseTrace:
    """Waveforms and digital outcome of one CSA sensing operation."""

    mode: SenseMode
    v_cell: Waveform  # sampling cap on the cell side (the paper's V(Cs))
    v_ref: Waveform  # sampling cap on the reference side
    v_out: Waveform  # digital output node
    bit: int  # resolved digital output
    r_bitline: float
    r_reference: float


class CSATransientSim:
    """Runs transient sensing operations for one NVM technology."""

    def __init__(self, technology: NVMTechnology, config: CSAConfig = None):
        self.technology = technology
        self.config = config or CSAConfig()
        self.references = ReferenceScheme(technology)

    # -- single sensing pass ---------------------------------------------------

    def _sense_pass(self, r_bitline: float, r_reference: float) -> SenseTrace:
        """One full 3-phase sensing pass; output high iff I_cell > I_ref."""
        if r_bitline <= 0 or r_reference <= 0:
            raise ValueError("resistances must be positive")
        cfg = self.config
        t = self.technology
        i_cell = t.read_voltage / r_bitline
        i_ref = t.read_voltage / r_reference

        solver = TransientSolver()
        solver.add_node(RCNode("v_cell", cfg.c_sample))
        solver.add_node(RCNode("v_ref", cfg.c_sample))
        solver.add_node(RCNode("v_out", cfg.c_out))

        def saturating(i_const, node):
            """Constant charging current with rail saturation."""

            def current(time, volts):
                if time >= cfg.t_sample:
                    return 0.0
                return i_const * max(0.0, 1.0 - volts[node] / cfg.vdd)

            return current

        solver.add_current_source("v_cell", saturating(i_cell, "v_cell"))
        solver.add_current_source("v_ref", saturating(i_ref, "v_ref"))

        # Phase 2: cross-coupled regeneration between the two caps.
        t_amp_on = cfg.t_sample
        gm = cfg.gm_regeneration

        def regen(sign, node):
            def current(time, volts):
                if time < t_amp_on:
                    return 0.0
                diff = volts["v_cell"] - volts["v_ref"]
                drive = sign * gm * diff
                headroom = (
                    1.0 - volts[node] / cfg.vdd if drive > 0 else volts[node] / cfg.vdd
                )
                return drive * max(0.0, headroom)

            return current

        solver.add_current_source("v_cell", regen(+1.0, "v_cell"))
        solver.add_current_source("v_ref", regen(-1.0, "v_ref"))

        # Phase 3: second stage drives the output from the resolved latch.
        t_out_on = cfg.t_sample + cfg.t_amplify

        def output_stage(time, volts):
            if time < t_out_on:
                return 0.0
            diff = volts["v_cell"] - volts["v_ref"]
            drive = cfg.gm_output * (1.0 if diff > 0 else -1.0)
            headroom = (
                1.0 - volts["v_out"] / cfg.vdd if drive > 0 else volts["v_out"] / cfg.vdd
            )
            return drive * max(0.0, headroom)

        solver.add_current_source("v_out", output_stage)

        waves = solver.run(cfg.t_total, dt=cfg.dt)
        bit = 1 if waves["v_out"].final > cfg.vdd / 2 else 0
        return SenseTrace(
            mode=SenseMode.READ,
            v_cell=waves["v_cell"],
            v_ref=waves["v_ref"],
            v_out=waves["v_out"],
            bit=bit,
            r_bitline=r_bitline,
            r_reference=r_reference,
        )

    # -- public operations ---------------------------------------------------

    def read(self, r_cell: float) -> SenseTrace:
        """Normal read against Rref-read."""
        trace = self._sense_pass(r_cell, self.references.read_reference())
        trace.mode = SenseMode.READ
        return trace

    def bitwise_or(self, cell_resistances) -> SenseTrace:
        """n-row OR: parallel bitline vs Rref-or(n)."""
        rs = list(cell_resistances)
        if len(rs) < 2:
            raise ValueError("OR needs at least two open cells")
        r_parallel = 1.0 / sum(1.0 / r for r in rs)
        trace = self._sense_pass(r_parallel, self.references.or_reference(len(rs)))
        trace.mode = SenseMode.OR
        return trace

    def bitwise_and(self, cell_resistances) -> SenseTrace:
        """2-row AND: parallel bitline vs Rref-and."""
        rs = list(cell_resistances)
        if len(rs) != 2:
            raise ValueError("AND needs exactly two open cells")
        r_parallel = 1.0 / sum(1.0 / r for r in rs)
        trace = self._sense_pass(r_parallel, self.references.and_reference())
        trace.mode = SenseMode.AND
        return trace

    def bitwise_xor(self, r_cell_a: float, r_cell_b: float) -> "XorTrace":
        """Two-micro-step XOR using the hold capacitor and pass-gate pair.

        Step 1 reads operand A and stores the latch output on Ch; step 2
        reads operand B into the latch.  The add-on pass-transistor pair
        then pulls the XOR output high iff exactly one of the two stored
        levels is high.
        """
        cfg = self.config
        first = self.read(r_cell_a)
        second = self.read(r_cell_b)
        v_hold = first.v_out.final  # sampled onto Ch between the steps
        v_latch = second.v_out.final

        # Pass-gate XOR: conducting when exactly one input is high.
        solver = TransientSolver()
        solver.add_node(RCNode("v_xor", cfg.c_out))

        def xor_stage(time, volts):
            a = v_hold / cfg.vdd
            b = v_latch / cfg.vdd
            conduction = a * (1.0 - b) + (1.0 - a) * b  # in [0, 1]
            i_up = cfg.gm_output * conduction * max(
                0.0, 1.0 - volts["v_xor"] / cfg.vdd
            )
            i_down = cfg.gm_output * (1.0 - conduction) * (volts["v_xor"] / cfg.vdd)
            return i_up - i_down

        solver.add_current_source("v_xor", xor_stage)
        waves = solver.run(cfg.t_output, dt=cfg.dt)
        bit = 1 if waves["v_xor"].final > cfg.vdd / 2 else 0
        return XorTrace(first=first, second=second, v_xor=waves["v_xor"], bit=bit)

    def invert(self, r_cell: float) -> SenseTrace:
        """INV: the latch's differential output (complement of a read)."""
        trace = self.read(r_cell)
        # The differential node is the reference-side latch output; at the
        # behavioural level that is the complement of v_out.
        inv_values = self.config.vdd - trace.v_out.values
        trace = SenseTrace(
            mode=SenseMode.INV,
            v_cell=trace.v_cell,
            v_ref=trace.v_ref,
            v_out=Waveform(trace.v_out.times, inv_values),
            bit=1 - trace.bit,
            r_bitline=trace.r_bitline,
            r_reference=trace.r_reference,
        )
        return trace

    # -- Fig. 6 sequence -------------------------------------------------------

    def figure6_sequence(self, pattern=None) -> list:
        """The OR / AND / XOR demonstration sequence of paper Fig. 6.

        ``pattern`` is a list of (mode, bit_a, bit_b) tuples; the default is
        the paper's five input pairs per operation.  Returns a list of
        (mode, bit_a, bit_b, resolved_bit) with full traces attached.
        """
        t = self.technology
        if pattern is None:
            pairs = [(1, 0), (1, 1), (0, 0), (0, 1), (1, 0)]
            pattern = (
                [(SenseMode.OR,) + p for p in pairs]
                + [(SenseMode.AND,) + p for p in pairs]
                + [(SenseMode.XOR,) + p for p in pairs]
            )

        def r_of(bit):
            return t.r_low if bit else t.r_high

        results = []
        for mode, a, b in pattern:
            if mode is SenseMode.OR:
                trace = self.bitwise_or([r_of(a), r_of(b)])
                bit = trace.bit
            elif mode is SenseMode.AND:
                trace = self.bitwise_and([r_of(a), r_of(b)])
                bit = trace.bit
            elif mode is SenseMode.XOR:
                trace = self.bitwise_xor(r_of(a), r_of(b))
                bit = trace.bit
            else:
                raise ValueError(f"figure 6 covers OR/AND/XOR, not {mode}")
            results.append(
                {"mode": mode, "a": a, "b": b, "bit": bit, "trace": trace}
            )
        return results


@dataclass
class XorTrace:
    """Outcome of the two-micro-step XOR."""

    first: SenseTrace
    second: SenseTrace
    v_xor: Waveform
    bit: int
