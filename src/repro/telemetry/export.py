"""Trace export: Chrome trace-event JSON and flat aggregates.

``chrome_trace`` renders the recorded span forest in the Trace Event
Format understood by ``chrome://tracing`` / Perfetto: one complete
("X") event per span on a single pid/tid timeline, with the attributed
simulated latency/energy in each event's ``args``, plus counter ("C")
events for every registered instrument.  Timestamps are microseconds
since the tracer epoch, as the format requires.

``aggregate`` flattens the same data into one JSON-ready dict keyed by
span name -- call counts, wall time, and attributed cost -- which is
what the exit report and most tests consume.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.telemetry.tracer import Tracer

__all__ = ["aggregate", "chrome_trace", "export_chrome_trace", "summary"]


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build a Chrome trace-event dict from the tracer's recorded spans."""
    events = []
    for span in tracer.spans:
        args: Dict[str, Any] = {
            "latency_s": span.latency_s,
            "energy_j": span.energy_j,
        }
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.ts * 1e6,
            "dur": span.dur * 1e6,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    end_ts = max((s.ts + s.dur for s in tracer.spans), default=0.0) * 1e6
    for counter in tracer.counters.values():
        events.append({
            "name": counter.name,
            "ph": "C",
            "ts": end_ts,
            "pid": 1,
            "args": {"value": counter.value},
        })
    for gauge in tracer.gauges.values():
        events.append({
            "name": gauge.name,
            "ph": "C",
            "ts": end_ts,
            "pid": 1,
            "args": {"value": gauge.value},
        })
    for accumulator in tracer.accumulators.values():
        events.append({
            "name": accumulator.name,
            "ph": "C",
            "ts": end_ts,
            "pid": 1,
            # "value" keeps the event shape uniform with counters/gauges
            # (and charts the running total); count rides along
            "args": {
                "value": accumulator.total,
                "total": accumulator.total,
                "count": accumulator.count,
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path`` and return the dict."""
    trace = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
    return trace


def aggregate(tracer: Tracer) -> Dict[str, Any]:
    """Flatten spans + instruments into one JSON-ready dict.

    ``spans`` maps span name to ``{count, wall_s, latency_s, energy_j}``
    accumulated over every recorded occurrence.
    """
    spans: Dict[str, Dict[str, float]] = {}
    for span in tracer.spans:
        agg = spans.get(span.name)
        if agg is None:
            agg = spans[span.name] = {
                "count": 0, "wall_s": 0.0, "latency_s": 0.0, "energy_j": 0.0,
            }
        agg["count"] += 1
        agg["wall_s"] += span.dur
        agg["latency_s"] += span.latency_s
        agg["energy_j"] += span.energy_j
    return {
        "spans": spans,
        "counters": {c.name: c.value for c in tracer.counters.values()},
        "gauges": {g.name: g.value for g in tracer.gauges.values()},
        "accumulators": {
            a.name: {"total": a.total, "count": a.count}
            for a in tracer.accumulators.values()
        },
        "dropped_spans": tracer.dropped_spans,
    }


def summary(tracer: Tracer) -> str:
    """Human-readable one-block report (the ``report_at_exit`` payload)."""
    agg = aggregate(tracer)
    lines = ["telemetry summary:"]
    for name in sorted(agg["spans"]):
        s = agg["spans"][name]
        lines.append(
            f"  span {name}: count={s['count']} wall={s['wall_s']:.6f}s"
            f" latency={s['latency_s']:.6e}s energy={s['energy_j']:.6e}J"
        )
    for name in sorted(agg["counters"]):
        lines.append(f"  counter {name}: {agg['counters'][name]}")
    for name in sorted(agg["gauges"]):
        lines.append(f"  gauge {name}: {agg['gauges'][name]}")
    for name in sorted(agg["accumulators"]):
        a = agg["accumulators"][name]
        lines.append(
            f"  accumulator {name}: total={a['total']:.6e} count={a['count']}"
        )
    if agg["dropped_spans"]:
        lines.append(f"  dropped_spans: {agg['dropped_spans']}")
    if len(lines) == 1:
        lines.append("  (no telemetry recorded)")
    return "\n".join(lines)
