"""Hierarchical span tracer with a near-zero-overhead disabled path.

A span is one timed region of the stack (``driver.flush``, ``controller.
execute_batch``, ``app.fastbit.query_many``...).  Spans nest: the tracer
keeps an open-span stack, every finished span records its parent, and the
Chrome trace export renders the resulting tree on a timeline.

Besides wall time, a span carries *attributed* simulated cost: the
instrumented layers call :meth:`SpanRecord.add` with the latency/energy
the priced command stream reported, so a trace answers "where did this
batch spend its cycles/joules" -- the per-layer breakdown the paper's
evaluation is built on.  Attribution happens only at the layer that
*knows* the cost (the memory controller); parent spans show the rollup
through nesting, never by double counting.

Design constraints:

- **Disabled is free.**  ``Tracer.span`` on a disabled tracer returns a
  shared no-op context manager: one method call, one attribute check, no
  allocation.  Hot loops keep their instrumentation permanently.
- **Sampling is per root.**  ``sample_rate`` keeps every Nth *root* span
  (deterministic stride, not RNG); a rejected root suppresses its whole
  subtree so the recorded forest is always internally consistent.
- **Bounded memory.**  At most ``max_spans`` records are kept; beyond
  that new subtrees are dropped and counted in ``dropped_spans``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.telemetry.instruments import Accumulator, Counter, Gauge

__all__ = ["NULL_SPAN", "SpanRecord", "Tracer"]

#: default cap on retained span records (a production-safety valve, far
#: above any figure run; ~100 bytes per record)
DEFAULT_MAX_SPANS = 1_000_000


class SpanRecord:
    """One recorded span: wall timing plus attributed simulated cost."""

    __slots__ = (
        "name", "ts", "dur", "depth", "parent", "latency_s", "energy_j",
        "attrs",
    )

    def __init__(self, name: str, ts: float, depth: int, parent: int):
        self.name = name
        self.ts = ts  # s since the tracer epoch (wall clock)
        self.dur = 0.0  # wall s (filled when the span closes)
        self.depth = depth
        self.parent = parent  # index into Tracer.spans, -1 for roots
        self.latency_s = 0.0  # attributed simulated latency
        self.energy_j = 0.0  # attributed simulated energy
        self.attrs: Optional[Dict[str, Any]] = None

    def add(
        self, latency_s: float = 0.0, energy_j: float = 0.0, **attrs: Any
    ) -> "SpanRecord":
        """Attribute simulated cost (and free-form attributes) to the span."""
        self.latency_s += latency_s
        self.energy_j += energy_j
        if attrs:
            if self.attrs is None:
                self.attrs = attrs
            else:
                self.attrs.update(attrs)
        return self


class _NullSpan:
    """The disabled path: a shared, allocation-free no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, latency_s: float = 0.0, energy_j: float = 0.0,
            **attrs: Any) -> "_NullSpan":
        return self


#: the singleton every disabled/suppressed ``span()`` call hands out
NULL_SPAN = _NullSpan()


class _SuppressedSpan:
    """A span rejected by sampling (or over the record cap).

    Entering it raises the tracer's suppression depth so every child
    span is dropped too -- a sampled-out root never leaves orphan
    children in the record.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self) -> _NullSpan:
        self._tracer._suppress += 1
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        self._tracer._suppress -= 1
        return False


class _OpenSpan:
    """Context manager that records one :class:`SpanRecord`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_index")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> SpanRecord:
        t = self._tracer
        record = SpanRecord(
            self._name,
            time.perf_counter() - t.epoch,
            len(t._stack),
            t._stack[-1] if t._stack else -1,
        )
        if self._attrs:
            record.attrs = self._attrs
        self._index = len(t.spans)
        t.spans.append(record)
        t._stack.append(self._index)
        return record

    def __exit__(self, *exc: object) -> bool:
        t = self._tracer
        record = t.spans[self._index]
        record.dur = (time.perf_counter() - t.epoch) - record.ts
        t._stack.pop()
        return False


class Tracer:
    """Span recorder + typed counter/gauge registry.

    One process-wide instance lives at :data:`repro.telemetry.tracer`;
    instrumented modules may cache a reference to it (the object is
    stable across :meth:`reset` / ``configure`` calls).
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self.enabled = False
        self.sample_rate = 1.0
        self.max_spans = max_spans
        self.epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.dropped_spans = 0
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.accumulators: Dict[str, Accumulator] = {}
        self._stack: List[int] = []
        self._suppress = 0
        self._sample_acc = 0.0

    # -- configuration -------------------------------------------------------

    def configure(
        self,
        enabled: Optional[bool] = None,
        sample_rate: Optional[float] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        """Change tracer settings; ``None`` leaves a setting untouched."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if sample_rate is not None:
            if not 0.0 <= sample_rate <= 1.0:
                raise ValueError("sample_rate must be in [0, 1]")
            self.sample_rate = sample_rate
            self._sample_acc = 0.0
        if max_spans is not None:
            if max_spans < 1:
                raise ValueError("max_spans must be >= 1")
            self.max_spans = max_spans

    def reset(self) -> None:
        """Drop recorded spans and zero every instrument.

        Counter/gauge *objects* survive (they are zeroed, not discarded),
        so module-level cached instruments stay registered.
        """
        self.epoch = time.perf_counter()
        self.spans = []
        self.dropped_spans = 0
        self._stack = []
        self._suppress = 0
        self._sample_acc = 0.0
        for counter in self.counters.values():
            counter.value = 0
        for gauge in self.gauges.values():
            gauge.value = 0.0
        for accumulator in self.accumulators.values():
            accumulator.total = 0.0
            accumulator.count = 0

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with tracer.span("driver.flush") as sp:``.

        Returns the shared no-op span when tracing is disabled, a
        suppressing span when the enclosing root was sampled out (or the
        record cap is hit), or a live recording span otherwise.
        """
        if not self.enabled:
            return NULL_SPAN
        if self._suppress:
            return _SuppressedSpan(self)
        if not self._stack:
            # root span: deterministic stride sampling
            self._sample_acc += self.sample_rate
            if self._sample_acc < 1.0:
                self.dropped_spans += 1
                return _SuppressedSpan(self)
            self._sample_acc -= 1.0
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return _SuppressedSpan(self)
        return _OpenSpan(self, name, attrs or None)

    def current_span(self) -> Optional[SpanRecord]:
        """The innermost open span, or ``None``."""
        if not self._stack:
            return None
        return self.spans[self._stack[-1]]

    def attribute(
        self, latency_s: float = 0.0, energy_j: float = 0.0, **attrs: Any
    ) -> None:
        """Attribute cost to the innermost open span (no-op without one)."""
        if not self.enabled or not self._stack:
            return
        self.spans[self._stack[-1]].add(latency_s, energy_j, **attrs)

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the monotonic counter ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the last-value gauge ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def accumulator(self, name: str) -> Accumulator:
        """Get or create the summing accumulator ``name``."""
        instrument = self.accumulators.get(name)
        if instrument is None:
            instrument = self.accumulators[name] = Accumulator(name)
        return instrument
