"""Unified telemetry: spans, counters, and trace export for the repro.

One process-wide :class:`~repro.telemetry.tracer.Tracer` instance backs
the module-level API.  Typical use::

    from repro import telemetry

    telemetry.configure(enabled=True)
    ... run a workload ...
    telemetry.export_chrome_trace("trace.json")   # chrome://tracing
    print(telemetry.summary())

Instrumented layers and their span names:

- ``memsim.controller.execute`` / ``memsim.controller.execute_batch`` --
  the leaves where simulated latency/energy is attributed
- ``core.executor.bitwise`` / ``.bitwise_many`` / ``.bitwise_to_host``
- ``runtime.driver.flush``
- ``backends.<name>.bitwise`` / ``.bitwise_many``
- ``app.fastbit.query`` / ``.query_many``, ``app.bitvector.apply_many``,
  ``app.bfs.run`` / ``.level``
- ``workloads.trace.price`` (analytic trace pricing, used by figures)

Tracing is off by default; the disabled path is a single flag check per
``span()`` call so instrumentation can stay in hot loops permanently.
Counters/gauges are always live (integer adds only).

This package deliberately imports nothing outside the stdlib, so any
layer of the repro -- including ``repro.memsim.controller`` at the very
bottom of the import graph -- can import it without cycles.
"""

from __future__ import annotations

import atexit
import sys
from typing import Any, Dict

from repro.telemetry import export as _export
from repro.telemetry.instruments import Accumulator, Counter, Gauge
from repro.telemetry.tracer import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Accumulator",
    "accumulator",
    "Counter",
    "Gauge",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "aggregate",
    "attribute",
    "chrome_trace",
    "configure",
    "counter",
    "current_span",
    "export_chrome_trace",
    "gauge",
    "report_at_exit",
    "reset",
    "span",
    "summary",
    "tracer",
]

#: the process-wide tracer; stable object, safe to cache a reference to
tracer = Tracer()

# Bound methods of the singleton ARE the module-level API -- zero extra
# call layers on the hot path.
configure = tracer.configure
reset = tracer.reset
span = tracer.span
attribute = tracer.attribute
current_span = tracer.current_span
counter = tracer.counter
gauge = tracer.gauge
accumulator = tracer.accumulator


def chrome_trace() -> Dict[str, Any]:
    """Chrome trace-event dict of everything recorded so far."""
    return _export.chrome_trace(tracer)


def export_chrome_trace(path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the dict too."""
    return _export.export_chrome_trace(tracer, path)


def aggregate() -> Dict[str, Any]:
    """Flat ``{spans, counters, gauges, dropped_spans}`` aggregate dict."""
    return _export.aggregate(tracer)


def summary() -> str:
    """Human-readable multi-line telemetry report."""
    return _export.summary(tracer)


_exit_registered = False
_exit_enabled = False


def _emit_exit_report() -> None:  # pragma: no cover - atexit hook
    if not _exit_enabled:
        return
    print(summary(), file=sys.stderr)
    # Fold in the controller's perf counters when that layer was loaded;
    # looked up lazily so importing telemetry never drags in memsim.
    controller = sys.modules.get("repro.memsim.controller")
    if controller is not None:
        print(controller.perf_counters.summary(), file=sys.stderr)


def report_at_exit(enable: bool = True) -> None:
    """Opt in (or back out) of a telemetry report on interpreter exit.

    Replaces the old unconditional ``REPRO_PERF_DEBUG`` atexit hook in
    ``memsim.controller``: nothing prints unless this was called.
    """
    global _exit_registered, _exit_enabled
    _exit_enabled = enable
    if enable and not _exit_registered:
        atexit.register(_emit_exit_report)
        _exit_registered = True
