"""Typed instruments: monotonic counters and last-value gauges.

Instruments are named ``<layer>.<component>.<metric>`` (for example
``runtime.driver.requests`` or ``memsim.controller.batches``) and live
in the process-wide tracer's registry.  Unlike spans they are *always*
live -- incrementing an integer is cheap enough to leave on -- so exit
reports and aggregates have data even when span tracing is off.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.add amount must be >= 0")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins float metric (queue depth, batch size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"
