"""Typed instruments: monotonic counters and last-value gauges.

Instruments are named ``<layer>.<component>.<metric>`` (for example
``runtime.driver.requests`` or ``memsim.controller.batches``) and live
in the process-wide tracer's registry.  Unlike spans they are *always*
live -- incrementing an integer is cheap enough to leave on -- so exit
reports and aggregates have data even when span tracing is off.
"""

from __future__ import annotations

__all__ = ["Accumulator", "Counter", "Gauge"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.add amount must be >= 0")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """A summing float metric with a sample count (compile seconds, ...).

    Where :class:`Counter` counts events and :class:`Gauge` keeps the
    latest value, an accumulator answers "how much in total, over how
    many samples" -- e.g. total kernel-compile wall time across N
    compilations, from which a mean per-compile cost falls out.
    """

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0

    def add(self, amount: float) -> None:
        self.total += float(amount)
        self.count += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Accumulator({self.name}={self.total} over {self.count})"


class Gauge:
    """A last-value-wins float metric (queue depth, batch size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"
