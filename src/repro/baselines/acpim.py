"""AC-PIM baseline: accelerator-in-memory with digital logic everywhere.

The paper's strawman PIM: instead of reusing the analog sense path, every
operation -- even intra-subarray -- runs through digital logic gates and
latches bolted onto the array (Fig. 8b style bit-slices at subarray
level).  Consequences the evaluation shows:

- each operand row must be *read out digitally* (a full muxed sense pass)
  and latched before the gates combine it -- no one-step multi-row
  activation, so an n-operand op costs n serial row reads;
- every bit pays gate + latch energy on top of the array read, and the
  scheme loses the analog path's single-sense trick, so it never beats
  the analog schemes on energy;
- area: ~6.4 % of the chip vs Pinatubo's ~0.9 % (see
  :mod:`repro.energy.area`).
"""

from __future__ import annotations


from repro.baselines.base import (
    AccessPattern,
    BaselineCost,
    BitwiseBaseline,
    validate_request,
)
from repro.energy.constants import PROCESS_65NM, ProcessConstants
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.timing import nvm_timing
from repro.nvm.technology import NVMTechnology, get_technology


class AcPim(BitwiseBaseline):
    """Digital accelerator-in-memory on the same NVM array."""

    name = "AC-PIM"

    #: Every operand bit is shuttled from the SA outputs across the global
    #: datalines to the buffer-side logic block and back -- wire energy
    #: the analog schemes never pay (their combine happens *in* the SA).
    _E_WIRE_PER_BIT = 0.25e-12

    #: Rank-wide GDL transfer width per bus-clock beat (256 bits per chip
    #: x 8 lock-step chips).
    gdl_beat_bits = 2048

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        technology: NVMTechnology = None,
        process: ProcessConstants = PROCESS_65NM,
    ):
        self.geometry = geometry
        self.technology = technology or get_technology("pcm")
        self.timing = nvm_timing(self.technology)
        self.process = process

    def supports(self, op: str) -> bool:
        return op in ("or", "and", "xor", "inv")

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        op = validate_request(op, n_operands, vector_bits)
        AccessPattern.parse(access)  # validated; placement-insensitive here:
        # the digital path reads every operand through the array anyway, so
        # random placement costs the same serial row reads.
        g, t = self.geometry, self.timing

        chunks = g.rows_for_bits(vector_bits)
        chunk_bits = min(vector_bits, g.row_bits)
        steps = g.sense_steps_for_bits(chunk_bits)

        # Per chunk: read each operand row digitally *through the global
        # datalines* to the buffer-side logic (Fig. 8b), combine in gates,
        # write the result back through the write drivers.  The GDL is the
        # bottleneck the analog schemes never touch.
        gdl_beats = -(-chunk_bits // self.gdl_beat_bits)
        t_read_row = t.t_rcd + steps * t.t_cl + gdl_beats * t.t_cmd + t.t_rp
        t_chunk = n_operands * t_read_row + t.t_cmd + gdl_beats * t.t_cmd + t.t_wr
        latency = chunks * t_chunk + (n_operands + 2) * chunks * t.t_cmd

        e_read_row = chunk_bits * (
            t.e_activate_per_bit
            + t.e_sense_per_bit
            + self.process.e_gate_per_bit
            + self.process.e_latch_per_bit
            + self._E_WIRE_PER_BIT
        )
        # random data: ~half the result bits flip on write-back
        e_write = 0.5 * chunk_bits * t.e_write_per_bit
        energy = chunks * (n_operands * e_read_row + e_write)
        return BaselineCost(latency=latency, energy=energy, offloaded=True)
