"""The SIMD CPU baseline (paper Section 6.1).

"A 4-core 4-issue out-of-order x86 Haswell processor running at 3.3 GHz
with a 128-bit SIMD unit (SSE/AVX), 32 KB L1 / 256 KB L2 / 6 MB L3" --
modelled analytically (bandwidth/compute roofline over the cache
hierarchy) with a trace-driven cache mode for validation.  This is our
Sniper substitute: bulk bitwise kernels are streaming loops whose cost is
set by (a) which level of the hierarchy feeds them and (b) the SIMD lane
width, both of which the model captures explicitly.

The CPU pairs with a main memory model: DRAM when compared against
S-DRAM, PCM when compared against AC-PIM/Pinatubo (paper Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import (
    AccessPattern,
    BaselineCost,
    BitwiseBaseline,
    validate_request,
)
from repro.baselines.cache import CacheHierarchy
from repro.energy.cacti import MemorySystemModel
from repro.nvm.technology import get_technology


@dataclass(frozen=True)
class CpuConfig:
    """The paper's SIMD processor."""

    cores: int = 4
    frequency: float = 3.3e9  # Hz
    simd_bits: int = 128
    issue_width: int = 4
    #: Package power under full streaming load (dynamic + static).  A
    #: 4-core desktop part sits near TDP on memory-bound vector loops.
    active_power: float = 65.0  # W
    #: Fixed software overhead per bulk call (loop setup, bounds, driver).
    call_overhead: float = 50e-9  # s

    @property
    def cycle(self) -> float:
        return 1.0 / self.frequency


class SimdCpu(BitwiseBaseline):
    """Roofline CPU model with cache-level-aware streaming."""

    name = "SIMD"

    def __init__(
        self,
        config: CpuConfig = CpuConfig(),
        memory: MemorySystemModel = None,
        hierarchy: CacheHierarchy = None,
    ):
        self.config = config
        self.memory = memory or MemorySystemModel.dram()
        self.hierarchy = hierarchy or CacheHierarchy()

    @classmethod
    def with_dram(cls, config: CpuConfig = CpuConfig()) -> "SimdCpu":
        return cls(config, MemorySystemModel.dram())

    @classmethod
    def with_pcm(cls, config: CpuConfig = CpuConfig()) -> "SimdCpu":
        return cls(config, MemorySystemModel.nvm(get_technology("pcm")))

    def supports(self, op: str) -> bool:
        return op in ("or", "and", "xor", "inv")

    # -- analytical cost --------------------------------------------------------

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
        resident: bool = False,
    ) -> BaselineCost:
        """Roofline cost of one n-operand bulk bitwise op.

        ``resident=True`` models a hot working set reused from the cache
        level it fits in; the default streams from main memory (the bulk
        workloads touch far more data than the LLC holds).
        """
        op = validate_request(op, n_operands, vector_bits)
        access = AccessPattern.parse(access)
        cfg = self.config

        read_bits = n_operands * vector_bits
        write_bits = vector_bits
        # write-allocate: the destination lines are read before written
        moved_bytes = (read_bits + 2 * write_bits) / 8.0

        level = "MEM"
        if resident:
            working_set = int((n_operands + 1) * vector_bits / 8)
            level = self.hierarchy.fit_level(working_set)

        bandwidth = self._stream_bandwidth(level, access)
        t_mem = moved_bytes / bandwidth

        t_alu = self._compute_time(n_operands, vector_bits)

        latency = max(t_mem, t_alu) + cfg.call_overhead
        energy = cfg.active_power * latency + self._data_energy(level, moved_bytes)
        return BaselineCost(latency=latency, energy=energy, offloaded=False)

    def _compute_time(self, n_operands: int, vector_bits: int) -> float:
        """Compute-leg seconds of one bulk op (roofline lane bound).

        The seam the instruction-level kernel model plugs into: the
        ``kernel`` backend subclasses this with the port-pressure bound
        from :mod:`repro.baselines.kernel`.
        """
        cfg = self.config
        lane_ops = max(1, n_operands - 1) * -(-vector_bits // cfg.simd_bits)
        return lane_ops * cfg.cycle / cfg.cores

    #: Sustained fraction of peak DDR bandwidth a read+write-allocate
    #: streaming kernel achieves (STREAM-like efficiency: turnaround,
    #: channel imbalance, write-allocate read-for-ownership traffic).
    MEM_STREAM_EFFICIENCY = 0.55

    def _stream_bandwidth(self, level: str, access: AccessPattern) -> float:
        """Sustained streaming bandwidth from one hierarchy level (B/s)."""
        if level == "MEM":
            bw = self.memory.peak_bandwidth * self.MEM_STREAM_EFFICIENCY
        else:
            # prefetched cache streaming: all cores pull lines in parallel
            bw = self.hierarchy.level_bandwidth(level) * self.config.cores
        if access is AccessPattern.RANDOM:
            # row-miss / TLB penalty at every vector boundary
            bw *= 0.7
        return bw

    def _data_energy(self, level: str, moved_bytes: float) -> float:
        per_byte = self.hierarchy.level_energy_per_byte(level)
        energy = moved_bytes * per_byte
        if level == "MEM":
            energy += self.memory.stream_cost(int(moved_bytes)).energy
        return energy

    # -- trace-driven validation mode ----------------------------------------------

    def trace_bitwise(self, op: str, n_operands: int, vector_bits: int) -> dict:
        """Run the kernel's exact cacheline trace through the hierarchy.

        Used by tests/examples to sanity-check the analytical model's
        level assignments on small kernels (full-size traces are too slow
        in pure Python, which is exactly why the analytical mode exists).
        """
        op = validate_request(op, n_operands, vector_bits)
        line = self.hierarchy.config.line_bytes
        vec_bytes = -(-vector_bits // 8)
        n_lines = -(-vec_bytes // line)
        base = 1 << 30
        addresses = []
        writes = []
        for i in range(n_lines):
            for operand in range(n_operands):
                addresses.append(base + operand * (vec_bytes + line) + i * line)
                writes.append(False)
            addresses.append(base + (n_operands + 1) * (vec_bytes + line) + i * line)
            writes.append(True)
        return self.hierarchy.run_trace(np.array(addresses), np.array(writes))
