"""Ideal baseline: bitwise operations at zero latency and zero energy.

The paper's Fig. 12 "Ideal" legend -- the Amdahl ceiling of any bitwise
accelerator.  An application's ideal runtime is just its non-bitwise
part; Pinatubo "almost achieves the ideal acceleration" because its
per-op cost is negligible next to the conventional part.
"""

from __future__ import annotations

from repro.baselines.base import (
    AccessPattern,
    BaselineCost,
    BitwiseBaseline,
    validate_request,
)


class IdealPim(BitwiseBaseline):
    """Zero-cost bitwise operations."""

    name = "Ideal"

    def supports(self, op: str) -> bool:
        return op in ("or", "and", "xor", "inv")

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        validate_request(op, n_operands, vector_bits)
        AccessPattern.parse(access)
        return BaselineCost(latency=0.0, energy=0.0, offloaded=True)
