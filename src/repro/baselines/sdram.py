"""S-DRAM baseline: in-DRAM bulk bitwise AND/OR via charge sharing.

Models the in-DRAM computing approach the paper compares against
(Seshadri et al., CAL 2015): triple-row activation computes a bitwise
AND/OR of two rows, but

- DRAM reads are destructive, so both operands must first be *copied*
  into the designated compute rows (row-clone style activate-activate
  pairs), and the result copied/kept -- the "copy before calculation"
  overhead the paper calls out;
- only 2-row AND and OR are supported; XOR and INV fall back to the CPU;
- each primitive is a full row-cycle operation, which pipelines across
  DRAM banks (the scheme's strength: wide rows + bank-level parallelism,
  how it beats Pinatubo-2 on very long sequential vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import (
    AccessPattern,
    BaselineCost,
    BitwiseBaseline,
    validate_request,
)
from repro.baselines.simd import SimdCpu
from repro.memsim.geometry import DRAM_GEOMETRY, MemoryGeometry
from repro.memsim.timing import DDR3_1600, TimingParams


@dataclass(frozen=True)
class SDramConfig:
    """Cost structure of the in-DRAM compute primitives."""

    #: Row-cycle primitives per 2-row op: copy both operands into the
    #: compute rows, then the triple-row activation leaves the result in
    #: place (3 AAPs).
    aaps_per_op: int = 3
    #: Rows whose full activation energy one AAP pays (src + dst).
    rows_per_aap: int = 2
    #: Banks a long bulk operation keeps busy concurrently (command-bus
    #: and power constraints keep this below the physical bank count).
    bank_parallelism: int = 4


class SDram(BitwiseBaseline):
    """In-DRAM charge-sharing bulk AND/OR."""

    name = "S-DRAM"

    def __init__(
        self,
        geometry: MemoryGeometry = DRAM_GEOMETRY,
        timing: TimingParams = DDR3_1600,
        config: SDramConfig = SDramConfig(),
        cpu: SimdCpu = None,
    ):
        self.geometry = geometry
        self.timing = timing
        self.config = config
        #: fallback executor for XOR / INV (CPU over DRAM).
        self.cpu = cpu or SimdCpu.with_dram()

    def supports(self, op: str) -> bool:
        return op in ("or", "and")

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        op = validate_request(op, n_operands, vector_bits)
        access = AccessPattern.parse(access)
        if not self.supports(op):
            return self.cpu.bitwise_cost(op, n_operands, vector_bits, access)

        # pairwise accumulation: n-operand op = (n-1) two-row primitives
        primitives_per_chunk = max(1, n_operands - 1)
        chunks = self.geometry.rows_for_bits(vector_bits)
        total_primitives = primitives_per_chunk * chunks

        t_primitive = self.config.aaps_per_op * self.timing.t_rc
        parallel = self._parallelism(access, chunks)
        latency = total_primitives * t_primitive / parallel

        row_bits = min(vector_bits, self.geometry.row_bits)
        e_row = row_bits * (
            self.timing.e_activate_per_bit + self.timing.e_sense_per_bit
        )
        e_primitive = (
            self.config.aaps_per_op * self.config.rows_per_aap * e_row
            + 4 * self.timing.e_cmd
        )
        energy = total_primitives * e_primitive
        return BaselineCost(latency=latency, energy=energy, offloaded=True)

    def _parallelism(self, access: AccessPattern, chunks: int) -> int:
        """Concurrent banks a bulk op exploits."""
        if access is AccessPattern.RANDOM:
            return 1  # scattered rows serialise on bank conflicts
        return max(1, min(self.config.bank_parallelism, chunks))
