"""Set-associative cache hierarchy simulator (Sniper substitute, data side).

The SIMD baseline's behaviour on bulk bitwise kernels is set by where the
working set lives: L1/L2/L3 or DRAM.  This module provides

- :class:`Cache`: one set-associative, LRU, write-back/write-allocate
  cache level with hit latency/energy accounting;
- :class:`CacheHierarchy`: an inclusive three-level hierarchy that
  services addresses and reports which level hit;
- working-set-based *hit-fraction estimation* used by the analytical CPU
  model when simulating full traces would be too slow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    level: str  # "L1", "L2", "L3" or "MEM"
    latency: float  # s
    energy: float  # J
    writeback: bool = False  # a dirty line was evicted to memory


class Cache:
    """One set-associative LRU cache level."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
        hit_latency: float = 1e-9,
        access_energy: float = 1e-12,
    ):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache dimensions must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines % ways != 0 or n_lines == 0:
            raise ValueError("size/line/ways do not form whole sets")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_lines // ways
        self.hit_latency = hit_latency
        self.access_energy = access_energy
        # per-set: list of (tag, dirty), most-recent last
        self._sets = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int, is_write: bool) -> tuple:
        """Look up one address.

        Returns (hit, evicted_dirty_tagline) where the eviction is the
        victim pushed out by the fill on a miss (None otherwise).
        """
        set_idx, tag = self._locate(address)
        entries = self._sets[set_idx]
        for i, (t, dirty) in enumerate(entries):
            if t == tag:
                entries.pop(i)
                entries.append((tag, dirty or is_write))
                self.hits += 1
                return True, None
        self.misses += 1
        evicted = None
        if len(entries) >= self.ways:
            evicted_tag, evicted_dirty = entries.pop(0)
            if evicted_dirty:
                evicted = evicted_tag
        entries.append((tag, is_write))
        return False, evicted

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class HierarchyConfig:
    """Capacity/latency/energy of the three levels (Haswell-like)."""

    l1_size: int = 32 * 1024
    l2_size: int = 256 * 1024
    l3_size: int = 6 * 1024 * 1024
    line_bytes: int = 64
    l1_latency: float = 1.2e-9  # 4 cycles @ 3.3 GHz
    l2_latency: float = 3.6e-9  # 12 cycles
    l3_latency: float = 10.3e-9  # 34 cycles
    l1_energy: float = 0.5e-12  # per line access
    l2_energy: float = 1.5e-12
    l3_energy: float = 6.0e-12


class CacheHierarchy:
    """Inclusive L1/L2/L3 with a pluggable memory-access cost."""

    def __init__(
        self,
        config: HierarchyConfig = HierarchyConfig(),
        mem_latency: float = 60e-9,
        mem_energy: float = 30e-12,
    ):
        c = config
        self.config = c
        self.l1 = Cache("L1", c.l1_size, c.line_bytes, 8, c.l1_latency, c.l1_energy)
        self.l2 = Cache("L2", c.l2_size, c.line_bytes, 8, c.l2_latency, c.l2_energy)
        self.l3 = Cache("L3", c.l3_size, c.line_bytes, 12, c.l3_latency, c.l3_energy)
        self.mem_latency = mem_latency
        self.mem_energy = mem_energy
        self.mem_accesses = 0

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Service one address through the hierarchy."""
        latency = 0.0
        energy = 0.0
        writeback = False
        for cache, label in ((self.l1, "L1"), (self.l2, "L2"), (self.l3, "L3")):
            latency += cache.hit_latency
            energy += cache.access_energy
            hit, evicted = cache.access(address, is_write)
            if evicted is not None and label == "L3":
                writeback = True
            if hit:
                return AccessResult(label, latency, energy, writeback)
        self.mem_accesses += 1
        latency += self.mem_latency
        energy += self.mem_energy
        if writeback:
            energy += self.mem_energy
        return AccessResult("MEM", latency, energy, writeback)

    def run_trace(self, addresses, writes=None) -> dict:
        """Run an address trace; returns aggregate stats."""
        addresses = np.asarray(addresses)
        if writes is None:
            writes = np.zeros(addresses.shape, dtype=bool)
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != addresses.shape:
            raise ValueError("writes mask must match addresses")
        total_latency = 0.0
        total_energy = 0.0
        levels = {"L1": 0, "L2": 0, "L3": 0, "MEM": 0}
        for addr, w in zip(addresses.tolist(), writes.tolist()):
            r = self.access(int(addr), bool(w))
            total_latency += r.latency
            total_energy += r.energy
            levels[r.level] += 1
        return {
            "latency": total_latency,
            "energy": total_energy,
            "levels": levels,
            "accesses": len(addresses),
        }

    # -- analytical estimation ---------------------------------------------------

    def fit_level(self, working_set_bytes: int) -> str:
        """Smallest level a (reused) working set streams from."""
        c = self.config
        if working_set_bytes <= c.l1_size:
            return "L1"
        if working_set_bytes <= c.l2_size:
            return "L2"
        if working_set_bytes <= c.l3_size:
            return "L3"
        return "MEM"

    def level_bandwidth(self, level: str, line_interval: float = None) -> float:
        """Sustained line-granular bandwidth of one level (B/s).

        One line per hit latency is the streaming bound a single core sees
        without prefetch; prefetch-friendly streaming is handled by the
        CPU model's bandwidth caps.
        """
        lat = {
            "L1": self.l1.hit_latency,
            "L2": self.l2.hit_latency,
            "L3": self.l3.hit_latency,
            "MEM": self.mem_latency,
        }[level]
        return self.config.line_bytes / lat

    def level_energy_per_byte(self, level: str) -> float:
        """Per-byte access energy when streaming from one level."""
        line = self.config.line_bytes
        if level == "L1":
            return self.config.l1_energy / line
        if level == "L2":
            return (self.config.l1_energy + self.config.l2_energy) / line
        if level == "L3":
            return (
                self.config.l1_energy + self.config.l2_energy + self.config.l3_energy
            ) / line
        if level == "MEM":
            cache_part = (
                self.config.l1_energy + self.config.l2_energy + self.config.l3_energy
            ) / line
            return cache_part + self.mem_energy / line
        raise ValueError(f"unknown level {level!r}")
