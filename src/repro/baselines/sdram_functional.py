"""Functional in-DRAM computing executor (the S-DRAM baseline, for real).

The analytical :class:`~repro.baselines.sdram.SDram` model prices the
scheme; this module *executes* it, so the baseline's semantics are
testable rather than assumed.  Mechanics follow the in-DRAM bulk bitwise
proposal the paper compares against (Seshadri et al., CAL 2015):

- **RowClone copy (AAP)**: activating a source row and then a destination
  row in the same subarray before precharge copies the source onto the
  destination through the sense amplifiers -- one row-cycle primitive.
- **Triple-row activation (TRA)**: activating three rows at once makes
  every bitline settle to the *majority* of the three cells, and the
  restore drives all three rows to that result.  With a control row of
  zeros ``maj(a, b, 0) = a AND b``; with ones ``maj(a, b, 1) = a OR b``.
- Reads are destructive, so operands must first be copied into the
  designated compute rows (the "copy before calculation" overhead), and
  the result copied out to its destination.

Each DRAM subarray reserves four rows: T0, T1, CTRL plus a scratch the
copies go through; the executor hides that bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.geometry import DRAM_GEOMETRY, MemoryGeometry
from repro.memsim.mainmem import MainMemory
from repro.memsim.timing import DDR3_1600, TimingParams


@dataclass
class SDramOpResult:
    """Cost + primitive counts of one in-DRAM operation."""

    latency: float
    energy: float
    aap_count: int
    tra_count: int


class SDramExecutor:
    """Executes bulk AND/OR inside a functional DRAM main memory."""

    #: reserved rows at the top of each subarray
    _T0, _T1, _CTRL = 0, 1, 2
    _RESERVED = 3

    def __init__(
        self,
        geometry: MemoryGeometry = DRAM_GEOMETRY,
        timing: TimingParams = DDR3_1600,
    ):
        if geometry.rows_per_subarray <= self._RESERVED:
            raise ValueError("subarrays too small for the compute rows")
        self.geometry = geometry
        self.timing = timing
        self.memory = MainMemory(geometry)
        self.aaps = 0
        self.tras = 0

    # -- reserved-row helpers ---------------------------------------------------

    def subarray_base(self, subarray_index: int) -> int:
        """First frame of the subarray with the given linear index."""
        return subarray_index * self.geometry.rows_per_subarray

    def data_frame(self, subarray_index: int, row: int) -> int:
        """Frame of a *data* row (row 0 = first non-reserved row)."""
        if row < 0 or row >= self.geometry.rows_per_subarray - self._RESERVED:
            raise ValueError("data row out of range")
        return self.subarray_base(subarray_index) + self._RESERVED + row

    # -- primitives ----------------------------------------------------------------

    def _aap(self, src_frame: int, dst_frame: int) -> None:
        """RowClone copy: one activate-activate-precharge row cycle."""
        self.memory.write_frame(dst_frame, self.memory.frame_bytes(src_frame))
        self.aaps += 1

    def _tra(self, subarray_index: int) -> None:
        """Triple-row activation over T0, T1, CTRL: bitwise majority,
        restored into all three rows (charge sharing is destructive)."""
        base = self.subarray_base(subarray_index)
        a = self.memory.frame_bytes(base + self._T0)
        b = self.memory.frame_bytes(base + self._T1)
        c = self.memory.frame_bytes(base + self._CTRL)
        majority = (a & b) | (a & c) | (b & c)
        for row in (self._T0, self._T1, self._CTRL):
            self.memory.write_frame(base + row, majority)
        self.tras += 1

    def _set_control(self, subarray_index: int, value: int) -> None:
        """Program the control row to all-zeros (AND) or all-ones (OR).

        A real design keeps pre-initialised all-0/all-1 rows and AAPs
        from them; we count that as the one AAP it is.
        """
        base = self.subarray_base(subarray_index)
        fill = 0xFF if value else 0x00
        self.memory.write_frame(
            base + self._CTRL,
            np.full(self.geometry.row_bytes, fill, dtype=np.uint8),
        )
        self.aaps += 1

    # -- bulk operations ----------------------------------------------------------

    def bitwise(self, op: str, dest_row: int, src_a: int, src_b: int,
                subarray_index: int = 0) -> SDramOpResult:
        """``dest = a op b`` over full data rows of one subarray.

        Only AND and OR exist in this scheme; anything else must go back
        to the CPU (which is exactly the penalty the evaluation charges).
        """
        if op not in ("and", "or"):
            raise ValueError(
                f"in-DRAM computing supports only and/or, not {op!r}"
            )
        aaps_before, tras_before = self.aaps, self.tras
        # copy-before-compute: operands into the designated rows
        base = self.subarray_base(subarray_index)
        self._aap(self.data_frame(subarray_index, src_a), base + self._T0)
        self._aap(self.data_frame(subarray_index, src_b), base + self._T1)
        self._set_control(subarray_index, 1 if op == "or" else 0)
        self._tra(subarray_index)
        # result out of the compute region
        self._aap(base + self._T0, self.data_frame(subarray_index, dest_row))

        aaps = self.aaps - aaps_before
        tras = self.tras - tras_before
        t_cycle = self.timing.t_rc
        latency = (aaps + tras) * t_cycle
        e_row = self.geometry.row_bits * (
            self.timing.e_activate_per_bit + self.timing.e_sense_per_bit
        )
        # AAP activates two rows; TRA three
        energy = aaps * 2 * e_row + tras * 3 * e_row
        return SDramOpResult(latency, energy, aaps, tras)

    # -- host data access (no cost accounting: test convenience) ------------------

    def write_data_row(self, subarray_index: int, row: int, bits) -> None:
        self.memory.write_bits(
            self.data_frame(subarray_index, row), np.asarray(bits, np.uint8)
        )

    def read_data_row(self, subarray_index: int, row: int, n_bits: int):
        return self.memory.read_bits(self.data_frame(subarray_index, row), n_bits)
