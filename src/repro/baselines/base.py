"""Common protocol for bitwise-operation baselines."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessPattern(enum.Enum):
    """How operand vectors are laid out / accessed.

    SEQUENTIAL: operands allocated contiguously (the PIM-aware allocator's
    best case; row-buffer-friendly streaming for the CPU).
    RANDOM: operands scattered across the memory (the "r" suffix of the
    paper's Vector specs); PIM ops degrade to inter-subarray/bank, CPU
    pays row misses at vector boundaries.
    """

    SEQUENTIAL = "sequential"
    RANDOM = "random"

    @classmethod
    def parse(cls, value) -> "AccessPattern":
        if isinstance(value, cls):
            return value
        v = str(value).lower()
        if v in ("s", "seq", "sequential"):
            return cls.SEQUENTIAL
        if v in ("r", "rand", "random"):
            return cls.RANDOM
        raise ValueError(f"unknown access pattern {value!r}")


@dataclass(frozen=True)
class BaselineCost:
    """Latency/energy of one bulk bitwise operation on a baseline."""

    latency: float  # s
    energy: float  # J
    offloaded: bool = True  # False when the scheme fell back to the CPU

    def merged(self, other: "BaselineCost") -> "BaselineCost":
        return BaselineCost(
            latency=self.latency + other.latency,
            energy=self.energy + other.energy,
            offloaded=self.offloaded and other.offloaded,
        )


class BitwiseBaseline:
    """Interface every evaluated scheme implements."""

    #: Display name used by the benchmark harness.
    name: str = "baseline"

    def bitwise_cost(
        self,
        op: str,
        n_operands: int,
        vector_bits: int,
        access: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> BaselineCost:
        """Cost of ``result = op(v_1 .. v_n)`` over n vectors of the given
        length.  Multi-operand requests are decomposed per the scheme's
        capabilities (e.g. 127 two-row steps on a 2-row scheme)."""
        raise NotImplementedError

    def supports(self, op: str) -> bool:
        """Whether the scheme executes ``op`` in memory at all."""
        raise NotImplementedError


def validate_request(op: str, n_operands: int, vector_bits: int) -> str:
    """Shared argument checking; returns the normalised op name."""
    op = str(op).lower()
    if op not in ("or", "and", "xor", "inv"):
        raise ValueError(f"unknown bitwise op {op!r}")
    min_operands = 1 if op == "inv" else 2
    if op == "inv" and n_operands != 1:
        raise ValueError("inv takes exactly one operand")
    if n_operands < min_operands:
        raise ValueError(f"{op} needs at least {min_operands} operands")
    if vector_bits < 1:
        raise ValueError("vector_bits must be positive")
    return op
