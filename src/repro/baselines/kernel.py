"""Instruction-level model of the SIMD bitwise kernel's inner loop.

The roofline CPU model bounds bulk ops by bandwidth and lane throughput;
this module adds the Sniper-flavoured detail below that: the actual
port pressure of the unrolled SSE/AVX loop --

    for each 16-byte group:           # 128-bit SIMD
        n x MOVDQA load               # one per operand
        (n-1) x POR/PAND/PXOR         # combine
        1 x MOVDQA store              # result
    + loop overhead (pointer bumps, compare, branch)

on a 4-issue out-of-order core with 2 load ports, 1 store port and 3
vector-ALU ports (Haswell-like).  The per-iteration cycle count is the
max over issue width and each port class -- the standard throughput
bound.  Cross-validated against the roofline in the tests; pluggable
into :class:`~repro.baselines.simd.SimdCpu` as the compute-leg model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.simd import CpuConfig


@dataclass(frozen=True)
class PortConfig:
    """Execution resources of one core (Haswell-like defaults)."""

    issue_width: int = 4
    load_ports: int = 2
    store_ports: int = 1
    vector_alu_ports: int = 3

    def __post_init__(self) -> None:
        for name in ("issue_width", "load_ports", "store_ports", "vector_alu_ports"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass(frozen=True)
class KernelProfile:
    """Instruction mix of one inner-loop iteration (one SIMD group)."""

    loads: int
    stores: int
    vector_ops: int
    scalar_ops: int  # pointer bumps, compare, branch

    @property
    def instructions(self) -> int:
        return self.loads + self.stores + self.vector_ops + self.scalar_ops


def bitwise_kernel_profile(n_operands: int, unroll: int = 4) -> KernelProfile:
    """The bulk-bitwise inner loop for ``n_operands`` source vectors.

    ``unroll`` groups per iteration amortises the loop overhead the way
    a compiler would (-funroll aggressive enough for a hot loop).
    """
    if n_operands < 1:
        raise ValueError("n_operands must be >= 1")
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    return KernelProfile(
        loads=n_operands * unroll,
        stores=1 * unroll,
        vector_ops=max(1, n_operands - 1) * unroll,
        scalar_ops=n_operands + 2,  # one bump per stream + cmp + branch
    )


def cycles_per_iteration(
    profile: KernelProfile, ports: PortConfig = PortConfig()
) -> float:
    """Throughput bound of one iteration: max over issue and port classes."""
    bounds = (
        profile.instructions / ports.issue_width,
        profile.loads / ports.load_ports,
        profile.stores / ports.store_ports,
        profile.vector_ops / ports.vector_alu_ports,
    )
    return max(bounds)


def kernel_compute_time(
    n_operands: int,
    vector_bits: int,
    cpu: CpuConfig = CpuConfig(),
    ports: PortConfig = PortConfig(),
    unroll: int = 4,
) -> float:
    """Compute-leg seconds for one bulk op across all cores.

    This refines the roofline's ``lane_ops * cycle / cores`` estimate in
    both directions: multi-porting lets more than one vector op retire
    per cycle (faster than the roofline at wide fan-in), while loads,
    stores and loop overhead compete for issue slots (slower at narrow
    fan-in).  Either way the port-limited ALU bound is a hard floor.
    """
    if vector_bits < 1:
        raise ValueError("vector_bits must be >= 1")
    profile = bitwise_kernel_profile(n_operands, unroll)
    groups = -(-vector_bits // cpu.simd_bits)
    iterations = -(-groups // unroll)
    cycles = iterations * cycles_per_iteration(profile, ports)
    return cycles * cpu.cycle / cpu.cores


def bottleneck(profile: KernelProfile, ports: PortConfig = PortConfig()) -> str:
    """Which resource bounds the loop ("loads", "stores", "alu", "issue")."""
    candidates = {
        "issue": profile.instructions / ports.issue_width,
        "loads": profile.loads / ports.load_ports,
        "stores": profile.stores / ports.store_ports,
        "alu": profile.vector_ops / ports.vector_alu_ports,
    }
    return max(candidates, key=candidates.get)
