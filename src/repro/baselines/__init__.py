"""Baselines the paper compares Pinatubo against (Section 6.1).

- :mod:`repro.baselines.cache` -- set-associative cache hierarchy
  simulator (the trace-driven part of our Sniper substitute).
- :mod:`repro.baselines.simd` -- the SIMD CPU baseline: a 4-core,
  4-issue out-of-order x86 at 3.3 GHz with 128-bit SSE/AVX and a
  32 KB / 256 KB / 6 MB cache hierarchy.
- :mod:`repro.baselines.sdram` -- S-DRAM: in-DRAM charge-sharing bulk
  AND/OR (copy-before-compute, 2-row only).
- :mod:`repro.baselines.acpim` -- AC-PIM: accelerator-in-memory with
  digital logic gates even for intra-subarray operations.
- :mod:`repro.baselines.ideal` -- zero-cost bitwise operations (the
  Fig. 12 "Ideal" legend).

All baselines implement the :class:`BitwiseBaseline` protocol:
``bitwise_cost(op, n_operands, vector_bits, access)`` returning a
:class:`BaselineCost`, so the workload harness can drive any of them
interchangeably.
"""

from repro.baselines.base import BaselineCost, BitwiseBaseline, AccessPattern
from repro.baselines.cache import (
    Cache,
    CacheHierarchy,
    AccessResult,
    HierarchyConfig,
)
from repro.baselines.simd import SimdCpu, CpuConfig
from repro.baselines.sdram import SDram
from repro.baselines.sdram_functional import SDramExecutor, SDramOpResult
from repro.baselines.acpim import AcPim
from repro.baselines.ideal import IdealPim
from repro.baselines.kernel import (
    PortConfig,
    bitwise_kernel_profile,
    cycles_per_iteration,
    kernel_compute_time,
)

__all__ = [
    "SDramExecutor",
    "SDramOpResult",
    "PortConfig",
    "bitwise_kernel_profile",
    "cycles_per_iteration",
    "kernel_compute_time",
    "BaselineCost",
    "BitwiseBaseline",
    "AccessPattern",
    "Cache",
    "CacheHierarchy",
    "HierarchyConfig",
    "AccessResult",
    "SimdCpu",
    "CpuConfig",
    "SDram",
    "AcPim",
    "IdealPim",
]
