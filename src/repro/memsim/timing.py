"""DDR timing and energy parameter sets.

Two parameter sets matter for the paper's evaluation:

- ``DDR3_1600``: the 65 nm 4-channel DDR3-1600 DRAM the S-DRAM baseline
  (and the SIMD baseline, when compared against S-DRAM) runs on;
- :func:`nvm_timing`: the PCM (or other NVM) main memory whose array
  timings come from the technology catalog -- the paper's case study pins
  tRCD-tCL-tWR at 18.3-8.9-151.1 ns.

Energy constants are CACTI/NVSim-era 65 nm numbers: what matters for the
evaluation is their relative magnitude (bus transfer and row activation
dwarf per-bit sensing; a DRAM access costs ~2 orders more than an ALU op).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.nvm.technology import NVMTechnology


@dataclass(frozen=True)
class TimingParams:
    """Timing and energy constants for one memory type."""

    name: str
    t_cmd: float  # s, one command slot on the channel bus
    t_rcd: float  # s, activate -> column command
    t_cl: float  # s, column command -> data (one sense step for NVM)
    t_wr: float  # s, write recovery (array write)
    t_rp: float  # s, precharge
    t_ras: float  # s, activate -> precharge minimum (row cycle component)
    bus_bandwidth: float  # B/s per channel, data bus peak
    # energies
    e_activate_per_bit: float  # J per bit opened in a row activation
    e_sense_per_bit: float  # J per bit resolved by the SAs
    e_write_per_bit: float  # J per bit programmed/restored
    e_bus_per_bit: float  # J per bit moved over the channel bus
    e_cmd: float  # J per command issued
    e_buffer_logic_per_bit: float  # J per bit through add-on buffer logic
    #: minimum activate-to-activate spacing (power-delivery limit on the
    #: wordline charge pumps).  The paper's multi-row activation issues
    #: addresses at command rate, i.e. assumes this is no worse than
    #: t_cmd (NVM activation draws no restore current); set it higher to
    #: study a power-constrained design (ablation A9).
    t_rrd: float = 0.0

    @property
    def t_rc(self) -> float:
        """Row cycle: activate + restore + precharge."""
        return self.t_ras + self.t_rp

    def transfer_time(self, n_bytes: int) -> float:
        """Channel-bus time to move ``n_bytes`` (burst-granular)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return n_bytes / self.bus_bandwidth

    def transfer_energy(self, n_bytes: int) -> float:
        return 8.0 * n_bytes * self.e_bus_per_bit


#: DDR3-1600: 800 MHz command clock, 12.8 GB/s per channel.
DDR3_1600 = TimingParams(
    name="DDR3-1600",
    t_cmd=1.25e-9,
    t_rcd=13.75e-9,
    t_cl=13.75e-9,
    t_wr=15.0e-9,
    t_rp=13.75e-9,
    t_ras=35.0e-9,
    bus_bandwidth=12.8e9,
    e_activate_per_bit=0.15e-12,  # row act+restore amortised per bit
    e_sense_per_bit=0.05e-12,
    e_write_per_bit=0.25e-12,
    e_bus_per_bit=6.0e-12,  # DDR3 I/O + termination
    e_cmd=3.0e-12,
    e_buffer_logic_per_bit=0.02e-12,
)


@lru_cache(maxsize=None)
def nvm_timing(technology: NVMTechnology, base: TimingParams = DDR3_1600) -> TimingParams:
    """Derive the NVM main-memory timing set from a technology.

    The channel bus is unchanged (same DDR3 interface; the paper drives
    PCM over the DDR bus); array timings and energies come from the cell
    technology.  NVM activation does not destructively discharge a row of
    capacitors, so its per-bit activation energy is the wordline swing
    amortised across the row, far below DRAM's restore energy.

    Both arguments are frozen dataclasses, so the derived set is memoized:
    sweeps and benchmark fixtures that build many executors per
    technology stop re-deriving it.
    """
    return TimingParams(
        name=f"NVM-{technology.name}",
        t_cmd=base.t_cmd,
        t_rcd=technology.activate_time,
        t_cl=technology.sense_time,
        t_wr=technology.write_time,
        t_rp=base.t_rp,
        t_ras=technology.activate_time + technology.sense_time,
        bus_bandwidth=base.bus_bandwidth,
        e_activate_per_bit=0.003e-12,  # WL swing only: no charge restore
        e_sense_per_bit=technology.cell_read_energy,
        e_write_per_bit=(technology.cell_set_energy + technology.cell_reset_energy)
        / 2.0,
        e_bus_per_bit=base.e_bus_per_bit,
        e_cmd=base.e_cmd,
        e_buffer_logic_per_bit=base.e_buffer_logic_per_bit,
    )
