"""Functional main memory: real bits in packed numpy arrays.

Timing and energy live in the controller/executor layer; this module is
the *data* layer.  The storage unit is the rank row ("row frame"): chips
are lock-step, so one activation opens one frame of
``geometry.row_bits`` bits.  Storage is organised as lazily-allocated
*blocks* of contiguous frames (a power-of-two row count, capped at
~1 MiB per block), so a 64 GiB memory costs only as much host RAM as
the blocks actually touched -- while batched reads and writes
(:meth:`MainMemory.gather_rows`, :meth:`MainMemory.write_frames`)
resolve to one fancy-indexed numpy operation per touched block instead
of one Python-level copy per row.

Bits are packed little-endian within bytes (``numpy.packbits`` with
``bitorder='little'``), which keeps bit ``i`` of a vector at byte
``i // 8``, bit ``i % 8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import telemetry
from repro.memsim.geometry import MemoryGeometry

#: always-live process-wide program count (all MainMemory instances);
#: per-instance/per-frame detail stays on ``total_writes`` and
#: ``write_histogram()`` -- see ``repro.runtime.wear``
_FRAME_WRITES = telemetry.counter("memsim.mainmem.frame_writes")

#: cap on one lazily-allocated block's payload bytes
_BLOCK_BYTES = 1 << 20


#: numpy ufunc per bulk bitwise op name.
_BITWISE_UFUNCS = {
    "or": np.bitwise_or,
    "and": np.bitwise_and,
    "xor": np.bitwise_xor,
}


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount_packed(packed: np.ndarray) -> int:
        """Total set bits in a packed ``uint8`` array."""
        return int(np.bitwise_count(packed).sum())

    def popcount_rows(packed_2d: np.ndarray) -> List[int]:
        """Per-row set-bit counts of a 2-D packed ``uint8`` array."""
        return np.bitwise_count(packed_2d).sum(axis=1, dtype=np.int64).tolist()

else:  # pragma: no cover - older numpy
    _POP_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8).reshape(256, 1), axis=1
    ).sum(axis=1).astype(np.uint16)

    def popcount_packed(packed: np.ndarray) -> int:
        """Total set bits in a packed ``uint8`` array."""
        return int(_POP_TABLE[packed].sum())

    def popcount_rows(packed_2d: np.ndarray) -> List[int]:
        """Per-row set-bit counts of a 2-D packed ``uint8`` array."""
        return _POP_TABLE[packed_2d].sum(axis=1, dtype=np.int64).tolist()


# Deprecated private aliases; the public names above (also exported via
# :mod:`repro.core.bitops`) are the supported surface.
_popcount = popcount_packed
_popcount_rows = popcount_rows


@dataclass(slots=True)
class RowFrame:
    """One rank row of packed bits.

    Retained for API compatibility (a handful of callers construct these
    to model a standalone row); :class:`MainMemory` itself stores rows in
    contiguous per-block arrays, not ``RowFrame`` objects.
    """

    data: np.ndarray  # uint8, length = geometry.row_bytes
    writes: int = 0  # endurance accounting

    def copy_bits(self) -> np.ndarray:
        return self.data.copy()


class MainMemory:
    """Lazily-allocated functional memory over row frames."""

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self.total_writes = 0
        self._total_rows = geometry.total_rows
        self._row_bytes = geometry.row_bytes
        # rows per block: power of two, >= 1, block payload <= _BLOCK_BYTES
        rows = max(1, _BLOCK_BYTES // max(1, self._row_bytes))
        self._block_shift = max(0, rows.bit_length() - 1)
        self._block_rows = 1 << self._block_shift
        self._block_mask = self._block_rows - 1
        #: block index -> (block_rows, row_bytes) uint8 payload
        self._blocks: Dict[int, np.ndarray] = {}
        #: block index -> (block_rows,) int64 per-frame program counts
        self._block_writes: Dict[int, np.ndarray] = {}
        self._zero_row = np.zeros(geometry.row_bytes, dtype=np.uint8)
        self._zero_row.flags.writeable = False
        self._write_listeners: List = []
        self._bulk_listeners: List = []
        self._delta_listeners: List = []

    def add_write_listener(self, callback) -> None:
        """Register ``callback(frame)`` to fire on every frame program.

        The hook sits on the single write choke point every path funnels
        through (driver execution, host writes, fallbacks), which is what
        the planning layer's precise cache invalidation rides on -- the
        same point the wear/endurance counters already observe.
        """
        self._write_listeners.append(callback)

    def add_bulk_write_listener(self, callback) -> None:
        """Register ``callback(frames)`` fired once per write call.

        The batched flavour of :meth:`add_write_listener`:
        :meth:`write_frame` fires it with a 1-tuple, :meth:`write_frames`
        once with the whole frame sequence (in write order, after the
        block lands).  Observers that only need "these frames changed" --
        the planner's version bump and cache invalidation -- amortise
        their per-call overhead across the batch instead of paying it
        per row.
        """
        self._bulk_listeners.append(callback)

    def add_delta_write_listener(self, listener) -> None:
        """Register a delta observer fired once per write call.

        ``listener`` exposes two methods: ``wants_delta(frames) -> bool``
        is asked *before* the write lands, and ``on_write(frames, farr,
        deltas)`` fires after it.  When the listener wanted the delta,
        ``farr`` is the deduplicated ``np.intp`` frame array and
        ``deltas`` the matching ``old XOR new`` packed rows; otherwise
        both are ``None`` and the call degrades to the bulk-listener
        contract.  The XOR is computed in the functional model only --
        the write path already reads and programs those rows, so delta
        capture adds no simulated cost; pricing happens when (and if)
        a repair consumes the delta.
        """
        self._delta_listeners.append(listener)

    # -- block management ----------------------------------------------------

    def _block(self, block_index: int) -> np.ndarray:
        """The payload array of a block, allocating it on first touch."""
        blk = self._blocks.get(block_index)
        if blk is None:
            blk = np.zeros(
                (self._block_rows, self._row_bytes), dtype=np.uint8
            )
            self._blocks[block_index] = blk
            self._block_writes[block_index] = np.zeros(
                self._block_rows, dtype=np.int64
            )
        return blk

    # -- frame accessors ---------------------------------------------------

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self._total_rows:
            raise ValueError(
                f"frame {frame} out of range [0, {self._total_rows})"
            )

    def frame_bytes(self, frame: int) -> np.ndarray:
        """Packed contents of a frame (zeros if never written)."""
        self._check_frame(frame)
        blk = self._blocks.get(frame >> self._block_shift)
        if blk is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        return blk[frame & self._block_mask].copy()

    def frame_view(self, frame: int) -> np.ndarray:
        """Read-only packed view of a frame (no copy; zeros if untouched)."""
        self._check_frame(frame)
        blk = self._blocks.get(frame >> self._block_shift)
        if blk is None:
            return self._zero_row
        return blk[frame & self._block_mask]

    def write_frame(self, frame: int, data: np.ndarray) -> None:
        """Overwrite a full frame with packed bytes."""
        self._check_frame(frame)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.geometry.row_bytes,):
            raise ValueError(
                f"frame data must have shape ({self.geometry.row_bytes},)"
            )
        frames = (frame,)
        wants = old = None
        if self._delta_listeners:
            wants = [li.wants_delta(frames) for li in self._delta_listeners]
            if any(wants):
                old = self.frame_bytes(frame)
        block_index = frame >> self._block_shift
        row = frame & self._block_mask
        self._block(block_index)[row] = data
        self._block_writes[block_index][row] += 1
        self.total_writes += 1
        _FRAME_WRITES.add()
        if self._write_listeners:
            for callback in self._write_listeners:
                callback(frame)
        if self._bulk_listeners:
            for callback in self._bulk_listeners:
                callback(frames)
        if self._delta_listeners:
            farr = deltas = None
            if old is not None:
                farr = np.array([frame], dtype=np.intp)
                deltas = np.bitwise_xor(old, data).reshape(1, -1)
            for want, listener in zip(wants, self._delta_listeners):
                if want:
                    listener.on_write(frames, farr, deltas)
                else:
                    listener.on_write(frames, None, None)

    def write_frames(self, frames, rows_2d: np.ndarray) -> None:
        """Batched :meth:`write_frame`: row ``i`` of ``rows_2d`` -> frame i.

        Validates the block once, then lands the rows with one
        fancy-indexed assignment per touched storage block -- same
        copy-in, same endurance bump, same listener firing as the
        per-frame path, without per-row Python work.  The compiled
        replay and serve paths funnel their stores through here.
        """
        rows_2d = np.asarray(rows_2d, dtype=np.uint8)
        n = len(frames)
        if rows_2d.shape != (n, self.geometry.row_bytes):
            raise ValueError(
                f"rows must have shape ({n}, {self.geometry.row_bytes})"
            )
        if n == 0:
            return
        farr = np.asarray(frames, dtype=np.intp)
        if int(farr.min()) < 0 or int(farr.max()) >= self._total_rows:
            raise ValueError(
                f"frame out of range [0, {self._total_rows})"
            )
        wants = old_rows = uniq = None
        if self._delta_listeners:
            wants = [li.wants_delta(frames) for li in self._delta_listeners]
            if any(wants):
                uniq = np.unique(farr)
                old_rows = self.gather_rows(uniq)
        blocks = farr >> self._block_shift
        rows = farr & self._block_mask
        first = int(blocks[0])
        if (blocks == first).all():
            blk = self._block(first)
            blk[rows] = rows_2d
            np.add.at(self._block_writes[first], rows, 1)
        else:
            for block_index in np.unique(blocks):
                sel = blocks == block_index
                blk = self._block(int(block_index))
                blk[rows[sel]] = rows_2d[sel]
                np.add.at(self._block_writes[int(block_index)], rows[sel], 1)
        if self._write_listeners:
            for frame in frames:
                for callback in self._write_listeners:
                    callback(frame)
        self.total_writes += n
        _FRAME_WRITES.add(n)
        if self._bulk_listeners:
            for callback in self._bulk_listeners:
                callback(frames)
        if self._delta_listeners:
            deltas = None
            if old_rows is not None:
                np.bitwise_xor(old_rows, self.gather_rows(uniq), out=old_rows)
                deltas = old_rows
            for want, listener in zip(wants, self._delta_listeners):
                if want:
                    listener.on_write(frames, uniq, deltas)
                else:
                    listener.on_write(frames, None, None)

    def frame_writes(self, frame: int) -> int:
        """How many times a frame has been programmed (endurance)."""
        self._check_frame(frame)
        writes = self._block_writes.get(frame >> self._block_shift)
        if writes is None:
            return 0
        return int(writes[frame & self._block_mask])

    @property
    def frames_in_use(self) -> int:
        return sum(
            int(np.count_nonzero(w)) for w in self._block_writes.values()
        )

    def write_histogram(self) -> dict:
        """{frame: program count} for every frame ever written."""
        histogram: dict = {}
        for block_index, writes in self._block_writes.items():
            base = block_index << self._block_shift
            for row in np.nonzero(writes)[0]:
                histogram[base + int(row)] = int(writes[row])
        return histogram

    # -- bit-level accessors -------------------------------------------------

    def read_bits(self, frame: int, n_bits: int = None) -> np.ndarray:
        """Unpacked bit view (uint8 0/1) of the first ``n_bits`` of a frame."""
        n_bits = self.geometry.row_bits if n_bits is None else n_bits
        if not 1 <= n_bits <= self.geometry.row_bits:
            raise ValueError("n_bits out of range")
        packed = self.frame_bytes(frame)
        return np.unpackbits(packed, bitorder="little")[:n_bits]

    def write_bits(self, frame: int, bits: np.ndarray) -> None:
        """Write unpacked bits into the start of a frame (rest zeroed)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size > self.geometry.row_bits:
            raise ValueError("bits must be 1-D and fit in a row frame")
        padded = np.zeros(self.geometry.row_bits, dtype=np.uint8)
        padded[: bits.size] = bits
        self.write_frame(frame, np.packbits(padded, bitorder="little"))

    # -- in-memory compute (functional side of PIM ops) ------------------------

    def bitwise_frames(self, op: str, src_frames) -> np.ndarray:
        """Functional n-operand bitwise op over frames; returns packed bytes."""
        srcs = list(src_frames)
        if op == "inv":
            if len(srcs) != 1:
                raise ValueError("inv takes exactly one source frame")
            return np.bitwise_not(self.frame_view(srcs[0]))
        try:
            ufunc = _BITWISE_UFUNCS[op]
        except KeyError:
            raise ValueError(f"unknown bitwise op {op!r}") from None
        if len(srcs) < 2:
            raise ValueError(f"{op} needs at least two source frames")
        out = self.frame_view(srcs[0]).copy()
        for frame in srcs[1:]:
            ufunc(out, self.frame_view(frame), out=out)
        return out

    def diff_bits(self, frame: int, data: np.ndarray) -> int:
        """Bits that differ between a frame's content and ``data``.

        The differential-write width of programming ``data`` into the
        frame (only flipped cells pay write energy/endurance).
        """
        return _popcount(np.bitwise_xor(self.frame_view(frame), data))

    # -- row-parallel variants (the batched engine's chunk loop) -------------

    def gather_rows(self, frames) -> np.ndarray:
        """Stack frames into a fresh ``(len(frames), row_bytes)`` array."""
        farr = np.asarray(frames, dtype=np.intp)
        if farr.size == 0:
            return np.empty((0, self._row_bytes), dtype=np.uint8)
        if int(farr.min()) < 0 or int(farr.max()) >= self._total_rows:
            raise ValueError(
                f"frame out of range [0, {self._total_rows})"
            )
        blocks = farr >> self._block_shift
        rows = farr & self._block_mask
        first = int(blocks[0])
        if (blocks == first).all():
            blk = self._blocks.get(first)
            if blk is None:
                return np.zeros(
                    (farr.size, self._row_bytes), dtype=np.uint8
                )
            return blk[rows]
        out = np.zeros((farr.size, self._row_bytes), dtype=np.uint8)
        for block_index in np.unique(blocks):
            blk = self._blocks.get(int(block_index))
            if blk is not None:
                sel = blocks == block_index
                out[sel] = blk[rows[sel]]
        return out

    def bitwise_rows(self, op: str, src_frame_lists) -> np.ndarray:
        """:meth:`bitwise_frames` over many frame tuples at once.

        ``src_frame_lists`` holds one frame list per operand vector; row
        ``i`` of the result is ``op`` applied across the i-th frame of
        every operand list (all numpy, no per-row Python work).
        """
        srcs = list(src_frame_lists)
        if op == "inv":
            if len(srcs) != 1:
                raise ValueError("inv takes exactly one source frame list")
            return np.bitwise_not(self.gather_rows(srcs[0]))
        try:
            ufunc = _BITWISE_UFUNCS[op]
        except KeyError:
            raise ValueError(f"unknown bitwise op {op!r}") from None
        if len(srcs) < 2:
            raise ValueError(f"{op} needs at least two source frame lists")
        out = self.gather_rows(srcs[0])
        for frames in srcs[1:]:
            ufunc(out, self.gather_rows(frames), out=out)
        return out

    def diff_bits_rows(self, frames, data_2d: np.ndarray) -> List[int]:
        """:meth:`diff_bits` per row: differential-write widths."""
        changed = np.bitwise_xor(self.gather_rows(frames), data_2d)
        return _popcount_rows(changed)

    def execute_bitwise(self, op: str, dest_frame: int, src_frames) -> None:
        """Functional compute + write-back to the destination frame."""
        self.write_frame(dest_frame, self.bitwise_frames(op, src_frames))
