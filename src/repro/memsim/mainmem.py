"""Functional main memory: real bits in packed numpy arrays.

Timing and energy live in the controller/executor layer; this module is
the *data* layer.  The storage unit is the rank row ("row frame"): chips
are lock-step, so one activation opens one frame of
``geometry.row_bits`` bits.  Frames are allocated lazily, so a 64 GiB
memory costs only as much host RAM as the frames actually touched.

Bits are packed little-endian within bytes (``numpy.packbits`` with
``bitorder='little'``), which keeps bit ``i`` of a vector at byte
``i // 8``, bit ``i % 8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import telemetry
from repro.memsim.geometry import MemoryGeometry

#: always-live process-wide program count (all MainMemory instances);
#: per-instance/per-frame detail stays on ``total_writes`` and
#: ``write_histogram()`` -- see ``repro.runtime.wear``
_FRAME_WRITES = telemetry.counter("memsim.mainmem.frame_writes")


#: numpy ufunc per bulk bitwise op name.
_BITWISE_UFUNCS = {
    "or": np.bitwise_or,
    "and": np.bitwise_and,
    "xor": np.bitwise_xor,
}


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(packed: np.ndarray) -> int:
        return int(np.bitwise_count(packed).sum())

    def _popcount_rows(packed_2d: np.ndarray) -> List[int]:
        return np.bitwise_count(packed_2d).sum(axis=1, dtype=np.int64).tolist()

else:  # pragma: no cover - older numpy
    _POP_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8).reshape(256, 1), axis=1
    ).sum(axis=1).astype(np.uint16)

    def _popcount(packed: np.ndarray) -> int:
        return int(_POP_TABLE[packed].sum())

    def _popcount_rows(packed_2d: np.ndarray) -> List[int]:
        return _POP_TABLE[packed_2d].sum(axis=1, dtype=np.int64).tolist()


@dataclass(slots=True)
class RowFrame:
    """One rank row of packed bits."""

    data: np.ndarray  # uint8, length = geometry.row_bytes
    writes: int = 0  # endurance accounting

    def copy_bits(self) -> np.ndarray:
        return self.data.copy()


class MainMemory:
    """Lazily-allocated functional memory over row frames."""

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self._frames: dict = {}
        self.total_writes = 0
        self._total_rows = geometry.total_rows
        self._zero_row = np.zeros(geometry.row_bytes, dtype=np.uint8)
        self._zero_row.flags.writeable = False
        self._write_listeners: List = []

    def add_write_listener(self, callback) -> None:
        """Register ``callback(frame)`` to fire on every frame program.

        The hook sits on the single write choke point every path funnels
        through (driver execution, host writes, fallbacks), which is what
        the planning layer's precise cache invalidation rides on -- the
        same point the wear/endurance counters already observe.
        """
        self._write_listeners.append(callback)

    # -- frame accessors ---------------------------------------------------

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self._total_rows:
            raise ValueError(
                f"frame {frame} out of range [0, {self._total_rows})"
            )

    def frame_bytes(self, frame: int) -> np.ndarray:
        """Packed contents of a frame (zeros if never written)."""
        self._check_frame(frame)
        entry = self._frames.get(frame)
        if entry is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        return entry.copy_bits()

    def frame_view(self, frame: int) -> np.ndarray:
        """Read-only packed view of a frame (no copy; zeros if untouched)."""
        self._check_frame(frame)
        entry = self._frames.get(frame)
        return self._zero_row if entry is None else entry.data

    def write_frame(self, frame: int, data: np.ndarray) -> None:
        """Overwrite a full frame with packed bytes."""
        self._check_frame(frame)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.geometry.row_bytes,):
            raise ValueError(
                f"frame data must have shape ({self.geometry.row_bytes},)"
            )
        entry = self._frames.get(frame)
        if entry is None:
            entry = RowFrame(data.copy())
            self._frames[frame] = entry
        else:
            entry.data[:] = data
        entry.writes += 1
        self.total_writes += 1
        _FRAME_WRITES.add()
        if self._write_listeners:
            for callback in self._write_listeners:
                callback(frame)

    def frame_writes(self, frame: int) -> int:
        """How many times a frame has been programmed (endurance)."""
        self._check_frame(frame)
        entry = self._frames.get(frame)
        return 0 if entry is None else entry.writes

    @property
    def frames_in_use(self) -> int:
        return len(self._frames)

    def write_histogram(self) -> dict:
        """{frame: program count} for every frame ever written."""
        return {frame: entry.writes for frame, entry in self._frames.items()}

    # -- bit-level accessors -------------------------------------------------

    def read_bits(self, frame: int, n_bits: int = None) -> np.ndarray:
        """Unpacked bit view (uint8 0/1) of the first ``n_bits`` of a frame."""
        n_bits = self.geometry.row_bits if n_bits is None else n_bits
        if not 1 <= n_bits <= self.geometry.row_bits:
            raise ValueError("n_bits out of range")
        packed = self.frame_bytes(frame)
        return np.unpackbits(packed, bitorder="little")[:n_bits]

    def write_bits(self, frame: int, bits: np.ndarray) -> None:
        """Write unpacked bits into the start of a frame (rest zeroed)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size > self.geometry.row_bits:
            raise ValueError("bits must be 1-D and fit in a row frame")
        padded = np.zeros(self.geometry.row_bits, dtype=np.uint8)
        padded[: bits.size] = bits
        self.write_frame(frame, np.packbits(padded, bitorder="little"))

    # -- in-memory compute (functional side of PIM ops) ------------------------

    def bitwise_frames(self, op: str, src_frames) -> np.ndarray:
        """Functional n-operand bitwise op over frames; returns packed bytes."""
        srcs = list(src_frames)
        if op == "inv":
            if len(srcs) != 1:
                raise ValueError("inv takes exactly one source frame")
            return np.bitwise_not(self.frame_view(srcs[0]))
        try:
            ufunc = _BITWISE_UFUNCS[op]
        except KeyError:
            raise ValueError(f"unknown bitwise op {op!r}") from None
        if len(srcs) < 2:
            raise ValueError(f"{op} needs at least two source frames")
        out = self.frame_view(srcs[0]).copy()
        for frame in srcs[1:]:
            ufunc(out, self.frame_view(frame), out=out)
        return out

    def diff_bits(self, frame: int, data: np.ndarray) -> int:
        """Bits that differ between a frame's content and ``data``.

        The differential-write width of programming ``data`` into the
        frame (only flipped cells pay write energy/endurance).
        """
        return _popcount(np.bitwise_xor(self.frame_view(frame), data))

    # -- row-parallel variants (the batched engine's chunk loop) -------------

    def gather_rows(self, frames) -> np.ndarray:
        """Stack frames into a fresh ``(len(frames), row_bytes)`` array."""
        fv = self.frame_view
        return np.stack([fv(f) for f in frames])

    def bitwise_rows(self, op: str, src_frame_lists) -> np.ndarray:
        """:meth:`bitwise_frames` over many frame tuples at once.

        ``src_frame_lists`` holds one frame list per operand vector; row
        ``i`` of the result is ``op`` applied across the i-th frame of
        every operand list (all numpy, no per-row Python work).
        """
        srcs = list(src_frame_lists)
        if op == "inv":
            if len(srcs) != 1:
                raise ValueError("inv takes exactly one source frame list")
            return np.bitwise_not(self.gather_rows(srcs[0]))
        try:
            ufunc = _BITWISE_UFUNCS[op]
        except KeyError:
            raise ValueError(f"unknown bitwise op {op!r}") from None
        if len(srcs) < 2:
            raise ValueError(f"{op} needs at least two source frame lists")
        out = self.gather_rows(srcs[0])
        for frames in srcs[1:]:
            ufunc(out, self.gather_rows(frames), out=out)
        return out

    def diff_bits_rows(self, frames, data_2d: np.ndarray) -> List[int]:
        """:meth:`diff_bits` per row: differential-write widths."""
        changed = np.bitwise_xor(self.gather_rows(frames), data_2d)
        return _popcount_rows(changed)

    def execute_bitwise(self, op: str, dest_frame: int, src_frames) -> None:
        """Functional compute + write-back to the destination frame."""
        self.write_frame(dest_frame, self.bitwise_frames(op, src_frames))
