"""Functional main memory: real bits in packed numpy arrays.

Timing and energy live in the controller/executor layer; this module is
the *data* layer.  The storage unit is the rank row ("row frame"): chips
are lock-step, so one activation opens one frame of
``geometry.row_bits`` bits.  Frames are allocated lazily, so a 64 GiB
memory costs only as much host RAM as the frames actually touched.

Bits are packed little-endian within bytes (``numpy.packbits`` with
``bitorder='little'``), which keeps bit ``i`` of a vector at byte
``i // 8``, bit ``i % 8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.geometry import MemoryGeometry


#: numpy ufunc per bulk bitwise op name.
_BITWISE_UFUNCS = {
    "or": np.bitwise_or,
    "and": np.bitwise_and,
    "xor": np.bitwise_xor,
}


@dataclass
class RowFrame:
    """One rank row of packed bits."""

    data: np.ndarray  # uint8, length = geometry.row_bytes
    writes: int = 0  # endurance accounting

    def copy_bits(self) -> np.ndarray:
        return self.data.copy()


class MainMemory:
    """Lazily-allocated functional memory over row frames."""

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        self._frames: dict = {}
        self.total_writes = 0

    # -- frame accessors ---------------------------------------------------

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self.geometry.total_rows:
            raise ValueError(
                f"frame {frame} out of range [0, {self.geometry.total_rows})"
            )

    def frame_bytes(self, frame: int) -> np.ndarray:
        """Packed contents of a frame (zeros if never written)."""
        self._check_frame(frame)
        entry = self._frames.get(frame)
        if entry is None:
            return np.zeros(self.geometry.row_bytes, dtype=np.uint8)
        return entry.copy_bits()

    def write_frame(self, frame: int, data: np.ndarray) -> None:
        """Overwrite a full frame with packed bytes."""
        self._check_frame(frame)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.geometry.row_bytes,):
            raise ValueError(
                f"frame data must have shape ({self.geometry.row_bytes},)"
            )
        entry = self._frames.get(frame)
        if entry is None:
            entry = RowFrame(data.copy())
            self._frames[frame] = entry
        else:
            entry.data[:] = data
        entry.writes += 1
        self.total_writes += 1

    def frame_writes(self, frame: int) -> int:
        """How many times a frame has been programmed (endurance)."""
        self._check_frame(frame)
        entry = self._frames.get(frame)
        return 0 if entry is None else entry.writes

    @property
    def frames_in_use(self) -> int:
        return len(self._frames)

    def write_histogram(self) -> dict:
        """{frame: program count} for every frame ever written."""
        return {frame: entry.writes for frame, entry in self._frames.items()}

    # -- bit-level accessors -------------------------------------------------

    def read_bits(self, frame: int, n_bits: int = None) -> np.ndarray:
        """Unpacked bit view (uint8 0/1) of the first ``n_bits`` of a frame."""
        n_bits = self.geometry.row_bits if n_bits is None else n_bits
        if not 1 <= n_bits <= self.geometry.row_bits:
            raise ValueError("n_bits out of range")
        packed = self.frame_bytes(frame)
        return np.unpackbits(packed, bitorder="little")[:n_bits]

    def write_bits(self, frame: int, bits: np.ndarray) -> None:
        """Write unpacked bits into the start of a frame (rest zeroed)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size > self.geometry.row_bits:
            raise ValueError("bits must be 1-D and fit in a row frame")
        padded = np.zeros(self.geometry.row_bits, dtype=np.uint8)
        padded[: bits.size] = bits
        self.write_frame(frame, np.packbits(padded, bitorder="little"))

    # -- in-memory compute (functional side of PIM ops) ------------------------

    def bitwise_frames(self, op: str, src_frames) -> np.ndarray:
        """Functional n-operand bitwise op over frames; returns packed bytes."""
        srcs = list(src_frames)
        if op == "inv":
            if len(srcs) != 1:
                raise ValueError("inv takes exactly one source frame")
            return np.bitwise_not(self.frame_bytes(srcs[0]))
        try:
            ufunc = _BITWISE_UFUNCS[op]
        except KeyError:
            raise ValueError(f"unknown bitwise op {op!r}") from None
        if len(srcs) < 2:
            raise ValueError(f"{op} needs at least two source frames")
        out = self.frame_bytes(srcs[0])
        for frame in srcs[1:]:
            ufunc(out, self.frame_bytes(frame), out=out)
        return out

    def execute_bitwise(self, op: str, dest_frame: int, src_frames) -> None:
        """Functional compute + write-back to the destination frame."""
        self.write_frame(dest_frame, self.bitwise_frames(op, src_frames))
