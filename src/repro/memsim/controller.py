"""Memory controller: command streams, mode registers, cost accounting.

The paper's hardware-control path (Fig. 4): extended PIM instructions are
translated into DDR commands plus a mode-register (MR4) write that
configures the PIM operation; the controller issues them over the channel
bus.  This module models that path analytically: executors emit
:class:`Command` streams, and :meth:`MemoryController.execute` prices each
command from the channel's :class:`TimingParams`, serialising commands
within a channel and overlapping across channels.

Command kinds map to the paper's operation anatomy:

- ``MRS``           configure PIM mode (reference select, op code)
- ``WL_RESET``      clear the LWL activation latches
- ``ACT``           open a row (first activation pays tRCD)
- ``ACT_EXTRA``     latch one more row (multi-row activation, one slot)
- ``PIM_SENSE``     resolve N serial column steps through the modified SA
- ``RD``            move a row segment to the host over the data bus
- ``WR``            program a row (tWR); optionally with bus transfer in
- ``PIM_WRITEBACK`` program the sensed result locally via the WD bypass
- ``BUF_OP``        add-on logic pass at the global row / IO buffer
- ``PRE``           precharge / close
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.memsim.bus import BusStats, DDRBus
from repro.memsim.geometry import MemoryGeometry
from repro.memsim.timing import TimingParams


class CommandKind(enum.Enum):
    MRS = "mrs"
    WL_RESET = "wl_reset"
    ACT = "act"
    ACT_EXTRA = "act_extra"
    PIM_SENSE = "pim_sense"
    RD = "rd"
    WR = "wr"
    PIM_WRITEBACK = "pim_writeback"
    BUF_OP = "buf_op"
    PRE = "pre"


@dataclass(frozen=True)
class Command:
    """One priced command.

    ``n_bits`` is the number of array bits the command touches (activation
    width, sensed bits, programmed bits or buffer-logic width);
    ``n_steps`` is the serial step count for PIM_SENSE;
    ``transfer_bytes`` is data moved over the channel bus (RD/WR only).
    """

    kind: CommandKind
    channel: int = 0
    n_bits: int = 0
    n_steps: int = 1
    transfer_bytes: int = 0

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel must be non-negative")
        if self.n_bits < 0 or self.n_steps < 1 or self.transfer_bytes < 0:
            raise ValueError("invalid command cost fields")


@dataclass
class ExecutionStats:
    """Aggregated cost of an executed command stream."""

    latency: float = 0.0  # s (critical path: max over channels)
    energy: float = 0.0  # J (sum over everything)
    counts: dict = field(default_factory=dict)
    energy_by_kind: dict = field(default_factory=dict)  # array energy only
    bus: BusStats = field(default_factory=BusStats)

    def add_count(self, kind: CommandKind, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def add_energy(self, kind: CommandKind, joules: float) -> None:
        self.energy_by_kind[kind] = self.energy_by_kind.get(kind, 0.0) + joules

    def merged(self, other: "ExecutionStats", serial: bool = True) -> "ExecutionStats":
        """Combine two stats; serial adds latencies, parallel takes max."""
        out = ExecutionStats(
            latency=(self.latency + other.latency)
            if serial
            else max(self.latency, other.latency),
            energy=self.energy + other.energy,
            counts=dict(self.counts),
            energy_by_kind=dict(self.energy_by_kind),
            bus=self.bus.merge(other.bus),
        )
        for kind, n in other.counts.items():
            out.counts[kind] = out.counts.get(kind, 0) + n
        for kind, e in other.energy_by_kind.items():
            out.energy_by_kind[kind] = out.energy_by_kind.get(kind, 0.0) + e
        return out


class MemoryController:
    """Prices command streams against one memory's timing parameters."""

    def __init__(self, geometry: MemoryGeometry, timing: TimingParams):
        self.geometry = geometry
        self.timing = timing
        self.buses = [DDRBus(timing) for _ in range(geometry.channels)]
        self.mode_register = 0  # MR4: current PIM op configuration

    def set_pim_mode(self, mode_code: int, channel: int = 0) -> ExecutionStats:
        """Issue the MRS that configures the PIM operation."""
        self.mode_register = mode_code
        return self.execute([Command(CommandKind.MRS, channel=channel)])

    # -- pricing -------------------------------------------------------------

    def _price(self, cmd: Command) -> tuple:
        """(array_latency, bus_latency, energy) of one command."""
        t = self.timing
        bus = self.buses[cmd.channel % len(self.buses)]
        if cmd.kind is CommandKind.MRS:
            return 0.0, bus.command(), 0.0
        if cmd.kind is CommandKind.WL_RESET:
            return 0.0, bus.command(), t.e_cmd
        if cmd.kind is CommandKind.ACT:
            return t.t_rcd, bus.command(), cmd.n_bits * t.e_activate_per_bit
        if cmd.kind is CommandKind.ACT_EXTRA:
            # Additional latched row: decode overlaps the open rows, so
            # the cost is one command slot plus the wordline energy --
            # unless a power-delivery activate-to-activate floor (t_rrd)
            # paces the latch sequence.
            extra = max(0.0, t.t_rrd - t.t_cmd)
            return extra, bus.command(), cmd.n_bits * t.e_activate_per_bit
        if cmd.kind is CommandKind.PIM_SENSE:
            return (
                cmd.n_steps * t.t_cl,
                0.0,
                cmd.n_bits * t.e_sense_per_bit,
            )
        if cmd.kind is CommandKind.RD:
            bus_t = bus.command() + bus.transfer(cmd.transfer_bytes)
            return t.t_cl, bus_t, cmd.n_bits * t.e_sense_per_bit
        if cmd.kind is CommandKind.WR:
            bus_t = bus.command() + bus.transfer(cmd.transfer_bytes)
            return t.t_wr, bus_t, cmd.n_bits * t.e_write_per_bit
        if cmd.kind is CommandKind.PIM_WRITEBACK:
            # WD bypass: no bus transfer at all.
            return t.t_wr, 0.0, cmd.n_bits * t.e_write_per_bit
        if cmd.kind is CommandKind.BUF_OP:
            # Add-on digital logic at the row/IO buffer: one bus-clock pass.
            return t.t_cmd, 0.0, cmd.n_bits * t.e_buffer_logic_per_bit
        if cmd.kind is CommandKind.PRE:
            return t.t_rp, bus.command(), t.e_cmd
        raise ValueError(f"unknown command kind: {cmd.kind}")

    def execute(self, commands) -> ExecutionStats:
        """Execute a command stream.

        Commands on the same channel serialise; different channels overlap.
        Bus time and array time for one command overlap is approximated as
        additive for commands with both (RD/WR), which is the conservative
        closed-page assumption.
        """
        stats = ExecutionStats()
        per_channel = {}
        bus_before = [
            BusStats(
                commands=b.stats.commands,
                data_bytes=b.stats.data_bytes,
                busy_time=b.stats.busy_time,
                energy=b.stats.energy,
            )
            for b in self.buses
        ]
        for cmd in commands:
            array_t, bus_t, energy = self._price(cmd)
            ch = cmd.channel % len(self.buses)
            per_channel[ch] = per_channel.get(ch, 0.0) + array_t + bus_t
            stats.energy += energy
            stats.add_count(cmd.kind)
            stats.add_energy(cmd.kind, energy)
        stats.latency = max(per_channel.values(), default=0.0)
        for i, bus in enumerate(self.buses):
            before = bus_before[i]
            stats.bus = stats.bus.merge(
                BusStats(
                    commands=bus.stats.commands - before.commands,
                    data_bytes=bus.stats.data_bytes - before.data_bytes,
                    busy_time=bus.stats.busy_time - before.busy_time,
                    energy=bus.stats.energy - before.energy,
                )
            )
        stats.energy += stats.bus.energy
        return stats
