"""Memory controller: command streams, mode registers, cost accounting.

The paper's hardware-control path (Fig. 4): extended PIM instructions are
translated into DDR commands plus a mode-register (MR4) write that
configures the PIM operation; the controller issues them over the channel
bus.  This module models that path analytically: executors emit
:class:`Command` streams, and :meth:`MemoryController.execute` prices each
command from the channel's :class:`TimingParams`, serialising commands
within a channel and overlapping across channels.

Command kinds map to the paper's operation anatomy:

- ``MRS``           configure PIM mode (reference select, op code)
- ``WL_RESET``      clear the LWL activation latches
- ``ACT``           open a row (first activation pays tRCD)
- ``ACT_EXTRA``     latch one more row (multi-row activation, one slot)
- ``PIM_SENSE``     resolve N serial column steps through the modified SA
- ``RD``            move a row segment to the host over the data bus
- ``WR``            program a row (tWR); optionally with bus transfer in
- ``PIM_WRITEBACK`` program the sensed result locally via the WD bypass
- ``BUF_OP``        add-on logic pass at the global row / IO buffer
- ``PRE``           precharge / close

Two pricing paths produce identical accounting:

- :meth:`MemoryController.execute` walks a Python list of
  :class:`Command` objects, with a **memoized** per-command price
  (command cost is a pure function of
  ``(kind, n_bits, n_steps, transfer_bytes)`` for a fixed timing set);
- :meth:`MemoryController.execute_batch` prices a whole
  :class:`CommandBatch` -- a structure-of-arrays command stream -- with
  numpy reductions per channel, which is what the execution engine uses
  on its hot path (one batch per logical operation instead of one
  ``execute`` call per row frame).

A :class:`CommandBatch` carries *fences*: serialisation barriers that
reproduce the latency semantics of issuing the fenced segments through
separate ``execute`` calls (segment latencies add; within a segment,
channels overlap).
"""

from __future__ import annotations

import enum
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.memsim.bus import BusStats, DDRBus
from repro.memsim.geometry import MemoryGeometry
from repro.memsim.timing import TimingParams


class CommandKind(enum.Enum):
    MRS = "mrs"
    WL_RESET = "wl_reset"
    ACT = "act"
    ACT_EXTRA = "act_extra"
    PIM_SENSE = "pim_sense"
    RD = "rd"
    WR = "wr"
    PIM_WRITEBACK = "pim_writeback"
    BUF_OP = "buf_op"
    PRE = "pre"


#: stable integer code per kind (index into the price table's arrays)
KIND_CODES: Dict[CommandKind, int] = {k: i for i, k in enumerate(CommandKind)}
_KINDS: Tuple[CommandKind, ...] = tuple(CommandKind)
_N_KINDS = len(_KINDS)

#: price-cache entries kept per controller before the cache is dropped
#: (PIM_WRITEBACK widths are data-dependent, so the key space is open)
_PRICE_CACHE_LIMIT = 1 << 16


@dataclass(frozen=True, slots=True)
class Command:
    """One priced command.

    ``n_bits`` is the number of array bits the command touches (activation
    width, sensed bits, programmed bits or buffer-logic width);
    ``n_steps`` is the serial step count for PIM_SENSE;
    ``transfer_bytes`` is data moved over the channel bus (RD/WR only).
    """

    kind: CommandKind
    channel: int = 0
    n_bits: int = 0
    n_steps: int = 1
    transfer_bytes: int = 0

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel must be non-negative")
        if self.n_bits < 0 or self.n_steps < 1 or self.transfer_bytes < 0:
            raise ValueError("invalid command cost fields")


@dataclass(slots=True)
class ExecutionStats:
    """Aggregated cost of an executed command stream."""

    latency: float = 0.0  # s (critical path: max over channels)
    energy: float = 0.0  # J (sum over everything)
    counts: Dict[CommandKind, int] = field(default_factory=dict)
    energy_by_kind: Dict[CommandKind, float] = field(default_factory=dict)
    bus: BusStats = field(default_factory=BusStats)

    def add_count(self, kind: CommandKind, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def add_energy(self, kind: CommandKind, joules: float) -> None:
        self.energy_by_kind[kind] = self.energy_by_kind.get(kind, 0.0) + joules

    def merged(self, other: "ExecutionStats", serial: bool = True) -> "ExecutionStats":
        """Combine two stats; serial adds latencies, parallel takes max."""
        out = ExecutionStats(
            latency=(self.latency + other.latency)
            if serial
            else max(self.latency, other.latency),
            energy=self.energy + other.energy,
            counts=dict(self.counts),
            energy_by_kind=dict(self.energy_by_kind),
            bus=self.bus.merge(other.bus),
        )
        for kind, n in other.counts.items():
            out.counts[kind] = out.counts.get(kind, 0) + n
        for kind, e in other.energy_by_kind.items():
            out.energy_by_kind[kind] = out.energy_by_kind.get(kind, 0.0) + e
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (enum keys become their ``.value`` strings)."""
        return {
            "latency_s": self.latency,
            "energy_j": self.energy,
            "counts": {kind.value: n for kind, n in self.counts.items()},
            "energy_by_kind": {
                kind.value: e for kind, e in self.energy_by_kind.items()
            },
            "bus": {
                "commands": self.bus.commands,
                "data_bytes": self.bus.data_bytes,
                "busy_time_s": self.bus.busy_time,
                "energy_j": self.bus.energy,
            },
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        n_cmds = sum(self.counts.values())
        return (
            f"ExecutionStats: {n_cmds} commands, "
            f"latency {self.latency:.3e}s, energy {self.energy:.3e}J, "
            f"bus {self.bus.data_bytes}B/{self.bus.commands} cmds"
        )


# ---------------------------------------------------------------------------
# engine performance instrumentation (REPRO_PERF_DEBUG=1)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PerfCounters:
    """Process-wide pricing-engine counters (profiling aid)."""

    scalar_commands: int = 0  # commands priced one at a time
    batch_commands: int = 0  # commands priced through execute_batch
    batches: int = 0  # execute_batch calls
    streams: int = 0  # execute calls
    cache_hits: int = 0  # scalar price-cache hits
    cache_misses: int = 0
    wall_s: float = 0.0  # time spent inside the pricing engine

    @property
    def commands_priced(self) -> int:
        return self.scalar_commands + self.batch_commands

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict of every counter plus the derived rates."""
        return {
            "scalar_commands": self.scalar_commands,
            "batch_commands": self.batch_commands,
            "batches": self.batches,
            "streams": self.streams,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_s": self.wall_s,
            "commands_priced": self.commands_priced,
            "cache_hit_rate": self.cache_hit_rate,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"[repro-perf] priced {self.commands_priced} commands "
            f"({self.scalar_commands} scalar / {self.streams} streams, "
            f"{self.batch_commands} batched / {self.batches} batches), "
            f"price-cache hit rate {100.0 * self.cache_hit_rate:.1f}%, "
            f"engine wall {self.wall_s:.3f}s"
        )

    def summary_line(self) -> str:
        """Deprecated alias for :meth:`summary`."""
        warnings.warn(
            "PerfCounters.summary_line() is deprecated; use summary()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.summary()


PERF_DEBUG: bool = os.environ.get("REPRO_PERF_DEBUG", "") not in ("", "0")
perf_counters = PerfCounters()

if PERF_DEBUG:  # pragma: no cover - environment-dependent
    # Legacy knob: routes through the opt-in telemetry exit report
    # instead of registering its own atexit hook.
    telemetry.report_at_exit()


# ---------------------------------------------------------------------------
# pricing table: per-kind cost coefficients for one TimingParams
# ---------------------------------------------------------------------------


class PriceTable:
    """Per-kind cost coefficients derived from one :class:`TimingParams`.

    Every command's cost decomposes as::

        array_t    = base_array[kind] + step_array[kind] * n_steps
        bus_t      = bus_cmds[kind] * t_cmd + transfer_bytes' / bandwidth
        energy     = e_fixed[kind] + n_bits * e_per_bit[kind]
        bus_energy = bus_cmds[kind] * e_cmd + 8 * transfer_bytes' * e_bus
        transfer_bytes' = transfer_bytes * has_transfer[kind]

    which is what makes both the scalar memo cache and the vectorized
    batch path possible: the coefficients are a pure function of the
    timing set, the variables come from the command.
    """

    def __init__(self, timing: TimingParams):
        self.timing = timing
        t = timing
        base = np.zeros(_N_KINDS)
        step = np.zeros(_N_KINDS)
        e_fixed = np.zeros(_N_KINDS)
        e_bit = np.zeros(_N_KINDS)
        bus_cmds = np.zeros(_N_KINDS)
        transfer = np.zeros(_N_KINDS)

        def set_row(kind, *, b=0.0, s=0.0, ef=0.0, eb=0.0, bc=0.0, tr=0.0):
            i = KIND_CODES[kind]
            base[i], step[i], e_fixed[i] = b, s, ef
            e_bit[i], bus_cmds[i], transfer[i] = eb, bc, tr

        set_row(CommandKind.MRS, bc=1.0)
        set_row(CommandKind.WL_RESET, ef=t.e_cmd, bc=1.0)
        set_row(CommandKind.ACT, b=t.t_rcd, eb=t.e_activate_per_bit, bc=1.0)
        # Additional latched row: decode overlaps the open rows, so the
        # cost is one command slot plus the wordline energy -- unless a
        # power-delivery activate-to-activate floor (t_rrd) paces the
        # latch sequence.
        set_row(
            CommandKind.ACT_EXTRA,
            b=max(0.0, t.t_rrd - t.t_cmd),
            eb=t.e_activate_per_bit,
            bc=1.0,
        )
        set_row(CommandKind.PIM_SENSE, s=t.t_cl, eb=t.e_sense_per_bit)
        set_row(CommandKind.RD, b=t.t_cl, eb=t.e_sense_per_bit, bc=1.0, tr=1.0)
        set_row(CommandKind.WR, b=t.t_wr, eb=t.e_write_per_bit, bc=1.0, tr=1.0)
        # WD bypass: no bus transfer at all.
        set_row(CommandKind.PIM_WRITEBACK, b=t.t_wr, eb=t.e_write_per_bit)
        # Add-on digital logic at the row/IO buffer: one bus-clock pass.
        set_row(CommandKind.BUF_OP, b=t.t_cmd, eb=t.e_buffer_logic_per_bit)
        set_row(CommandKind.PRE, b=t.t_rp, ef=t.e_cmd, bc=1.0)

        self.base_array = base
        self.step_array = step
        self.e_fixed = e_fixed
        self.e_per_bit = e_bit
        self.bus_cmds = bus_cmds
        self.has_transfer = transfer

    def price(
        self, kind: CommandKind, n_bits: int, n_steps: int, transfer_bytes: int
    ) -> Tuple[float, float, float, int, int, float]:
        """(array_t, bus_t, array_energy, bus_cmds, bus_bytes, bus_energy)."""
        i = KIND_CODES[kind]
        t = self.timing
        array_t = self.base_array[i] + self.step_array[i] * n_steps
        n_cmds = int(self.bus_cmds[i])
        n_bytes = transfer_bytes if self.has_transfer[i] else 0
        bus_t = n_cmds * t.t_cmd + t.transfer_time(n_bytes)
        energy = self.e_fixed[i] + n_bits * self.e_per_bit[i]
        bus_energy = n_cmds * t.e_cmd + t.transfer_energy(n_bytes)
        return (array_t, bus_t, energy, n_cmds, n_bytes, bus_energy)


# ---------------------------------------------------------------------------
# structure-of-arrays command stream
# ---------------------------------------------------------------------------


class CommandBatch:
    """A command stream stored column-wise, with serialisation fences.

    Appending is O(1) list work; :meth:`MemoryController.execute_batch`
    converts the columns to numpy arrays once and prices everything with
    per-channel reductions.  ``fence()`` closes the current segment:
    segments serialise (their latencies add), commands within a segment
    overlap across channels -- exactly the semantics of issuing each
    segment through a separate :meth:`MemoryController.execute` call.

    ``mark()`` records a logical-operation boundary so a multi-op stream
    (see :meth:`PinatuboExecutor.bitwise_many`) can be priced in one pass
    and still split its stats per operation.
    """

    __slots__ = (
        "kinds",
        "channels",
        "n_bits",
        "n_steps",
        "transfer_bytes",
        "segments",
        "_segment",
        "_open",
        "op_starts",
        "op_segment_starts",
        "price_memo",
        "price_memo_ok",
    )

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.channels: List[int] = []
        self.n_bits: List[int] = []
        self.n_steps: List[int] = []
        self.transfer_bytes: List[int] = []
        self.segments: List[int] = []
        self._segment = 0
        self._open = False  # commands appended since the last fence?
        self.op_starts: List[int] = []
        self.op_segment_starts: List[int] = []
        # see MemoryController.execute_batch: immutable (frozen) batches
        # opt into memoized pricing by setting price_memo_ok
        self.price_memo = None
        self.price_memo_ok = False

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def n_segments(self) -> int:
        return self._segment + (1 if self._open else 0)

    def add(
        self,
        kind: CommandKind,
        channel: int = 0,
        n_bits: int = 0,
        n_steps: int = 1,
        transfer_bytes: int = 0,
    ) -> None:
        """Append one command to the current segment."""
        self.kinds.append(KIND_CODES[kind])
        self.channels.append(channel)
        self.n_bits.append(n_bits)
        self.n_steps.append(n_steps)
        self.transfer_bytes.append(transfer_bytes)
        self.segments.append(self._segment)
        self._open = True

    def extend(self, commands: Sequence[Command]) -> None:
        """Append :class:`Command` objects to the current segment."""
        if not commands:
            return
        codes = KIND_CODES
        self.kinds.extend(codes[cmd.kind] for cmd in commands)
        self.channels.extend(cmd.channel for cmd in commands)
        self.n_bits.extend(cmd.n_bits for cmd in commands)
        self.n_steps.extend(cmd.n_steps for cmd in commands)
        self.transfer_bytes.extend(cmd.transfer_bytes for cmd in commands)
        self.segments.extend([self._segment] * len(commands))
        self._open = True

    def extend_rows(
        self, rows: Sequence[Tuple[int, int, int, int, int]]
    ) -> None:
        """Append pre-encoded ``(kind_code, channel, n_bits, n_steps,
        transfer_bytes)`` rows to the current segment.

        The executor's hot path: command templates are cached as these
        tuples, so appending a step is pure list work with no
        :class:`Command` objects in between.
        """
        if not rows:
            return
        kinds, channels, n_bits, n_steps, transfer = zip(*rows)
        self.kinds.extend(kinds)
        self.channels.extend(channels)
        self.n_bits.extend(n_bits)
        self.n_steps.extend(n_steps)
        self.transfer_bytes.extend(transfer)
        self.segments.extend([self._segment] * len(rows))
        self._open = True

    def fence(self) -> None:
        """Close the current segment (a serialisation barrier)."""
        if self._open:
            self._segment += 1
            self._open = False

    def mark(self) -> None:
        """Record the start of a new logical operation (after a fence)."""
        self.fence()
        self.op_starts.append(len(self.kinds))
        self.op_segment_starts.append(self._segment)


class MemoryController:
    """Prices command streams against one memory's timing parameters."""

    def __init__(self, geometry: MemoryGeometry, timing: TimingParams):
        self.geometry = geometry
        self.timing = timing
        self.buses = [DDRBus(timing) for _ in range(geometry.channels)]
        self.mode_register = 0  # MR4: current PIM op configuration
        self.price_table = PriceTable(timing)
        self._price_cache: Dict[
            Tuple[int, int, int, int], Tuple[float, float, float, int, int, float]
        ] = {}

    def set_pim_mode(self, mode_code: int, channel: int = 0) -> ExecutionStats:
        """Issue the MRS that configures the PIM operation."""
        self.mode_register = mode_code
        return self.execute([Command(CommandKind.MRS, channel=channel)])

    # -- pricing -------------------------------------------------------------

    def _price(self, cmd: Command) -> Tuple[float, float, float, int, int, float]:
        """Memoized price of one command.

        Cost is a pure function of ``(kind, n_bits, n_steps,
        transfer_bytes)`` for this controller's timing set, so the
        computed tuple is cached; the cache is dropped wholesale if it
        ever exceeds ``_PRICE_CACHE_LIMIT`` entries (write-back widths
        are data-dependent, so the key space is open-ended).
        """
        key = (KIND_CODES[cmd.kind], cmd.n_bits, cmd.n_steps, cmd.transfer_bytes)
        priced = self._price_cache.get(key)
        if priced is None:
            perf_counters.cache_misses += 1
            priced = self.price_table.price(
                cmd.kind, cmd.n_bits, cmd.n_steps, cmd.transfer_bytes
            )
            if len(self._price_cache) >= _PRICE_CACHE_LIMIT:
                self._price_cache.clear()
            self._price_cache[key] = priced
        else:
            perf_counters.cache_hits += 1
        return priced

    def execute(self, commands: Sequence[Command]) -> ExecutionStats:
        """Execute a command stream.

        Commands on the same channel serialise; different channels overlap.
        Bus time and array time for one command overlap is approximated as
        additive for commands with both (RD/WR), which is the conservative
        closed-page assumption.
        """
        t0 = time.perf_counter() if PERF_DEBUG else 0.0
        with telemetry.span("memsim.controller.execute") as sp:
            stats = ExecutionStats()
            per_channel: Dict[int, float] = {}
            n_buses = len(self.buses)
            bus = stats.bus
            for cmd in commands:
                array_t, bus_t, energy, n_cmds, n_bytes, bus_energy = self._price(cmd)
                ch = cmd.channel % n_buses
                per_channel[ch] = per_channel.get(ch, 0.0) + array_t + bus_t
                stats.energy += energy
                stats.add_count(cmd.kind)
                stats.add_energy(cmd.kind, energy)
                if n_cmds or n_bytes:
                    bus.commands += n_cmds
                    bus.data_bytes += n_bytes
                    bus.busy_time += bus_t
                    bus.energy += bus_energy
                    self.buses[ch].account(n_cmds, n_bytes, bus_t, bus_energy)
            stats.latency = max(per_channel.values(), default=0.0)
            stats.energy += bus.energy
            perf_counters.scalar_commands += len(commands)
            perf_counters.streams += 1
            if PERF_DEBUG:
                perf_counters.wall_s += time.perf_counter() - t0
            sp.add(
                latency_s=stats.latency,
                energy_j=stats.energy,
                commands=len(commands),
            )
            return stats

    def execute_batch(
        self, batch: CommandBatch, split_ops: bool = False
    ) -> "ExecutionStats | Tuple[ExecutionStats, List[ExecutionStats]]":
        """Price a whole :class:`CommandBatch` with numpy reductions.

        Produces the same accounting as issuing each fenced segment
        through :meth:`execute`: segment latencies add, channels overlap
        within a segment, and every energy/count/bus total is identical
        (up to float-summation order).

        With ``split_ops=True`` the batch's :meth:`CommandBatch.mark`
        boundaries are honoured and the result is ``(total, per_op)``
        where ``per_op[i]`` is the :class:`ExecutionStats` of the i-th
        marked operation alone.

        Batches whose columns never change (the kernel compiler's frozen
        serve/to-host batches) set ``price_memo_ok``: pricing is a pure
        function of the columns, so the first execution caches its stats
        and per-channel bus-ledger deltas on the batch, and every later
        execution replays them -- byte-identical accounting (the exact
        ints/floats the full pass computed) without the numpy reductions.
        Memoized returns are shared objects; callers must not mutate
        them (no caller of this API does).
        """
        t0 = time.perf_counter() if PERF_DEBUG else 0.0
        n = len(batch)
        if n == 0:
            empty = ExecutionStats()
            if split_ops:
                return empty, [ExecutionStats() for _ in batch.op_starts]
            return empty

        memo = getattr(batch, "price_memo", None)
        if (
            memo is not None
            and memo[0] is self
            and (not split_ops or memo[2] is not None)
        ):
            _, stats, per_op, bus_deltas = memo
            with telemetry.span("memsim.controller.execute_batch") as sp:
                for ch, n_cmds, n_bytes, bus_t, bus_e in bus_deltas:
                    self.buses[ch].account(n_cmds, n_bytes, bus_t, bus_e)
                perf_counters.batch_commands += n
                perf_counters.batches += 1
                if PERF_DEBUG:
                    perf_counters.wall_s += time.perf_counter() - t0
                sp.add(
                    latency_s=stats.latency,
                    energy_j=stats.energy,
                    commands=n,
                    segments=batch.n_segments,
                )
            if split_ops:
                return stats, per_op
            return stats

        with telemetry.span("memsim.controller.execute_batch") as sp:
            tbl = self.price_table
            t = self.timing
            n_buses = len(self.buses)

            kinds = np.asarray(batch.kinds, dtype=np.intp)
            channels = np.asarray(batch.channels, dtype=np.intp) % n_buses
            n_bits = np.asarray(batch.n_bits, dtype=np.float64)
            n_steps = np.asarray(batch.n_steps, dtype=np.float64)
            transfer = np.asarray(batch.transfer_bytes, dtype=np.float64)
            segments = np.asarray(batch.segments, dtype=np.intp)

            array_t = tbl.base_array[kinds] + tbl.step_array[kinds] * n_steps
            bus_cmds = tbl.bus_cmds[kinds]
            bus_bytes = transfer * tbl.has_transfer[kinds]
            bus_t = bus_cmds * t.t_cmd + bus_bytes / t.bus_bandwidth
            energy = tbl.e_fixed[kinds] + n_bits * tbl.e_per_bit[kinds]
            bus_energy = bus_cmds * t.e_cmd + (8.0 * t.e_bus_per_bit) * bus_bytes
            total_t = array_t + bus_t

            # latency: per (segment, channel) sums; max over channels per
            # segment; segments serialise.
            n_seg = int(segments[-1]) + 1
            seg_ch = segments * n_buses + channels
            per_seg_ch = np.bincount(
                seg_ch, weights=total_t, minlength=n_seg * n_buses
            ).reshape(n_seg, n_buses)
            seg_latency = per_seg_ch.max(axis=1)

            counts = np.bincount(kinds, minlength=_N_KINDS)
            kind_energy = np.bincount(kinds, weights=energy, minlength=_N_KINDS)

            stats = ExecutionStats()
            stats.latency = float(seg_latency.sum())
            for i in range(_N_KINDS):
                if counts[i]:
                    stats.counts[_KINDS[i]] = int(counts[i])
                    stats.energy_by_kind[_KINDS[i]] = float(kind_energy[i])
            array_energy_total = float(energy.sum())
            bus_energy_total = float(bus_energy.sum())
            stats.bus = BusStats(
                commands=int(bus_cmds.sum()),
                data_bytes=int(bus_bytes.sum()),
                busy_time=float(bus_t.sum()),
                energy=bus_energy_total,
            )
            stats.energy = array_energy_total + bus_energy_total

            # fold bus activity into the per-channel ledgers
            ch_cmds = np.bincount(channels, weights=bus_cmds, minlength=n_buses)
            ch_bytes = np.bincount(channels, weights=bus_bytes, minlength=n_buses)
            ch_bus_t = np.bincount(channels, weights=bus_t, minlength=n_buses)
            ch_bus_e = np.bincount(channels, weights=bus_energy, minlength=n_buses)
            bus_deltas = []
            for ch in range(n_buses):
                if ch_cmds[ch] or ch_bytes[ch] or ch_bus_t[ch] or ch_bus_e[ch]:
                    delta = (
                        ch,
                        int(ch_cmds[ch]),
                        int(ch_bytes[ch]),
                        float(ch_bus_t[ch]),
                        float(ch_bus_e[ch]),
                    )
                    bus_deltas.append(delta)
                    self.buses[ch].account(*delta[1:])

            perf_counters.batch_commands += n
            perf_counters.batches += 1
            if PERF_DEBUG:
                perf_counters.wall_s += time.perf_counter() - t0
            sp.add(
                latency_s=stats.latency,
                energy_j=stats.energy,
                commands=n,
                segments=batch.n_segments,
            )

            per_op = None
            if split_ops:
                per_op = self._split_op_stats(
                    batch, kinds, channels, energy, bus_cmds, bus_bytes,
                    bus_t, bus_energy, seg_latency,
                )
            if getattr(batch, "price_memo_ok", False):
                batch.price_memo = (self, stats, per_op, bus_deltas)
            if not split_ops:
                return stats
            return stats, per_op

    def _split_op_stats(
        self,
        batch: CommandBatch,
        kinds: np.ndarray,
        channels: np.ndarray,
        energy: np.ndarray,
        bus_cmds: np.ndarray,
        bus_bytes: np.ndarray,
        bus_t: np.ndarray,
        bus_energy: np.ndarray,
        seg_latency: np.ndarray,
    ) -> List[ExecutionStats]:
        """Per-operation stats for a marked batch (one numpy pass)."""
        op_starts = np.asarray(batch.op_starts, dtype=np.intp)
        n_ops = op_starts.size
        if n_ops == 0:
            return []
        n = kinds.size
        # command -> op (commands before the first mark belong to op 0)
        op_of_cmd = np.searchsorted(op_starts, np.arange(n), side="right") - 1
        np.clip(op_of_cmd, 0, None, out=op_of_cmd)
        # segment -> op
        op_seg_starts = np.asarray(batch.op_segment_starts, dtype=np.intp)
        seg_ids = np.arange(seg_latency.size)
        op_of_seg = np.searchsorted(op_seg_starts, seg_ids, side="right") - 1
        np.clip(op_of_seg, 0, None, out=op_of_seg)

        op_latency = np.bincount(op_of_seg, weights=seg_latency, minlength=n_ops)
        op_energy = np.bincount(op_of_cmd, weights=energy, minlength=n_ops)
        op_bus_cmds = np.bincount(op_of_cmd, weights=bus_cmds, minlength=n_ops)
        op_bus_bytes = np.bincount(op_of_cmd, weights=bus_bytes, minlength=n_ops)
        op_bus_t = np.bincount(op_of_cmd, weights=bus_t, minlength=n_ops)
        op_bus_e = np.bincount(op_of_cmd, weights=bus_energy, minlength=n_ops)
        key = op_of_cmd * _N_KINDS + kinds
        op_counts = np.bincount(key, minlength=n_ops * _N_KINDS).reshape(
            n_ops, _N_KINDS
        )
        op_kind_energy = np.bincount(
            key, weights=energy, minlength=n_ops * _N_KINDS
        ).reshape(n_ops, _N_KINDS)

        out: List[ExecutionStats] = []
        for i in range(n_ops):
            stats = ExecutionStats(
                latency=float(op_latency[i]),
                energy=float(op_energy[i]) + float(op_bus_e[i]),
                bus=BusStats(
                    commands=int(op_bus_cmds[i]),
                    data_bytes=int(op_bus_bytes[i]),
                    busy_time=float(op_bus_t[i]),
                    energy=float(op_bus_e[i]),
                ),
            )
            for k in range(_N_KINDS):
                if op_counts[i, k]:
                    stats.counts[_KINDS[k]] = int(op_counts[i, k])
                    stats.energy_by_kind[_KINDS[k]] = float(op_kind_energy[i, k])
            out.append(stats)
        return out
