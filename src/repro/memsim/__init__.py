"""Main-memory simulator substrate.

Models the physical/logical hierarchy of paper Fig. 3 (channel / rank /
chip / bank / subarray / mat), DDR bus and timing, a memory controller
that executes command streams, and functional memory modules that store
real bits (packed numpy arrays) so every operation's *data* is exact while
timing/energy are analytical.

- :mod:`repro.memsim.geometry` -- hierarchy dimensions and derived sizes.
- :mod:`repro.memsim.address` -- row-frame address decomposition and
  operation locality classification (intra-subarray / inter-subarray /
  inter-bank / inter-chip).
- :mod:`repro.memsim.timing` -- DDR3-1600 and PCM timing parameter sets.
- :mod:`repro.memsim.bus` -- command/data bus cost accounting.
- :mod:`repro.memsim.mainmem` -- functional NVM and DRAM main memory.
- :mod:`repro.memsim.controller` -- command-stream execution, mode
  registers, per-command latency/energy accounting.
"""

from repro.memsim.geometry import MemoryGeometry, DEFAULT_GEOMETRY, DRAM_GEOMETRY
from repro.memsim.address import (
    RowAddress,
    AddressMapper,
    OpLocality,
    classify_locality,
)
from repro.memsim.timing import DDR3_1600, TimingParams, nvm_timing
from repro.memsim.bus import DDRBus, BusStats
from repro.memsim.mainmem import MainMemory, RowFrame
from repro.memsim.controller import (
    MemoryController,
    Command,
    CommandKind,
    ExecutionStats,
)
from repro.memsim.banks import (
    BankStateMachine,
    HostAccessSimulator,
    StreamReport,
)

__all__ = [
    "MemoryGeometry",
    "DEFAULT_GEOMETRY",
    "DRAM_GEOMETRY",
    "RowAddress",
    "AddressMapper",
    "OpLocality",
    "classify_locality",
    "DDR3_1600",
    "TimingParams",
    "nvm_timing",
    "DDRBus",
    "BusStats",
    "MainMemory",
    "RowFrame",
    "MemoryController",
    "Command",
    "CommandKind",
    "ExecutionStats",
    "BankStateMachine",
    "HostAccessSimulator",
    "StreamReport",
]
