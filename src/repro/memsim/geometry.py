"""Memory hierarchy geometry (paper Fig. 3).

Main memory decomposes as: channels (parallel) > ranks (share the channel
bus) > chips (8 per rank, lock-step) > banks (8 per chip, share chip I/O)
> subarrays (share GDLs and the global row buffer) > mats (lock-step,
private SAs/WDs).

The default NVM geometry is chosen to land the paper's Fig. 9 turning
points exactly:

- a mat row is the "typical 4 Kb NVM row";
- 16 mats per subarray x 8 lock-step chips = one *rank row* of
  2^19 bits (turning point B: longer vectors span multiple ranks that
  work in serial);
- a 32:1 column MUX shares each SA, so one rank senses 2^19 / 32 = 2^14
  bits per step (turning point A: longer vectors need serial column
  steps).

The DRAM geometry models the S-DRAM baseline's memory: smaller rows
(1 KB/chip = 2^16 bits per rank row) but *unmuxed* sensing (DRAM SAs are
per-column), so a whole row resolves in one step -- the "larger row
buffer" advantage the paper concedes to in-DRAM computing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class MemoryGeometry:
    """Dimensions of one main-memory configuration."""

    channels: int = 4
    ranks_per_channel: int = 2
    chips_per_rank: int = 8
    banks_per_chip: int = 8
    subarrays_per_bank: int = 32
    rows_per_subarray: int = 512
    mats_per_subarray: int = 16
    cols_per_mat: int = 4096
    mux_ratio: int = 32  # adjacent columns sharing one SA

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "chips_per_rank",
            "banks_per_chip",
            "subarrays_per_bank",
            "rows_per_subarray",
            "mats_per_subarray",
            "cols_per_mat",
            "mux_ratio",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.cols_per_mat % self.mux_ratio != 0:
            raise ValueError("mux_ratio must divide cols_per_mat")
        if self.row_bits % 8 != 0:
            raise ValueError("rank row must be byte-aligned")

    # -- row sizes ---------------------------------------------------------

    @cached_property
    def chip_row_bits(self) -> int:
        """Bits opened per chip per activation (all mats of a subarray)."""
        return self.mats_per_subarray * self.cols_per_mat

    @cached_property
    def row_bits(self) -> int:
        """Bits in one *rank row*: the unit of activation across the
        lock-step chips (the allocation granularity of pim_malloc)."""
        return self.chips_per_rank * self.chip_row_bits

    @cached_property
    def row_bytes(self) -> int:
        return self.row_bits // 8

    @cached_property
    def sense_bits_per_step(self) -> int:
        """Bits resolved per sense step across the rank (SA count)."""
        return self.row_bits // self.mux_ratio

    # -- counts -------------------------------------------------------------

    @cached_property
    def ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @cached_property
    def banks_per_rank(self) -> int:
        return self.banks_per_chip  # chips are lock-step: one logical bank set

    @cached_property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @cached_property
    def rows_per_rank(self) -> int:
        return self.banks_per_rank * self.rows_per_bank

    @cached_property
    def total_rows(self) -> int:
        return self.ranks * self.rows_per_rank

    @cached_property
    def capacity_bits(self) -> int:
        return self.total_rows * self.row_bits

    @cached_property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8

    def rows_for_bits(self, n_bits: int) -> int:
        """Row frames needed to hold an n-bit vector (row-aligned)."""
        if n_bits < 1:
            raise ValueError("vector length must be positive")
        return -(-n_bits // self.row_bits)

    def sense_steps_for_bits(self, n_bits: int) -> int:
        """Serial column steps to sense the used part of one rank row."""
        if n_bits < 1:
            raise ValueError("bit count must be positive")
        used = min(n_bits, self.row_bits)
        return -(-used // self.sense_bits_per_step)


#: Paper-calibrated NVM main-memory geometry (64 GiB total).
DEFAULT_GEOMETRY = MemoryGeometry()

#: DDR3 DRAM geometry for the S-DRAM baseline: 1 KB row per chip,
#: per-column SAs (mux 1), same channel/rank organisation.
DRAM_GEOMETRY = MemoryGeometry(
    channels=4,
    ranks_per_channel=2,
    chips_per_rank=8,
    banks_per_chip=8,
    subarrays_per_bank=64,
    rows_per_subarray=512,
    mats_per_subarray=8,
    cols_per_mat=1024,
    mux_ratio=1,
)
