"""Per-bank state machines and a host access-stream simulator.

The analytical models assume two regimes for host traffic: row-buffer-
friendly streaming (sequential) and row-miss-per-access (random).  This
module earns those assumptions: it keeps real per-bank open-row state
with tRCD/tRP/tRAS windows, walks an address stream through the banks,
and reports the achieved row-hit rate and latency -- the open-page
memory-controller view that Sniper/CACTI would provide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.address import AddressMapper, RowAddress
from repro.memsim.geometry import DEFAULT_GEOMETRY, MemoryGeometry
from repro.memsim.timing import DDR3_1600, TimingParams


@dataclass
class BankState:
    """Open-row bookkeeping for one bank."""

    open_row: int = None
    activate_time: float = -1e18  # when the current row was opened
    ready_time: float = 0.0  # earliest next command

    @property
    def is_open(self) -> bool:
        return self.open_row is not None


@dataclass
class StreamReport:
    """Aggregate result of an access stream."""

    accesses: int
    row_hits: int
    total_latency: float  # s, completion time of the last access
    total_energy: float

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def bandwidth(self) -> float:
        """Achieved data bandwidth assuming 64 B per access (B/s)."""
        if self.total_latency <= 0:
            return 0.0
        return self.accesses * 64 / self.total_latency


class BankStateMachine:
    """Open-page policy timing for one bank.

    Row hits pipeline: once a row is open, column commands issue at the
    data-burst rate (tCCD ~ the 64 B transfer time), with the CAS latency
    overlapped -- that is what makes streaming reach the bus bandwidth.
    """

    def __init__(self, timing: TimingParams):
        self.timing = timing
        self.state = BankState()

    def access(self, row: int, now: float, is_write: bool) -> tuple:
        """Service one column access; returns (data_ready, row_hit, energy).

        ``data_ready`` is when the access's data could leave the bank;
        channel-bus arbitration happens in the caller.
        """
        t = self.timing
        start = max(now, self.state.ready_time)
        energy = 0.0
        row_hit = self.state.is_open and self.state.open_row == row
        if not row_hit:
            if self.state.is_open:
                # precharge respecting tRAS since the activate
                pre_ok = self.state.activate_time + t.t_ras
                start = max(start, pre_ok) + t.t_rp
            self.state.activate_time = start
            start += t.t_rcd
            self.state.open_row = row
            energy += 64 * 8 * t.e_activate_per_bit  # opened line share
        column_time = t.t_wr if is_write else t.t_cl
        data_ready = start + column_time
        # next column command to the open row pipelines at burst rate
        self.state.ready_time = start + t.transfer_time(64)
        energy += 64 * 8 * (t.e_write_per_bit if is_write else t.e_sense_per_bit)
        energy += t.transfer_energy(64)
        return data_ready, row_hit, energy


class HostAccessSimulator:
    """Walks a host cacheline-address stream through the banks."""

    def __init__(
        self,
        geometry: MemoryGeometry = DEFAULT_GEOMETRY,
        timing: TimingParams = DDR3_1600,
    ):
        self.geometry = geometry
        self.timing = timing
        self.mapper = AddressMapper(geometry)
        self._banks: dict = {}

    def _bank_for(self, addr: RowAddress) -> BankStateMachine:
        key = (addr.channel, addr.rank, addr.bank)
        bank = self._banks.get(key)
        if bank is None:
            bank = BankStateMachine(self.timing)
            self._banks[key] = bank
        return bank

    def run(
        self, byte_addresses, writes=None, max_outstanding: int = 10
    ) -> StreamReport:
        """Service a stream of byte addresses (64 B granularity).

        Addresses map onto row frames by ``address // row_bytes``; the
        column within the row decides nothing for open-page hits, so
        only the frame matters for the row-buffer behaviour.

        ``max_outstanding`` models the requester's memory-level
        parallelism (MSHR budget): access ``i`` cannot issue before
        access ``i - max_outstanding`` completed.  The channel data bus
        serialises transfers per channel.
        """
        addresses = list(byte_addresses)
        if writes is None:
            writes = [False] * len(addresses)
        writes = list(writes)
        if len(writes) != len(addresses):
            raise ValueError("writes mask must match addresses")
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        hits = 0
        energy = 0.0
        last_finish = 0.0
        finish_times = []
        channel_free = {}
        row_bytes = self.geometry.row_bytes
        transfer = self.timing.transfer_time(64)
        for i, (address, is_write) in enumerate(zip(addresses, writes)):
            if address < 0:
                raise ValueError("addresses must be non-negative")
            now = i * self.timing.t_cmd
            if i >= max_outstanding:
                now = max(now, finish_times[i - max_outstanding])
            frame = (address // row_bytes) % self.geometry.total_rows
            decoded = self.mapper.decode(frame)
            data_ready, row_hit, e = self._bank_for(decoded).access(
                decoded.row, now, is_write
            )
            # channel data-bus arbitration
            ch_free = channel_free.get(decoded.channel, 0.0)
            data_start = max(data_ready, ch_free)
            finish = data_start + transfer
            channel_free[decoded.channel] = finish
            finish_times.append(finish)
            hits += row_hit
            energy += e
            last_finish = max(last_finish, finish)
        return StreamReport(
            accesses=len(addresses),
            row_hits=hits,
            total_latency=last_finish,
            total_energy=energy,
        )

    def sequential_stream(self, n_accesses: int, start: int = 0) -> list:
        """64 B-strided addresses (the streaming regime)."""
        if n_accesses < 1:
            raise ValueError("n_accesses must be positive")
        return [start + 64 * i for i in range(n_accesses)]

    def random_stream(self, n_accesses: int, rng) -> list:
        """Uniformly scattered addresses (the row-miss regime)."""
        if n_accesses < 1:
            raise ValueError("n_accesses must be positive")
        top = self.geometry.capacity_bytes - 64
        return [int(rng.integers(0, top)) & ~63 for _ in range(n_accesses)]
