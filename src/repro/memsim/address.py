"""Row-frame addressing and operation locality classification.

Pinatubo routes each bitwise operation by where its operand rows live
(paper Section 4.1):

- all in one subarray            -> intra-subarray (modified SA, fastest)
- same bank, different subarrays -> inter-subarray (global row buffer logic)
- same chip, different banks     -> inter-bank (I/O buffer logic)
- different chips/ranks/channels -> unsupported in memory; the driver must
  fall back to CPU or remap (OpLocality.INTER_CHIP).

The *rank row* is the addressing unit here (chips are lock-step, so a row
spans all 8 chips of a rank); "same chip" in the paper's sense therefore
maps to "same rank" at this granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.memsim.geometry import MemoryGeometry


@dataclass(frozen=True, order=True)
class RowAddress:
    """Fully-decoded address of one rank row."""

    channel: int
    rank: int
    bank: int
    subarray: int
    row: int

    def same_subarray(self, other: "RowAddress") -> bool:
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
            and self.subarray == other.subarray
        )

    def same_bank(self, other: "RowAddress") -> bool:
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
        )

    def same_rank(self, other: "RowAddress") -> bool:
        return self.channel == other.channel and self.rank == other.rank


class OpLocality(enum.Enum):
    """Where an n-operand bitwise operation can execute."""

    INTRA_SUBARRAY = "intra_subarray"
    INTER_SUBARRAY = "inter_subarray"
    INTER_BANK = "inter_bank"
    INTER_CHIP = "inter_chip"  # not executable in memory


#: locality per :meth:`AddressMapper.locality_codes` code value
LOCALITY_BY_CODE = (
    OpLocality.INTRA_SUBARRAY,
    OpLocality.INTER_SUBARRAY,
    OpLocality.INTER_BANK,
    OpLocality.INTER_CHIP,
)


def classify_locality(addresses) -> OpLocality:
    """Classify an operand set per the paper's three operation types."""
    addrs = list(addresses)
    if not addrs:
        raise ValueError("need at least one operand address")
    first = addrs[0]
    if all(a.same_subarray(first) for a in addrs):
        return OpLocality.INTRA_SUBARRAY
    if all(a.same_bank(first) for a in addrs):
        return OpLocality.INTER_SUBARRAY
    if all(a.same_rank(first) for a in addrs):
        return OpLocality.INTER_BANK
    return OpLocality.INTER_CHIP


class AddressMapper:
    """Maps flat row-frame indices to/from decoded :class:`RowAddress`.

    The flat order is chosen so that *consecutive frames stay in one
    subarray as long as possible* (row fastest, then subarray, bank, rank,
    channel).  This is the PIM-friendly layout the paper's OS-level memory
    manager aims for: operands allocated together land in one subarray and
    qualify for intra-subarray operations.
    """

    def __init__(self, geometry: MemoryGeometry):
        self.geometry = geometry
        # hoisted strides: with the row-fastest flat order, "same
        # subarray / bank / rank" collapse to equal integer quotients
        self._rows_per_subarray = geometry.rows_per_subarray
        self._rows_per_bank = geometry.rows_per_bank
        self._rows_per_rank = geometry.rows_per_rank
        self._rows_per_channel = geometry.ranks_per_channel * geometry.rows_per_rank
        self._total_frames = geometry.total_rows
        self._decode_cache: dict = {}

    @property
    def total_frames(self) -> int:
        return self._total_frames

    def decode(self, frame: int) -> RowAddress:
        """Flat frame index -> decoded address (memoized)."""
        addr = self._decode_cache.get(frame)
        if addr is not None:
            return addr
        g = self.geometry
        if not 0 <= frame < self._total_frames:
            raise ValueError(f"frame {frame} out of range [0, {self._total_frames})")
        key = frame
        row = frame % g.rows_per_subarray
        frame //= g.rows_per_subarray
        subarray = frame % g.subarrays_per_bank
        frame //= g.subarrays_per_bank
        bank = frame % g.banks_per_rank
        frame //= g.banks_per_rank
        rank = frame % g.ranks_per_channel
        channel = frame // g.ranks_per_channel
        addr = RowAddress(channel, rank, bank, subarray, row)
        self._decode_cache[key] = addr
        return addr

    def channel_of(self, frame: int) -> int:
        """Channel a frame lives on, without a full decode."""
        if not 0 <= frame < self._total_frames:
            raise ValueError(f"frame {frame} out of range [0, {self._total_frames})")
        return frame // self._rows_per_channel

    def channels_of(self, frames) -> np.ndarray:
        """Vectorized :meth:`channel_of` over an array of frames."""
        return np.asarray(frames, dtype=np.int64) // self._rows_per_channel

    def locality_codes(self, frames_2d: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_frames` over operand columns.

        ``frames_2d`` is an ``(n_operands, n_chunks)`` matrix; returns a
        ``uint8`` code per chunk column: 0 intra-subarray, 1
        inter-subarray, 2 inter-bank, 3 inter-chip -- the index into
        :data:`LOCALITY_BY_CODE`.  Same integer-quotient tests as the
        scalar path, applied across all chunks at once; the kernel
        compiler keys program shapes on these codes.
        """
        frames_2d = np.asarray(frames_2d, dtype=np.int64)
        codes = np.full(frames_2d.shape[1], 3, dtype=np.uint8)
        q = frames_2d // self._rows_per_subarray
        same = (q == q[0]).all(axis=0)
        codes[same] = 0
        rest = ~same
        if rest.any():
            q = frames_2d // self._rows_per_bank
            hit = (q == q[0]).all(axis=0) & rest
            codes[hit] = 1
            rest &= ~hit
            if rest.any():
                q = frames_2d // self._rows_per_rank
                hit = (q == q[0]).all(axis=0) & rest
                codes[hit] = 2
        return codes

    def classify_frames(self, frames) -> OpLocality:
        """:func:`classify_locality` on flat frame indices.

        Pure integer arithmetic -- the executor's hot path uses this to
        route every combine step without materialising
        :class:`RowAddress` objects.
        """
        if not frames:
            raise ValueError("need at least one operand frame")
        first = frames[0]
        stride = self._rows_per_subarray
        base = first // stride
        for f in frames:
            if f // stride != base:
                break
        else:
            return OpLocality.INTRA_SUBARRAY
        stride = self._rows_per_bank
        base = first // stride
        for f in frames:
            if f // stride != base:
                break
        else:
            return OpLocality.INTER_SUBARRAY
        stride = self._rows_per_rank
        base = first // stride
        for f in frames:
            if f // stride != base:
                break
        else:
            return OpLocality.INTER_BANK
        return OpLocality.INTER_CHIP

    def encode(self, address: RowAddress) -> int:
        """Decoded address -> flat frame index."""
        g = self.geometry
        self._validate(address)
        frame = address.channel
        frame = frame * g.ranks_per_channel + address.rank
        frame = frame * g.banks_per_rank + address.bank
        frame = frame * g.subarrays_per_bank + address.subarray
        frame = frame * g.rows_per_subarray + address.row
        return frame

    def _validate(self, a: RowAddress) -> None:
        g = self.geometry
        checks = (
            (a.channel, g.channels, "channel"),
            (a.rank, g.ranks_per_channel, "rank"),
            (a.bank, g.banks_per_rank, "bank"),
            (a.subarray, g.subarrays_per_bank, "subarray"),
            (a.row, g.rows_per_subarray, "row"),
        )
        for value, limit, name in checks:
            if not 0 <= value < limit:
                raise ValueError(f"{name} {value} out of range [0, {limit})")
