"""DDR channel bus accounting.

The bus is the resource PIM saves: a conventional bitwise op moves every
operand row (and the result) across it, while Pinatubo sends only commands
and row addresses.  :class:`DDRBus` tracks commands issued, bytes moved,
busy time and energy per channel so the evaluation can report both the
traffic reduction and the bandwidth ceilings of paper Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.timing import TimingParams


@dataclass(slots=True)
class BusStats:
    """Accumulated bus activity."""

    commands: int = 0
    data_bytes: int = 0
    busy_time: float = 0.0  # s
    energy: float = 0.0  # J

    def merge(self, other: "BusStats") -> "BusStats":
        return BusStats(
            commands=self.commands + other.commands,
            data_bytes=self.data_bytes + other.data_bytes,
            busy_time=self.busy_time + other.busy_time,
            energy=self.energy + other.energy,
        )


class DDRBus:
    """One channel's command/address + data bus."""

    def __init__(self, timing: TimingParams):
        self.timing = timing
        self.stats = BusStats()

    def command(self, n: int = 1) -> float:
        """Issue ``n`` commands (ACT/RD/WR/MRS/...); returns the bus time."""
        if n < 0:
            raise ValueError("command count must be non-negative")
        t = n * self.timing.t_cmd
        self.stats.commands += n
        self.stats.busy_time += t
        self.stats.energy += n * self.timing.e_cmd
        return t

    def transfer(self, n_bytes: int) -> float:
        """Move ``n_bytes`` of data over the bus; returns the bus time."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        t = self.timing.transfer_time(n_bytes)
        self.stats.data_bytes += n_bytes
        self.stats.busy_time += t
        self.stats.energy += self.timing.transfer_energy(n_bytes)
        return t

    def account(
        self, commands: int, data_bytes: int, busy_time: float, energy: float
    ) -> None:
        """Fold pre-priced bus activity into this channel's ledger.

        The memoized/vectorized controller paths compute bus costs
        without calling :meth:`command`/:meth:`transfer` per command;
        this keeps the cumulative per-channel stats identical.
        """
        self.stats.commands += commands
        self.stats.data_bytes += data_bytes
        self.stats.busy_time += busy_time
        self.stats.energy += energy

    @property
    def peak_bandwidth(self) -> float:
        """Peak data bandwidth of this channel (B/s)."""
        return self.timing.bus_bandwidth

    def reset_stats(self) -> None:
        self.stats = BusStats()
