"""Whole-query analytics programs: shape-keyed, constant-parameterized.

The planner already makes a repeated ``analyze`` query cheap -- every
compare gate serves from the sub-result cache and every popcount
replays as a compiled to-host program -- but the *orchestration* still
runs in Python on every call: the kernel emitters rebuild the gate
request list, the planner re-canonicalises every expression, and each
popcount pays its raw-key lookup.  At bench_arith scale that Python
tax is ~95% of steady-state wall time.

:class:`AnalyticsCompiler` lowers the whole query one level further.
A query's **shape** -- predicate structure (columns, comparison ops,
range bounds), aggregate kind, and the tenant/table scope -- keys an
:class:`AnalyticsProgram` in the plan layer's
:class:`~repro.plan.cache.ProgramCache`.  The comparison **constants**
are runtime parameters: per ``(constants, entry mode)`` the program
holds one pricing record, captured from a genuinely steady interpreted
run (the second sighting, when every sub-expression serves from the
cache), and replays it thereafter with zero planner involvement --
one dict probe, one validity check, one accounting merge.

Honesty rules, in the same spirit as the planner's serve pricing:

- **First sighting** of a ``(constants, entry mode)`` pair always runs
  interpreted: its cache misses are real and must be priced (and they
  fill the cache).  The **second sighting** runs interpreted too and is
  recorded only if it was perfectly steady (zero cache misses, zero
  wave compilations, zero host fallbacks during the run); the third
  and later sightings replay the record.
- A record's accounting delta is exactly what the interpreted steady
  run paid (batch pricing is content-determined, so the delta is
  stable across repeats); replaying merges it into the same driver /
  host accounting the interpreted path feeds, bumps the same
  request/instruction/mode-switch tallies, and restores the
  executor's mode register to the recorded exit state.
- Replays are validated against the planner's write-version vector: a
  program snapshots the version **sum** over every leaf frame it read
  (column planes, bitmap bins, the scratch-pool constants), and a
  replay is only served while that sum -- monotone, so sum equality is
  elementwise equality -- is unchanged (with the planner's write epoch
  as the O(1) fast path).  Frees of any leaf drop the program via an
  allocator free listener, and sub-result-cache *evictions* (byte
  pressure) drop all pricing records, because the recorded serve
  pricing assumed those entries stayed resident.

Telemetry lands under ``plan.analytics.*``; per-compiler tallies are
on :class:`AnalyticsStats` (surfaced in BENCH_arith.json).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import telemetry
from repro.core.stats import OpAccounting
from repro.plan.cache import ProgramCache

__all__ = [
    "AnalyticsCompiler",
    "AnalyticsProgram",
    "AnalyticsStats",
    "analytics_program_key",
]

_PROGRAMS = telemetry.counter("plan.analytics.programs")
_COMPILES = telemetry.counter("plan.analytics.compiles")
_REPLAYS = telemetry.counter("plan.analytics.replays")
_FALLBACKS = telemetry.counter("plan.analytics.fallbacks")
_FUSED_BATCHES = telemetry.counter("plan.analytics.fused_batches")
_FUSED_REQUESTS = telemetry.counter("plan.analytics.fused_requests")
_INVALIDATIONS = telemetry.counter("plan.analytics.invalidations")

#: pricing records kept per program (LRU over (constants, entry mode))
_MAX_RECORDS = 512


def analytics_program_key(filters, aggregate, scope=None):
    """Split a filter+aggregate spec into ``(shape key, constants)``.

    The comparison constant of every ``cmp`` predicate (tuple index 3,
    in both the table's 4-tuple and the service's 5-tuple wire form) is
    a runtime parameter; everything else -- predicate kinds, columns,
    comparison ops, range bounds, bit widths, the aggregate spec and an
    optional caller ``scope`` (e.g. the tenant) -- is shape.
    """
    shape = []
    constants = []
    for pred in filters:
        if pred[0] == "cmp":
            constants.append(int(pred[3]))
            shape.append(("cmp", pred[1], pred[2]) + tuple(pred[4:]))
        else:
            shape.append(tuple(pred))
    return (scope, tuple(shape), tuple(aggregate)), tuple(constants)


class _Record:
    """One replayable steady-state execution of a program instance."""

    __slots__ = (
        "acct",  # driver (PIM) OpAccounting delta
        "host_acct",  # host-side OpAccounting delta, or None if empty
        "requests",  # DriverStats int deltas
        "instructions",
        "mode_switches",
        "mode_out",  # executor mode state after the run (op enum or None)
        "mode_code",  # controller mode register after the run
        "latency_s",  # total (pim + host) latency / energy delta
        "energy_j",
        "popcount",  # the recorded answer triple
        "value",
        "groups",
        "packed_bits",  # np.packbits of the mask, or None (table path)
        "n_bits",  # mask length, for unpacking
    )

    def unpack_bits(self) -> np.ndarray:
        """The recorded mask bits (uint8 0/1), unpacked fresh per call."""
        return np.unpackbits(self.packed_bits, count=self.n_bits)


@dataclass
class AnalyticsStats:
    """Per-compiler tallies (the ``plan.analytics.*`` counters, scoped)."""

    programs: int = 0
    compiles: int = 0
    replays: int = 0
    fallbacks: int = 0
    fused_batches: int = 0
    fused_requests: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict:
        return {
            "programs": self.programs,
            "compiles": self.compiles,
            "replays": self.replays,
            "fallbacks": self.fallbacks,
            "fused_batches": self.fused_batches,
            "fused_requests": self.fused_requests,
            "invalidations": self.invalidations,
        }


class AnalyticsProgram:
    """One compiled query shape and its per-constants pricing records."""

    __slots__ = (
        "key",
        "leaf_farr",  # np.intp array of every frame the query reads
        "vsum",  # planner version sum over leaf_farr at record time
        "epoch",  # planner write epoch at last successful validation
        "evictions",  # SubResultCache eviction count at record time
        "records",  # OrderedDict[(constants, entry_mode)] -> _Record
        "sightings",  # (constants, entry_mode) pairs seen exactly once
        "scratch_high_water",  # peak scratch planes of the fallback runs
        "batch_token",  # fusion: engine batch this program validated in
        "batch_replays",  # fusion: replays inside the current batch
    )

    def __init__(self, key):
        self.key = key
        self.leaf_farr: Optional[np.ndarray] = None
        self.vsum = -1
        self.epoch = -1
        self.evictions = -1
        self.records: "OrderedDict[tuple, _Record]" = OrderedDict()
        self.sightings: Set[tuple] = set()
        self.scratch_high_water = 0
        self.batch_token = -1
        self.batch_replays = 0


class _Tape:
    """Pre-run snapshot of one interpreted fallback, for recording."""

    __slots__ = (
        "compiler",
        "program",
        "entry",
        "recording",
        "leaves_fn",
        "_pim",
        "_host",
        "_requests",
        "_instructions",
        "_mode_switches",
        "_cache_misses",
        "_compilations",
        "_host_fallbacks",
    )

    def __init__(self, compiler, program, entry, recording, leaves_fn):
        self.compiler = compiler
        self.program = program
        self.entry = entry
        self.recording = recording
        self.leaves_fn = leaves_fn
        if recording:
            runtime = compiler.runtime
            self._pim = _acct_snapshot(runtime.driver.stats.accounting)
            self._host = _acct_snapshot(runtime.host_accounting)
            stats = runtime.driver.stats
            self._requests = stats.requests
            self._instructions = stats.instructions
            self._mode_switches = stats.mode_switches
            self._host_fallbacks = stats.host_fallbacks
            plan = compiler.planner.stats
            self._cache_misses = plan.cache_misses
            self._compilations = plan.compilations

    @property
    def scratch_high_water(self) -> int:
        """Recorded scratch footprint of this shape (0 when unknown)."""
        return self.program.scratch_high_water

    def finish(
        self,
        popcount: int,
        value: float,
        groups: Optional[tuple],
        bits: Optional[np.ndarray] = None,
        high_water: int = 0,
    ) -> bool:
        """Close the tape after the interpreted run.

        Returns True when a pricing record was captured; a non-steady
        run (any cache miss, compilation or host fallback happened)
        leaves the sighting marked so the next clean run records.
        """
        program = self.program
        if high_water > program.scratch_high_water:
            program.scratch_high_water = high_water
        if not self.recording:
            return False
        compiler = self.compiler
        runtime = compiler.runtime
        stats = runtime.driver.stats
        plan = compiler.planner.stats
        if (
            plan.cache_misses != self._cache_misses
            or plan.compilations != self._compilations
            or stats.host_fallbacks != self._host_fallbacks
        ):
            return False  # not steady state: stay interpreted, retry later
        rec = _Record()
        rec.acct = _acct_delta(stats.accounting, self._pim)
        host_delta = _acct_delta(runtime.host_accounting, self._host)
        rec.host_acct = (
            host_delta
            if (
                host_delta.latency
                or host_delta.energy
                or host_delta.bus_commands
            )
            else None
        )
        rec.requests = stats.requests - self._requests
        rec.instructions = stats.instructions - self._instructions
        rec.mode_switches = stats.mode_switches - self._mode_switches
        executor = compiler.executor
        rec.mode_out = executor._current_mode
        rec.mode_code = executor.controller.mode_register
        host = rec.host_acct
        rec.latency_s = rec.acct.latency + (host.latency if host else 0.0)
        rec.energy_j = rec.acct.energy + (host.energy if host else 0.0)
        rec.popcount = int(popcount)
        rec.value = value
        rec.groups = groups
        if bits is None:
            rec.packed_bits = None
            rec.n_bits = 0
        else:
            rec.packed_bits = np.packbits(bits)
            rec.n_bits = int(bits.size)
        if program.leaf_farr is None:
            compiler._bind_leaves(program, self.leaves_fn())
        program.records[self.entry] = rec
        program.records.move_to_end(self.entry)
        while len(program.records) > _MAX_RECORDS:
            program.records.popitem(last=False)
        program.sightings.discard(self.entry)
        planner = compiler.planner
        program.vsum = int(planner._versions[program.leaf_farr].sum())
        program.epoch = planner._write_epoch
        program.evictions = planner.cache.evictions
        compiler.stats.compiles += 1
        _COMPILES.add()
        return True


def _acct_snapshot(acct: OpAccounting) -> tuple:
    """Value snapshot of an accounting object (it may mutate in place)."""
    return (
        acct.latency,
        acct.energy,
        acct.in_memory_steps,
        acct.bus_data_bytes,
        acct.bus_commands,
        acct.bits_processed,
        dict(acct.locality_counts),
        dict(acct.energy_by_kind),
    )


def _acct_delta(after: OpAccounting, before: tuple) -> OpAccounting:
    """``after - before`` as a fresh OpAccounting (zero entries dropped)."""
    (lat, en, steps, bus_b, bus_c, bits, locs, kinds) = before
    delta = OpAccounting(
        latency=after.latency - lat,
        energy=after.energy - en,
        in_memory_steps=after.in_memory_steps - steps,
        bus_data_bytes=after.bus_data_bytes - bus_b,
        bus_commands=after.bus_commands - bus_c,
        bits_processed=after.bits_processed - bits,
    )
    for loc, n in after.locality_counts.items():
        d = n - locs.get(loc, 0)
        if d:
            delta.locality_counts[loc] = d
    for kind, e in after.energy_by_kind.items():
        d = e - kinds.get(kind, 0.0)
        if d:
            delta.energy_by_kind[kind] = d
    return delta


class AnalyticsCompiler:
    """Shape-keyed whole-query program cache for the ``analyze`` verb.

    Disabled (every call a fast no-op) unless the runtime has a planner
    with wave compilation on -- the compiler sits strictly *above* the
    planner and relies on its version vector for validation and on its
    steady-state serve pricing for the recorded deltas.
    """

    def __init__(self, runtime, max_programs: int = 1024):
        planner = getattr(runtime, "planner", None)
        self.runtime = runtime
        self.planner = planner
        self.enabled = planner is not None and planner.compile_enabled
        self.stats = AnalyticsStats()
        #: shape key -> AnalyticsProgram, bounded LRU (the same store
        #: the wave compiler uses for its programs)
        self.programs = ProgramCache(max_programs)
        self._frame_index: Dict[int, Set[tuple]] = {}
        self._token = 0
        if self.enabled:
            self.executor = runtime.system.executor
            runtime.allocator.add_free_listener(self._on_free)

    # -- batching (engine fusion) --------------------------------------------

    def new_batch(self) -> int:
        """Start a fused-replay scope (one scheduler dispatch batch).

        Within one token, a program validates once and every further
        same-program replay rides that validation; two or more replays
        of one program in one batch count as a fused batch.
        """
        self._token += 1
        return self._token

    # -- the hot path --------------------------------------------------------

    def replay(self, key, constants, token: Optional[int] = None):
        """Serve one analyze from its program, or return ``None``.

        On a hit the recorded accounting is already applied: the driver
        and host accounting advance by exactly what the steady
        interpreted run paid, and the executor's mode state is restored
        to the recorded exit state (entry mode is part of the record
        key, so the delta's MRS content always matches).
        """
        if not self.enabled:
            return None
        program = self.programs.get(key)
        if program is None or program.leaf_farr is None:
            return None
        entry = (constants, self.executor._current_mode)
        rec = program.records.get(entry)
        if rec is None or not self._valid(program, token):
            return None
        program.records.move_to_end(entry)
        self._apply(rec)
        if token is not None:
            program.batch_replays += 1
            if program.batch_replays == 2:
                self.stats.fused_batches += 1
                _FUSED_BATCHES.add()
            if program.batch_replays >= 2:
                self.stats.fused_requests += 1
                _FUSED_REQUESTS.add()
        self.stats.replays += 1
        _REPLAYS.add()
        return rec

    def observe(self, key, constants, leaves_fn: Callable[[], list]):
        """Pre-run hook for the interpreted fallback path.

        Creates the program shell on first sight of a shape, marks the
        ``(constants, entry mode)`` sighting, and returns a
        :class:`_Tape` -- recording on the pair's second sighting --
        or ``None`` when the compiler is disabled.  ``leaves_fn`` must
        return every resident handle the query reads (column planes,
        bins, pool constants); it is only called when a record is
        actually captured, after the run, so lazily-created constants
        exist by then.
        """
        if not self.enabled:
            return None
        self.stats.fallbacks += 1
        _FALLBACKS.add()
        program = self.programs.get(key)
        if program is None:
            program = AnalyticsProgram(key)
            self.programs.put(key, program)
            self.stats.programs += 1
            _PROGRAMS.add()
        entry = (constants, self.executor._current_mode)
        recording = entry in program.sightings
        if not recording:
            program.sightings.add(entry)
            if len(program.sightings) > _MAX_RECORDS:
                program.sightings.pop()
        return _Tape(self, program, entry, recording, leaves_fn)

    # -- validation / invalidation -------------------------------------------

    def _valid(self, program: AnalyticsProgram, token: Optional[int]) -> bool:
        if token is not None and program.batch_token == token:
            return True
        planner = self.planner
        if program.evictions != planner.cache.evictions:
            # byte pressure evicted cached sub-results somewhere: the
            # recorded serve pricing may assume entries that are gone
            self._reset(program)
            return False
        if program.epoch != planner._write_epoch:
            vsum = int(planner._versions[program.leaf_farr].sum())
            if vsum != program.vsum:
                self._reset(program)
                return False
            program.epoch = planner._write_epoch
        if token is not None:
            program.batch_token = token
            program.batch_replays = 0
        return True

    def _reset(self, program: AnalyticsProgram) -> None:
        """Drop a program's records (shape + leaves survive)."""
        program.records.clear()
        program.sightings.clear()
        program.vsum = -1
        program.epoch = -1
        program.evictions = -1
        program.batch_token = -1
        self.stats.invalidations += 1
        _INVALIDATIONS.add()

    def _bind_leaves(self, program: AnalyticsProgram, handles) -> None:
        frames: List[int] = []
        for handle in handles:
            frames.extend(handle.frames)
        farr = np.unique(np.asarray(frames, dtype=np.intp))
        program.leaf_farr = farr
        index = self._frame_index
        key = program.key
        for f in farr.tolist():
            keys = index.get(f)
            if keys is None:
                index[f] = {key}
            else:
                keys.add(key)

    def _on_free(self, handle) -> None:
        """Allocator free hook: drop programs reading freed frames."""
        index = self._frame_index
        if not index:
            return
        dropped: Set[tuple] = set()
        for f in handle.frames:
            keys = index.get(f)
            if keys:
                dropped.update(keys)
        for key in dropped:
            program = self.programs.discard(key)
            if program is None or program.leaf_farr is None:
                continue
            for f in program.leaf_farr.tolist():
                keys = index.get(f)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del index[f]
            self.stats.invalidations += 1
            _INVALIDATIONS.add()

    # -- replay application --------------------------------------------------

    def _apply(self, rec: _Record) -> None:
        runtime = self.runtime
        stats = runtime.driver.stats
        stats.accounting = stats.accounting.merged(rec.acct)
        if rec.host_acct is not None:
            runtime.host_accounting = runtime.host_accounting.merged(
                rec.host_acct
            )
        stats.requests += rec.requests
        stats.instructions += rec.instructions
        stats.mode_switches += rec.mode_switches
        executor = self.executor
        executor._current_mode = rec.mode_out
        executor.controller.mode_register = rec.mode_code

    def to_dict(self) -> dict:
        """JSON-ready tallies: compiler stats + the program cache's."""
        out = self.stats.to_dict()
        out["program_cache"] = self.programs.to_dict()
        return out
