"""repro.arith: bit-serial arithmetic on the bulk-bitwise substrate.

The paper's substrate computes OR/AND/XOR/INV on whole rows inside the
NVM arrays.  This package composes those four gates into *numbers*:

- :mod:`repro.arith.bitslice` -- the transposed bit-slice layout
  (``k`` resident planes of ``n`` elements each);
- :mod:`repro.arith.kernels` -- ripple-carry add/sub, predicated
  compares (constant and tensor-tensor), and popcount-based masked
  COUNT/SUM/histogram aggregation, every gate priced by the simulated
  controller and routed through the plan compiler;
- :mod:`repro.arith.oracle` -- the plain-numpy references the
  differential tests pin the kernels against.
"""

from repro.arith.bitslice import BitSliceTensor
from repro.arith.kernels import (
    CMP_OPS,
    ScratchPool,
    combine_masks,
    compare,
    compare_const,
    copy_plane,
    mask_bits,
    mask_count,
    masked_histogram,
    masked_sum,
    ripple_add,
    ripple_sub,
)
from repro.arith.oracle import (
    oracle_add,
    oracle_compare,
    oracle_compare_const,
    oracle_histogram,
    oracle_masked_sum,
    oracle_sub,
)

__all__ = [
    "BitSliceTensor",
    "CMP_OPS",
    "ScratchPool",
    "combine_masks",
    "compare",
    "compare_const",
    "copy_plane",
    "mask_bits",
    "mask_count",
    "masked_histogram",
    "masked_sum",
    "oracle_add",
    "oracle_compare",
    "oracle_compare_const",
    "oracle_histogram",
    "oracle_masked_sum",
    "oracle_sub",
    "ripple_add",
    "ripple_sub",
]
