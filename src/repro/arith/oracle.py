"""Plain-numpy references for the bit-serial arithmetic kernels.

Every kernel in :mod:`repro.arith.kernels` must match these exactly --
the differential tests draw randomized inputs and compare bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "oracle_add",
    "oracle_sub",
    "oracle_compare_const",
    "oracle_compare",
    "oracle_masked_sum",
    "oracle_histogram",
]

_CMP = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
}


def oracle_add(a, b) -> np.ndarray:
    """Exact sums (the kernel returns ``k + 1`` planes, so no wrap)."""
    return np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)


def oracle_sub(a, b, n_bits: int) -> np.ndarray:
    """``a - b`` modulo ``2^n_bits`` (two's complement wraparound)."""
    diff = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return diff & ((1 << n_bits) - 1)


def oracle_compare_const(a, op: str, value: int) -> np.ndarray:
    """Boolean mask of ``a <op> value`` as uint8 bits."""
    return _CMP[op](np.asarray(a, dtype=np.int64), value).astype(np.uint8)


def oracle_compare(a, op: str, b) -> np.ndarray:
    """Boolean mask of ``a <op> b`` element-wise as uint8 bits."""
    return _CMP[op](
        np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
    ).astype(np.uint8)


def oracle_masked_sum(values, mask_bits) -> int:
    """Sum of ``values`` where ``mask_bits`` is set."""
    values = np.asarray(values, dtype=np.int64)
    mask = np.asarray(mask_bits, dtype=bool)
    return int(values[mask].sum())


def oracle_histogram(bin_indices, n_bins: int, mask_bits=None) -> list:
    """Per-bin counts of equality-encoded indices, optionally masked."""
    idx = np.asarray(bin_indices, dtype=np.int64)
    if mask_bits is not None:
        idx = idx[np.asarray(mask_bits, dtype=bool)]
    return np.bincount(idx, minlength=n_bins).tolist()[:n_bins]
