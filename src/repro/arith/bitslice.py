"""Transposed bit-slice tensors resident in PIM memory.

A :class:`BitSliceTensor` stores ``n`` unsigned ``k``-bit integers as
``k`` bit-planes: plane ``j`` is one resident bit-vector whose element
``i`` is bit ``j`` of value ``i``.  This is the vertical / transposed
layout bit-serial PIM arithmetic wants -- one bulk bitwise op over a
plane touches bit ``j`` of every element at once, so the kernels in
:mod:`repro.arith.kernels` advance ``n`` ripple carries per gate.

Loading and reading back cross the I/O bus at host cost
(:meth:`~repro.runtime.api.PimRuntime.pim_write` /
:meth:`~repro.runtime.api.PimRuntime.pim_read`); everything between is
in-memory.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["BitSliceTensor"]


class BitSliceTensor:
    """``n`` unsigned ``k``-bit integers as ``k`` resident bit-planes."""

    def __init__(self, runtime, planes: List, n_elems: int):
        if not planes:
            raise ValueError("need at least one plane")
        self.runtime = runtime
        self.planes = planes
        self.n_elems = int(n_elems)

    @property
    def k(self) -> int:
        """Bit width (number of planes)."""
        return len(self.planes)

    @classmethod
    def from_ints(
        cls,
        runtime,
        values: Sequence[int],
        n_bits: int,
        group: str = "arith",
    ) -> "BitSliceTensor":
        """Load unsigned integers, transposing host-side into planes."""
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("values must be a non-empty 1-D sequence")
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if values.min() < 0 or values.max() >= (1 << n_bits):
            raise ValueError(
                f"values out of range for {n_bits}-bit unsigned integers"
            )
        planes = []
        for j in range(n_bits):
            bits = ((values >> j) & 1).astype(np.uint8)
            handle = runtime.pim_malloc(values.size, group)
            runtime.pim_write(handle, bits)
            planes.append(handle)
        return cls(runtime, planes, values.size)

    def to_ints(self) -> np.ndarray:
        """Read every plane back and recompose the integers (bus cost)."""
        values = np.zeros(self.n_elems, dtype=np.int64)
        for j, handle in enumerate(self.planes):
            bits = self.runtime.pim_read(handle, self.n_elems)
            values += bits.astype(np.int64) << j
        return values

    def free(self) -> None:
        for handle in self.planes:
            self.runtime.pim_free(handle)
        self.planes = []
