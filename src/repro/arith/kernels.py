"""Bit-serial arithmetic kernels on the bulk-bitwise substrate.

Everything here is lowered to the four in-memory primitives the paper
provides -- OR / AND / XOR / INV -- issued through the
:class:`~repro.runtime.api.PimRuntime` so every gate is priced by the
real controller (no side-channel arithmetic on the hot path).  Numbers
live in the *transposed* bit-slice layout (see
:mod:`repro.arith.bitslice`): plane ``j`` is one resident bit-vector
holding bit ``j`` of every element, so one in-memory op over a plane
advances a full column of ``n`` ripple-carry adders or borrow chains
at once -- the classic bit-serial SIMD trade (latency linear in the
bit width ``k``, throughput linear in ``n``).

Gate-level recipes (all verified against the numpy oracles in
:mod:`repro.arith.oracle`):

- **add** ``a + b``: half-add planes ``t_j = a_j XOR b_j``,
  ``g_j = a_j AND b_j`` first (one batch, carry-free), then the ripple
  ``s_j = t_j XOR c_j``; ``c_{j+1} = g_j OR (t_j AND c_j)``.
- **sub** ``a - b (mod 2^k)``: ``a + INV(b) + 1`` -- the carry-in is
  the resident all-ones constant.
- **compare-const** ``a < K``: borrow chain from the LSB;
  ``K_j = 1`` -> ``borrow' = INV(a_j) OR borrow``,
  ``K_j = 0`` -> ``borrow' = INV(a_j) AND borrow``; leading
  ``K_j = 0`` planes keep the borrow at constant zero, so the chain
  really starts at the lowest set bit of ``K``.
- **compare tensor** ``a < b``:
  ``borrow' = (INV(a_j) AND b_j) OR (borrow AND INV(a_j XOR b_j))``.
- **aggregations**: masked COUNT / SUM / histogram reduce through
  :meth:`~repro.runtime.api.PimRuntime.pim_popcount`, the to-host op
  that streams the result over the I/O bus and counts it host-side.

Dependent gates are still submitted as one
:meth:`~repro.runtime.api.PimRuntime.pim_op_many` stream -- the driver
guarantees results identical to sequential issue, and the planner's
hazard tracking splits waves where a scratch destination is re-read.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

CMP_OPS = ("lt", "le", "gt", "ge", "eq")


class ScratchPool:
    """Recycling allocator of same-sized scratch planes plus the two
    resident constants (all-zeros / all-ones) the kernels need.

    ``take`` hands out a scratch vector (allocating on first use),
    ``recycle`` returns every outstanding one to the pool -- call it
    once per query, after the results have been reduced or copied out.
    Constants are allocated lazily and never recycled.

    The pool keeps honest books: :attr:`in_use` counts outstanding
    scratch planes, :attr:`high_water` the lifetime peak, and
    :meth:`assert_drained` verifies after a query that every plane came
    back (conservation check included), so a kernel that forgets to
    recycle -- or recycles into the wrong pool -- fails loudly instead
    of silently growing the pool.  :meth:`preallocate` warms the free
    list to a known program's footprint so a fallback run never
    allocates mid-query.

    Plane hand-out is **canonical**: every plane carries its allocation
    index and ``take`` always returns the lowest-indexed free plane, so
    a query takes the *same* physical planes on every run regardless of
    pool history or later growth.  Placement-dependent op pricing
    (same-subarray vs inter-subarray locality) is therefore a pure
    function of the query shape -- the invariant the analytics
    compiler's recorded pricing and the benchmark's cross-arm simulated
    parity both rest on.
    """

    def __init__(self, runtime, n_bits: int, group: str = "arith"):
        self.runtime = runtime
        self.n_bits = int(n_bits)
        self.group = group
        self._free: List = []
        self._taken: List = []
        self._reserved: List = []
        self._constants: List = []
        self._index: dict = {}  # id(handle) -> allocation index
        self._allocated = 0  # scratch planes ever created (constants aside)
        self._high_water = 0  # peak simultaneous in_use

    def _new_plane(self):
        handle = self.runtime.pim_malloc(self.n_bits, self.group)
        self._index[id(handle)] = self._allocated
        self._allocated += 1
        return handle

    def take(self):
        if self._free:
            handle = self._free.pop()
        else:
            handle = self._new_plane()
        self._taken.append(handle)
        if len(self._taken) > self._high_water:
            self._high_water = len(self._taken)
        return handle

    def reserve(self, handle) -> None:
        """Keep ``handle`` alive across the next :meth:`recycle`."""
        self._taken.remove(handle)
        self._reserved.append(handle)

    def recycle(self) -> None:
        self._free.extend(self._taken)
        self._taken.clear()
        # canonical order: pop() must return the lowest allocation index
        self._free.sort(key=lambda h: -self._index[id(h)])

    @property
    def in_use(self) -> int:
        """Scratch planes handed out and not yet recycled."""
        return len(self._taken)

    @property
    def allocated(self) -> int:
        """Scratch planes ever created by this pool (constants aside)."""
        return self._allocated

    @property
    def high_water(self) -> int:
        """Lifetime peak of :attr:`in_use`."""
        return self._high_water

    def preallocate(self, n_planes: int) -> None:
        """Grow the pool to at least ``n_planes`` scratch planes.

        Called by the analytics compiler with a program's recorded
        scratch footprint, so replaying a shape's interpreted fallback
        never pays ``pim_malloc`` inside the measured query.
        """
        grown = False
        while self._allocated < n_planes:
            self._free.append(self._new_plane())
            grown = True
        if grown:
            self._free.sort(key=lambda h: -self._index[id(h)])

    def stats(self) -> dict:
        """JSON-ready accounting snapshot."""
        return {
            "allocated": self._allocated,
            "in_use": self.in_use,
            "free": len(self._free),
            "reserved": len(self._reserved),
            "high_water": self._high_water,
        }

    def assert_drained(self) -> None:
        """Post-query leak check: nothing outstanding, books balanced."""
        if self._taken:
            raise AssertionError(
                f"scratch pool leak: {len(self._taken)} plane(s) still "
                f"taken after recycle ({self.stats()})"
            )
        if len(self._free) + len(self._reserved) != self._allocated:
            raise AssertionError(
                f"scratch pool books out of balance: "
                f"{len(self._free)} free + {len(self._reserved)} reserved "
                f"!= {self._allocated} allocated ({self.stats()})"
            )

    def free_all(self) -> None:
        """Release every pool-owned vector, constants included."""
        for handle in (
            self._free + self._taken + self._reserved + self._constants
        ):
            self.runtime.pim_free(handle)
        self._free.clear()
        self._taken.clear()
        self._reserved.clear()
        self._constants.clear()
        self._index.clear()
        self._allocated = 0

    @property
    def zero(self):
        """Resident all-zeros plane (lazy; written once over the bus)."""
        self._ensure_constants()
        return self._constants[0]

    @property
    def ones(self):
        """Resident all-ones plane (lazy; written once over the bus)."""
        self._ensure_constants()
        return self._constants[1]

    def _ensure_constants(self) -> None:
        if self._constants:
            return
        zero = self.runtime.pim_malloc(self.n_bits, self.group)
        ones = self.runtime.pim_malloc(self.n_bits, self.group)
        self.runtime.pim_write(zero, np.zeros(self.n_bits, dtype=np.uint8))
        self.runtime.pim_write(ones, np.ones(self.n_bits, dtype=np.uint8))
        self._constants.extend([zero, ones])


def copy_plane(pool: ScratchPool, source, requests: Optional[list] = None):
    """Scratch copy of a plane: ``OR`` with the zero constant (the
    repo's canonical in-memory copy idiom)."""
    dest = pool.take()
    if requests is None:
        pool.runtime.pim_op("or", dest, [source, pool.zero])
    else:
        requests.append(("or", dest, [source, pool.zero]))
    return dest


def ripple_add(
    pool: ScratchPool,
    a_planes: Sequence,
    b_planes: Sequence,
    carry_in=None,
    requests: Optional[list] = None,
) -> List:
    """``a + b`` over bit-slice planes; returns ``k + 1`` result planes.

    ``carry_in`` (a resident plane, e.g. ``pool.ones`` for two's
    complement subtraction) seeds the LSB carry; without it the LSB is
    a half add.  All ``3k - 1`` (or ``3k + 1``) gates go out as one
    batched command stream; with a caller-owned ``requests`` list they
    are appended instead, so a larger kernel (a whole analytics query,
    a fused sub+add chain) lands as a single planner wave.
    """
    if len(a_planes) != len(b_planes):
        raise ValueError(
            f"width mismatch: {len(a_planes)} vs {len(b_planes)} planes"
        )
    k = len(a_planes)
    if k == 0:
        raise ValueError("need at least one plane")
    issue = requests is None
    if issue:
        requests = []
    t_planes, g_planes = [], []
    for a_j, b_j in zip(a_planes, b_planes):
        t_j, g_j = pool.take(), pool.take()
        requests.append(("xor", t_j, [a_j, b_j]))
        requests.append(("and", g_j, [a_j, b_j]))
        t_planes.append(t_j)
        g_planes.append(g_j)
    if carry_in is None:
        out = [t_planes[0]]
        carry = g_planes[0]
        start = 1
    else:
        out = []
        carry = carry_in
        start = 0
    for j in range(start, k):
        u_j, s_j, c_next = pool.take(), pool.take(), pool.take()
        requests.append(("and", u_j, [t_planes[j], carry]))
        requests.append(("xor", s_j, [t_planes[j], carry]))
        requests.append(("or", c_next, [g_planes[j], u_j]))
        out.append(s_j)
        carry = c_next
    out.append(carry)
    if issue:
        pool.runtime.pim_op_many(requests)
    return out


def ripple_sub(
    pool: ScratchPool,
    a_planes: Sequence,
    b_planes: Sequence,
    requests: Optional[list] = None,
) -> List:
    """``a - b (mod 2^k)`` over bit-slice planes; returns ``k`` planes.

    Two's complement: invert every ``b`` plane, add with the all-ones
    carry-in, drop the final carry-out.  The inversions and the whole
    ripple ride one command stream (one planner wave).
    """
    issue = requests is None
    if issue:
        requests = []
    inverted = []
    for b_j in b_planes:
        nb_j = pool.take()
        requests.append(("inv", nb_j, [b_j]))
        inverted.append(nb_j)
    out = ripple_add(
        pool, a_planes, inverted, carry_in=pool.ones, requests=requests
    )[: len(a_planes)]
    if issue:
        pool.runtime.pim_op_many(requests)
    return out


def _lt_const(
    pool: ScratchPool, planes: Sequence, value: int, requests: list
):
    """Mask of ``a < value`` for an unsigned constant ``value``."""
    k = len(planes)
    if value <= 0:
        return copy_plane(pool, pool.zero, requests)
    if value >= (1 << k):
        return copy_plane(pool, pool.ones, requests)
    borrow = None
    for j, a_j in enumerate(planes):
        bit = (value >> j) & 1
        if borrow is None:
            if bit:
                borrow = pool.take()
                requests.append(("inv", borrow, [a_j]))
            # leading K_j = 0 planes: the borrow stays constant zero
            continue
        inv_a = pool.take()
        requests.append(("inv", inv_a, [a_j]))
        nxt = pool.take()
        requests.append(("or" if bit else "and", nxt, [inv_a, borrow]))
        borrow = nxt
    return borrow


def _eq_const(
    pool: ScratchPool, planes: Sequence, value: int, requests: list
):
    """Mask of ``a == value`` for an unsigned constant ``value``."""
    k = len(planes)
    if not 0 <= value < (1 << k):
        return copy_plane(pool, pool.zero, requests)
    factors = []
    for j, a_j in enumerate(planes):
        if (value >> j) & 1:
            factors.append(a_j)
        else:
            inv_a = pool.take()
            requests.append(("inv", inv_a, [a_j]))
            factors.append(inv_a)
    acc = factors[0]
    if len(factors) == 1:
        dest = pool.take()
        requests.append(("or", dest, [acc, pool.zero]))
        acc = dest
    for factor in factors[1:]:
        nxt = pool.take()
        requests.append(("and", nxt, [acc, factor]))
        acc = nxt
    return acc


def _invert(pool: ScratchPool, mask, requests: Optional[list] = None):
    dest = pool.take()
    if requests is None:
        pool.runtime.pim_op("inv", dest, [mask])
    else:
        requests.append(("inv", dest, [mask]))
    return dest


def compare_const(
    pool: ScratchPool,
    planes: Sequence,
    op: str,
    value: int,
    requests: Optional[list] = None,
):
    """Predicate mask of ``a <op> value`` over bit-slice planes.

    ``op`` is one of ``lt | le | gt | ge | eq``; ``value`` is an
    unsigned constant (any Python int -- out-of-range constants
    degenerate to the all-true / all-false mask).  Returns one scratch
    plane holding the boolean mask.

    The whole gate chain -- including the trailing inversion of ``ge``
    / ``gt`` -- is emitted as **one** command stream.  Passing a
    caller-owned ``requests`` list defers issue entirely, so several
    predicates plus their mask conjunction can land as a single planner
    wave (duplicate sub-chains then CSE-fold inside the wave).
    """
    k = len(planes)
    if k == 0:
        raise ValueError("need at least one plane")
    if op not in CMP_OPS:
        raise ValueError(f"unknown comparison {op!r}; supported: {CMP_OPS}")
    issue = requests is None
    if issue:
        requests = []
    if op == "lt":
        mask = _lt_const(pool, planes, value, requests)
    elif op == "ge":
        mask = _invert(pool, _lt_const(pool, planes, value, requests), requests)
    elif op == "le":
        mask = _lt_const(pool, planes, value + 1, requests)
    elif op == "gt":
        mask = _invert(
            pool, _lt_const(pool, planes, value + 1, requests), requests
        )
    else:  # eq
        mask = _eq_const(pool, planes, value, requests)
    if issue:
        pool.runtime.pim_op_many(requests)
    return mask


def _lt_tensor(
    pool: ScratchPool, a_planes: Sequence, b_planes: Sequence, requests: list
):
    """Mask of ``a < b`` element-wise over two bit-slice tensors."""
    borrow = None
    for a_j, b_j in zip(a_planes, b_planes):
        inv_a = pool.take()
        requests.append(("inv", inv_a, [a_j]))
        win = pool.take()  # b_j strictly above a_j at this plane
        requests.append(("and", win, [inv_a, b_j]))
        if borrow is None:
            borrow = win
            continue
        diff = pool.take()
        requests.append(("xor", diff, [a_j, b_j]))
        same = pool.take()
        requests.append(("inv", same, [diff]))
        keep = pool.take()
        requests.append(("and", keep, [borrow, same]))
        nxt = pool.take()
        requests.append(("or", nxt, [win, keep]))
        borrow = nxt
    return borrow


def _eq_tensor(
    pool: ScratchPool, a_planes: Sequence, b_planes: Sequence, requests: list
):
    """Mask of ``a == b``: NOR-reduce the per-plane XORs."""
    diffs = []
    for a_j, b_j in zip(a_planes, b_planes):
        d_j = pool.take()
        requests.append(("xor", d_j, [a_j, b_j]))
        diffs.append(d_j)
    acc = diffs[0]
    for d_j in diffs[1:]:
        nxt = pool.take()
        requests.append(("or", nxt, [acc, d_j]))
        acc = nxt
    eq = pool.take()
    requests.append(("inv", eq, [acc]))
    return eq


def compare(
    pool: ScratchPool,
    a_planes: Sequence,
    op: str,
    b_planes: Sequence,
    requests: Optional[list] = None,
):
    """Predicate mask of ``a <op> b`` element-wise (both bit-sliced).

    Like :func:`compare_const`, the whole chain is one command stream;
    a caller-owned ``requests`` list defers issue for wave fusion.
    """
    if len(a_planes) != len(b_planes):
        raise ValueError(
            f"width mismatch: {len(a_planes)} vs {len(b_planes)} planes"
        )
    if len(a_planes) == 0:
        raise ValueError("need at least one plane")
    if op not in CMP_OPS:
        raise ValueError(f"unknown comparison {op!r}; supported: {CMP_OPS}")
    issue = requests is None
    if issue:
        requests = []
    if op == "lt":
        mask = _lt_tensor(pool, a_planes, b_planes, requests)
    elif op == "gt":
        mask = _lt_tensor(pool, b_planes, a_planes, requests)
    elif op == "ge":
        mask = _invert(
            pool, _lt_tensor(pool, a_planes, b_planes, requests), requests
        )
    elif op == "le":
        mask = _invert(
            pool, _lt_tensor(pool, b_planes, a_planes, requests), requests
        )
    else:  # eq
        mask = _eq_tensor(pool, a_planes, b_planes, requests)
    if issue:
        pool.runtime.pim_op_many(requests)
    return mask


def combine_masks(
    pool: ScratchPool, masks: Sequence, requests: Optional[list] = None
):
    """AND-reduce predicate masks into one (conjunctive filter)."""
    if len(masks) == 0:
        raise ValueError("need at least one mask")
    if len(masks) == 1:
        return masks[0]
    issue = requests is None
    if issue:
        requests = []
    acc = masks[0]
    for mask in masks[1:]:
        nxt = pool.take()
        requests.append(("and", nxt, [acc, mask]))
        acc = nxt
    if issue:
        pool.runtime.pim_op_many(requests)
    return acc


def mask_count(pool: ScratchPool, mask) -> int:
    """COUNT of a predicate mask via the popcount to-host reduction."""
    return pool.runtime.pim_popcount("or", pool.take(), [mask, pool.zero])


def mask_bits(pool: ScratchPool, mask) -> np.ndarray:
    """Materialise a mask's bits host-side (same bus cost as a count)."""
    return pool.runtime.pim_op_to_host("or", pool.take(), [mask, pool.zero])


def masked_sum(pool: ScratchPool, planes: Sequence, mask) -> int:
    """SUM of bit-sliced values under a mask: one popcount per plane,
    shifted by the plane's significance."""
    runtime = pool.runtime
    scratch = pool.take()
    total = 0
    for j, plane in enumerate(planes):
        total += runtime.pim_popcount("and", scratch, [plane, mask]) << j
    return total


def masked_histogram(
    pool: ScratchPool, bin_planes: Sequence, mask: Optional[object] = None
) -> List[int]:
    """Per-bin counts of an equality-encoded bitmap index under a mask."""
    runtime = pool.runtime
    scratch = pool.take()
    if mask is None:
        return [
            runtime.pim_popcount("or", scratch, [plane, pool.zero])
            for plane in bin_planes
        ]
    return [
        runtime.pim_popcount("and", scratch, [plane, mask])
        for plane in bin_planes
    ]
