"""`BitmapQueryService`: the concurrent multi-tenant serving layer.

Request lifecycle (all timestamps on the deterministic simulated clock)::

    submit() ──> arrival event ──> admission ──┬─> tenant queue ──┐
                                               ├─> paced (DELAY) ─┘
                                               └─> REJECTED
    server idle + queues non-empty ──> scheduler.collect (round-robin,
        cross-tenant) ──> engine.execute (ONE driver command batch) ──>
        shard-aware pricing ──> completion event ──> results + stats

The service is single-"server" by design: one memory system executes one
coalesced command stream at a time, and concurrency comes from *inside*
the batch (requests on different (channel, bank) shards overlap).  That
is exactly the Pinatubo serving argument: throughput scales with how
densely the scheduler packs independent in-memory operations, not with
host-side threads.

Telemetry: always-live counters under ``service.*`` plus a
``service.scheduler.dispatch`` span per batch carrying the attributed
simulated makespan/energy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.backends.config import SystemConfig
from repro.service.admission import (
    AdmissionController,
    Admit,
    TenantQuota,
)
from repro.service.clock import EventLoop
from repro.service.engine import (
    ServiceEngine,
    build_engine,
    oracle_bits,
)
from repro.service.request import (
    QueryRequest,
    QueryResult,
    RequestStatus,
    bin_vector_name,
)
from repro.service.scheduler import CoalescingScheduler, SchedulerConfig
from repro.service.stats import ServiceStats

__all__ = ["BitmapQueryService", "ServiceConfig"]

# always-live instruments (cheap integer adds; survive telemetry.reset())
_SUBMITTED = telemetry.counter("service.requests.submitted")
_COMPLETED = telemetry.counter("service.requests.completed")
_REJECTED = telemetry.counter("service.requests.rejected")
_DELAYED = telemetry.counter("service.requests.delayed")
_BATCHES = telemetry.counter("service.scheduler.batches")
_COALESCED = telemetry.counter("service.scheduler.coalesced_requests")
_QUEUE_DEPTH = telemetry.gauge("service.scheduler.queue_depth")
_BATCH_SIZE = telemetry.gauge("service.scheduler.batch_size")


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative description of one service instance."""

    #: the execution substrate (any registered backend); the default
    #: places tenants bank-spread so their batches overlap across shards
    system: SystemConfig = field(
        default_factory=lambda: SystemConfig(
            backend="pinatubo", placement="bank_spread"
        )
    )
    #: requests coalesced per dispatch (1 = no-batching baseline)
    max_batch: int = 16
    #: per-dispatch command-stream issue cost (s)
    dispatch_overhead_s: float = 1e-6
    #: fold equal-content requests (cross-tenant CSE) within a batch
    fold_duplicates: bool = True
    #: quota applied to tenants registered without an explicit one
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: keep per-request result bits on the QueryResult (parity tests;
    #: off by default to bound memory under load)
    keep_bits: bool = False
    #: assumed shard count for host-side engines (the functional
    #: pinatubo engine derives shards from real placement instead)
    host_shards: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be non-negative")
        if self.host_shards < 1:
            raise ValueError("host_shards must be >= 1")


class BitmapQueryService:
    """Multi-tenant bulk-bitwise query service over one backend."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        engine: Optional[ServiceEngine] = None,
    ):
        self.config = config or ServiceConfig()
        self.engine = engine or build_engine(
            self.config.system, host_shards=self.config.host_shards
        )
        self.loop = EventLoop()
        self.admission = AdmissionController()
        self.scheduler = CoalescingScheduler(
            SchedulerConfig(
                max_batch=self.config.max_batch,
                dispatch_overhead_s=self.config.dispatch_overhead_s,
                fold_duplicates=self.config.fold_duplicates,
            ),
            self.engine,
        )
        self.stats = ServiceStats()
        self.results: List[QueryResult] = []
        self._queues: Dict[str, Deque[QueryRequest]] = {}
        self._paced: Dict[str, int] = {}  # tenant -> in-flight DELAY count
        self._busy = False
        self._batch_id = 0
        self._submitted = 0

    # -- tenant/data management ----------------------------------------------

    def register_tenant(
        self, tenant: str, quota: Optional[TenantQuota] = None
    ) -> None:
        """Create a tenant: its quota, queue, and placement group."""
        self.admission.register(tenant, quota or self.config.default_quota)
        self._queues[tenant] = deque()
        self._paced[tenant] = 0

    @property
    def tenants(self) -> List[str]:
        return list(self._queues)

    def load_vectors(self, tenant: str, vectors: Dict[str, np.ndarray]) -> None:
        """Load named bit-vectors into the tenant's resident dataset."""
        self._check_tenant(tenant)
        for name, bits in vectors.items():
            self.engine.load_vector(tenant, name, bits)

    def load_bitmap_index(
        self, tenant: str, column: str, bin_indices: np.ndarray, n_bins: int
    ) -> None:
        """Load a FastBit-style equality-encoded bitmap index.

        One bit-vector per bin (``{column}/bin{b}``); range queries OR
        the covered bins (:meth:`QueryRequest.range_query`).
        """
        self._check_tenant(tenant)
        bin_indices = np.asarray(bin_indices)
        if bin_indices.ndim != 1:
            raise ValueError("bin indices must be 1-D")
        if bin_indices.size and int(bin_indices.max()) >= n_bins:
            raise ValueError("bin index out of range")
        events = np.arange(bin_indices.size)
        for b in range(n_bins):
            bitmap = np.zeros(bin_indices.size, dtype=np.uint8)
            bitmap[events[bin_indices == b]] = 1
            self.engine.load_vector(tenant, bin_vector_name(column, b), bitmap)

    def _check_tenant(self, tenant: str) -> None:
        if tenant not in self._queues:
            raise KeyError(
                f"unknown tenant {tenant!r}; registered: {self.tenants}"
            )

    # -- submission ----------------------------------------------------------

    def submit(self, request: QueryRequest) -> None:
        """Validate a request and schedule its arrival on the clock.

        Validation errors (unknown tenant/vector, op the backend cannot
        serve) raise immediately -- they are caller bugs, not load; the
        admission pipeline only ever sees servable requests.
        """
        self._check_tenant(request.tenant)
        self.engine.check_op(request.op)
        for name in request.vectors:
            if not self.engine.has_vector(request.tenant, name):
                raise KeyError(
                    f"tenant {request.tenant!r} has no vector {name!r}"
                )
        self._submitted += 1
        self.loop.schedule(request.arrival_s, lambda: self._on_arrival(request))

    def submit_many(self, requests) -> int:
        count = 0
        for request in requests:
            self.submit(request)
            count += 1
        return count

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self, request: QueryRequest) -> None:
        tenant = request.tenant
        now = self.loop.now
        pending = len(self._queues[tenant]) + self._paced[tenant]
        decision = self.admission.decide(tenant, now, pending)
        self.stats.submitted += 1
        self.stats.tenant(tenant).submitted += 1
        _SUBMITTED.add()
        if decision.outcome is Admit.REJECT:
            self._record_reject(request, decision.reason)
            return
        if decision.outcome is Admit.DELAY:
            self._paced[tenant] += 1
            self.stats.delayed += 1
            self.stats.tenant(tenant).delayed += 1
            _DELAYED.add()
            self.loop.schedule(
                decision.retry_at_s, lambda: self._on_paced_ready(request)
            )
            return
        self._enqueue(request)

    def _on_paced_ready(self, request: QueryRequest) -> None:
        self._paced[request.tenant] -= 1
        self._enqueue(request)

    def _enqueue(self, request: QueryRequest) -> None:
        self._queues[request.tenant].append(request)
        _QUEUE_DEPTH.set(sum(len(q) for q in self._queues.values()))
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        if self._busy or not any(self._queues.values()):
            return
        with telemetry.span("service.scheduler.dispatch") as sp:
            batch, executed, pricing = self.scheduler.dispatch(self._queues)
            now = self.loop.now
            self._busy = True
            self._batch_id += 1
            batch_id = self._batch_id
            self.stats.batches += 1
            self.stats.busy_s += pricing.makespan_s
            self.stats.first_dispatch_s = min(self.stats.first_dispatch_s, now)
            if len(batch) > 1:
                self.stats.coalesced_requests += len(batch)
                _COALESCED.add(len(batch))
            _BATCHES.add()
            _BATCH_SIZE.set(len(batch))
            _QUEUE_DEPTH.set(sum(len(q) for q in self._queues.values()))
            sp.add(
                latency_s=pricing.makespan_s,
                energy_j=pricing.energy_j,
                requests=len(batch),
            )
            results = []
            for request, call, offset in zip(
                batch, executed, pricing.completion_offsets
            ):
                results.append(
                    QueryResult(
                        request=request,
                        status=RequestStatus.COMPLETED,
                        popcount=call.popcount,
                        dispatched_s=now,
                        completed_s=now + offset,
                        service_s=call.latency_s,
                        energy_j=call.energy_j,
                        batch_id=batch_id,
                        bits=call.bits if self.config.keep_bits else None,
                    )
                )
            self.loop.schedule(
                now + pricing.makespan_s,
                lambda: self._on_batch_done(results),
            )

    def _on_batch_done(self, results: List[QueryResult]) -> None:
        for result in results:
            self._record_completion(result)
        self._busy = False
        self._maybe_dispatch()

    # -- recording -----------------------------------------------------------

    def _record_reject(self, request: QueryRequest, reason: str) -> None:
        result = QueryResult(
            request=request,
            status=RequestStatus.REJECTED,
            completed_s=self.loop.now,
            reject_reason=reason,
        )
        self.results.append(result)
        self.stats.rejected += 1
        self.stats.tenant(request.tenant).rejected += 1
        _REJECTED.add()

    def _record_completion(self, result: QueryResult) -> None:
        self.results.append(result)
        tenant = self.stats.tenant(result.request.tenant)
        self.stats.completed += 1
        tenant.completed += 1
        self.stats.energy_j += result.energy_j
        tenant.energy_j += result.energy_j
        tenant.service_s += result.service_s
        self.stats.latency.record(result.latency_s)
        tenant.latency.record(result.latency_s)
        self.stats.last_completion_s = max(
            self.stats.last_completion_s, result.completed_s
        )
        _COMPLETED.add()

    # -- running -------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> ServiceStats:
        """Drain the event loop to completion; returns the stats.

        ``max_events`` defaults to a budget linear in the submitted
        request count, so a scheduling bug deadlocks the test, not the
        machine.
        """
        if max_events is None:
            # per request: arrival + paced retry + batch completion share,
            # with headroom; single-request batches are the worst case
            max_events = 4 * self._submitted + 64
        self.loop.run(max_events=max_events)
        if self._busy:
            raise RuntimeError("event loop drained while a batch was in flight")
        monitor = self.engine.wear_monitor()
        if monitor is not None:
            monitor.publish()
        return self.stats

    # -- verification --------------------------------------------------------

    def oracle_popcount(self, request: QueryRequest) -> int:
        """Numpy-oracle popcount for a request (parity checks)."""
        return int(
            oracle_bits(
                self.engine, request.tenant, request.op, request.vectors
            ).sum()
        )

    def verify_results(self) -> int:
        """Assert every completed result matches the numpy oracle.

        Returns the number of results checked.  With ``keep_bits`` the
        raw bits are compared too, not just the popcount.
        """
        checked = 0
        for result in self.results:
            if result.status is not RequestStatus.COMPLETED:
                continue
            expected = oracle_bits(
                self.engine,
                result.request.tenant,
                result.request.op,
                result.request.vectors,
            )
            if result.popcount != int(expected.sum()):
                raise AssertionError(
                    f"request {result.request.request_id}: popcount "
                    f"{result.popcount} != oracle {int(expected.sum())}"
                )
            if result.bits is not None and not np.array_equal(
                result.bits, expected
            ):
                raise AssertionError(
                    f"request {result.request.request_id}: bits differ "
                    f"from the numpy oracle"
                )
            checked += 1
        return checked
