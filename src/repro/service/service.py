"""`BitmapQueryService`: the concurrent multi-tenant serving layer.

Request lifecycle (all timestamps on the deterministic simulated clock)::

    submit() ──> arrival event ──> admission ──┬─> tenant queue ──┐
                                               ├─> paced (DELAY) ─┘
                                               └─> REJECTED
    server idle + queues non-empty ──> scheduler.collect (round-robin,
        cross-tenant) ──> engine.execute (ONE driver command batch) ──>
        shard-aware pricing ──> completion event ──> results + stats

The service is single-"server" by design: one memory system executes one
coalesced command stream at a time, and concurrency comes from *inside*
the batch (requests on different (channel, bank) shards overlap).  That
is exactly the Pinatubo serving argument: throughput scales with how
densely the scheduler packs independent in-memory operations, not with
host-side threads.

Telemetry: always-live counters under ``service.*`` plus a
``service.scheduler.dispatch`` span per batch carrying the attributed
simulated makespan/energy.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.backends.config import SystemConfig
from repro.service.admission import (
    AdmissionController,
    Admit,
    TenantQuota,
)
from repro.service.clock import EventLoop
from repro.service.engine import (
    ServiceEngine,
    build_engine,
    oracle_analytics,
    oracle_bits,
)
from repro.service.request import (
    DeltaNotification,
    QueryRequest,
    QueryResult,
    RequestStatus,
    SubscribeRequest,
    UpdateRequest,
    bin_vector_name,
    bitslice_vector_name,
)
from repro.service.scheduler import (
    CoalescingScheduler,
    SchedulerConfig,
    request_call,
)
from repro.service.stats import ServiceStats

__all__ = ["BitmapQueryService", "ServiceConfig", "StandingQuery"]

# always-live instruments (cheap integer adds; survive telemetry.reset())
_SUBMITTED = telemetry.counter("service.requests.submitted")
_COMPLETED = telemetry.counter("service.requests.completed")
_REJECTED = telemetry.counter("service.requests.rejected")
_DELAYED = telemetry.counter("service.requests.delayed")
_UPDATES = telemetry.counter("service.requests.updates")
_SUBSCRIBED = telemetry.counter("service.subscriptions.registered")
_NOTIFICATIONS = telemetry.counter("service.subscriptions.notifications")
_BATCHES = telemetry.counter("service.scheduler.batches")
_COALESCED = telemetry.counter("service.scheduler.coalesced_requests")
_QUEUE_DEPTH = telemetry.gauge("service.scheduler.queue_depth")
_BATCH_SIZE = telemetry.gauge("service.scheduler.batch_size")


@dataclass
class StandingQuery:
    """Service-side state of one registered subscription.

    Created at admission; ``active`` flips once the initial evaluation
    (which rides a normal coalesced batch) completes.  ``bits`` is the
    last pushed result -- what the next refresh diffs against to compute
    ``changed_bits``.
    """

    request: SubscribeRequest
    active: bool = False
    seq: int = 0
    popcount: int = 0
    bits: Optional[np.ndarray] = field(default=None, repr=False)


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative description of one service instance."""

    #: the execution substrate (any registered backend); the default
    #: places tenants bank-spread so their batches overlap across shards
    system: SystemConfig = field(
        default_factory=lambda: SystemConfig(
            backend="pinatubo", placement="bank_spread"
        )
    )
    #: requests coalesced per dispatch (1 = no-batching baseline)
    max_batch: int = 16
    #: per-dispatch command-stream issue cost (s)
    dispatch_overhead_s: float = 1e-6
    #: fold equal-content requests (cross-tenant CSE) within a batch
    fold_duplicates: bool = True
    #: quota applied to tenants registered without an explicit one
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: keep per-request result bits on the QueryResult (parity tests;
    #: off by default to bound memory under load)
    keep_bits: bool = False
    #: assumed shard count for host-side engines (the functional
    #: pinatubo engine derives shards from real placement instead)
    host_shards: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be non-negative")
        if self.host_shards < 1:
            raise ValueError("host_shards must be >= 1")


class BitmapQueryService:
    """Multi-tenant bulk-bitwise query service over one backend."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        engine: Optional[ServiceEngine] = None,
        loop: Optional[EventLoop] = None,
    ):
        self.config = config or ServiceConfig()
        self.engine = engine or build_engine(
            self.config.system, host_shards=self.config.host_shards
        )
        #: the simulated timeline; injectable so N node services can
        #: share one deterministic clock (the cluster layer does this)
        self.loop = loop or EventLoop()
        #: optional completion hooks (the cluster router's gather path);
        #: called synchronously when a result/notification is recorded
        self.on_result: Optional[Callable[[QueryResult], None]] = None
        self.on_notification: Optional[
            Callable[[DeltaNotification], None]
        ] = None
        self.admission = AdmissionController()
        self.scheduler = CoalescingScheduler(
            SchedulerConfig(
                max_batch=self.config.max_batch,
                dispatch_overhead_s=self.config.dispatch_overhead_s,
                fold_duplicates=self.config.fold_duplicates,
            ),
            self.engine,
        )
        self.stats = ServiceStats()
        self.results: List[QueryResult] = []
        self.notifications: List[DeltaNotification] = []
        self._queues: Dict[str, Deque[QueryRequest]] = {}
        self._paced: Dict[str, int] = {}  # tenant -> in-flight DELAY count
        self._standing: Dict[int, StandingQuery] = {}  # insertion-ordered
        self._busy = False
        self._batch_id = 0
        self._submitted = 0
        self._n_subscribes = 0

    # -- tenant/data management ----------------------------------------------

    def register_tenant(
        self, tenant: str, quota: Optional[TenantQuota] = None
    ) -> None:
        """Create a tenant: its quota, queue, and placement group."""
        self.admission.register(tenant, quota or self.config.default_quota)
        self._queues[tenant] = deque()
        self._paced[tenant] = 0

    @property
    def tenants(self) -> List[str]:
        return list(self._queues)

    def load_vectors(self, tenant: str, vectors: Dict[str, np.ndarray]) -> None:
        """Load named bit-vectors into the tenant's resident dataset."""
        self._check_tenant(tenant)
        for name, bits in vectors.items():
            self.engine.load_vector(tenant, name, bits)

    def load_bitmap_index(
        self, tenant: str, column: str, bin_indices: np.ndarray, n_bins: int
    ) -> None:
        """Load a FastBit-style equality-encoded bitmap index.

        One bit-vector per bin (``{column}/bin{b}``); range queries OR
        the covered bins (:meth:`QueryRequest.range_query`).
        """
        self._check_tenant(tenant)
        bin_indices = np.asarray(bin_indices)
        if bin_indices.ndim != 1:
            raise ValueError("bin indices must be 1-D")
        if bin_indices.size and int(bin_indices.max()) >= n_bins:
            raise ValueError("bin index out of range")
        events = np.arange(bin_indices.size)
        for b in range(n_bins):
            bitmap = np.zeros(bin_indices.size, dtype=np.uint8)
            bitmap[events[bin_indices == b]] = 1
            self.engine.load_vector(tenant, bin_vector_name(column, b), bitmap)

    def load_bitslice_column(
        self, tenant: str, column: str, values: np.ndarray, n_bits: int
    ) -> None:
        """Load a numeric column in the transposed bit-slice layout.

        Plane ``j`` lands as the ordinary named vector ``{column}#b{j}``
        (see :func:`repro.service.request.bitslice_vector_name`), so
        replication, rebalance and updates treat arithmetic columns like
        any other vectors.  Analytics requests compare against constants
        with bit-serial borrow chains over these planes.
        """
        self._check_tenant(tenant)
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("column values must be 1-D")
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if values.size and (
            values.min() < 0 or values.max() >= (1 << n_bits)
        ):
            raise ValueError(
                f"column {column!r} values out of range for {n_bits}-bit "
                f"unsigned integers"
            )
        for j in range(n_bits):
            plane = ((values >> j) & 1).astype(np.uint8)
            self.engine.load_vector(
                tenant, bitslice_vector_name(column, j), plane
            )

    def _check_tenant(self, tenant: str) -> None:
        if tenant not in self._queues:
            raise KeyError(
                f"unknown tenant {tenant!r}; registered: {self.tenants}"
            )

    def deregister_tenant(self, tenant: str) -> int:
        """Remove an idle tenant and free its resident vectors.

        The decommission half of cluster rebalancing: the tenant must be
        quiescent (empty queue, no pacing in flight) -- moving live work
        between nodes would break the deterministic timeline.  Standing
        queries are dropped (subscribers re-subscribe on the new owner).
        Returns the number of vectors unloaded.
        """
        self._check_tenant(tenant)
        if self._queues[tenant] or self._paced[tenant]:
            raise RuntimeError(
                f"tenant {tenant!r} still has queued or paced requests; "
                f"drain the loop before deregistering"
            )
        for sub_id in [
            sub_id
            for sub_id, sq in self._standing.items()
            if sq.request.tenant == tenant
        ]:
            del self._standing[sub_id]
        del self._queues[tenant]
        del self._paced[tenant]
        self.admission.deregister(tenant)
        return self.engine.unload_tenant(tenant)

    # -- submission ----------------------------------------------------------

    def submit_request(self, request) -> None:
        """Validate a request and schedule its arrival on the clock.

        Accepts all three request types -- :class:`QueryRequest`,
        :class:`UpdateRequest`, :class:`SubscribeRequest` -- which share
        one admission pipeline and ride the same coalesced batches.
        Validation errors (unknown tenant/vector, op the backend cannot
        serve, size-mismatched update payload) raise immediately -- they
        are caller bugs, not load; the admission pipeline only ever sees
        servable requests.

        Prefer the :class:`repro.service.api.ServiceClient` facade,
        which constructs the request objects for you; this is the
        typed-request entrypoint the facade itself drives.
        """
        self._check_tenant(request.tenant)
        if request.kind == "update":
            if not self.engine.has_vector(request.tenant, request.vector):
                raise KeyError(
                    f"tenant {request.tenant!r} has no vector "
                    f"{request.vector!r}"
                )
            loaded = self.engine.host_vector(request.tenant, request.vector)
            if request.bits.size != loaded.size:
                raise ValueError(
                    f"update size {request.bits.size} != loaded size "
                    f"{loaded.size} for {request.vector!r}"
                )
        elif request.kind == "analytics":
            # "analyze" is a kernel sequence, not a backend op: skip
            # check_op, but every referenced plane/bin must be loaded
            for name in request.vectors:
                if not self.engine.has_vector(request.tenant, name):
                    raise KeyError(
                        f"tenant {request.tenant!r} has no vector {name!r}"
                    )
        else:
            self.engine.check_op(request.op)
            for name in request.vectors:
                if not self.engine.has_vector(request.tenant, name):
                    raise KeyError(
                        f"tenant {request.tenant!r} has no vector {name!r}"
                    )
            if request.kind == "subscribe":
                self._n_subscribes += 1
        self._submitted += 1
        self.loop.schedule(request.arrival_s, lambda: self._on_arrival(request))

    def submit(self, request) -> None:
        """Deprecated alias of :meth:`submit_request`.

        Kept as a thin shim for callers written against the pre-facade
        API; new code goes through
        :class:`repro.service.api.ServiceClient` (``query()`` /
        ``update()`` / ``subscribe()``) or :meth:`submit_request`.
        """
        warnings.warn(
            "BitmapQueryService.submit() is deprecated; use the "
            "repro.service.api.ServiceClient facade (query/update/"
            "subscribe) or submit_request()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.submit_request(request)

    def submit_many(self, requests) -> int:
        count = 0
        for request in requests:
            self.submit_request(request)
            count += 1
        return count

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self, request) -> None:
        tenant = request.tenant
        now = self.loop.now
        if getattr(request, "internal", False):
            # cluster replica fan-in: admission already ran on the
            # primary; the copy is counted as node load but never
            # re-metered (a replica rejecting its copy would diverge)
            self.stats.submitted += 1
            self.stats.tenant(tenant).submitted += 1
            _SUBMITTED.add()
            self._enqueue(request)
            return
        pending = len(self._queues[tenant]) + self._paced[tenant]
        if request.kind == "subscribe":
            # fan-out metering: every write re-evaluates each standing
            # query reading it, so registrations are bounded per tenant
            active = sum(
                1
                for sq in self._standing.values()
                if sq.request.tenant == tenant
            )
            decision = self.admission.decide_subscribe(
                tenant, now, pending, active
            )
        else:
            decision = self.admission.decide(tenant, now, pending)
        self.stats.submitted += 1
        self.stats.tenant(tenant).submitted += 1
        _SUBMITTED.add()
        if decision.outcome is Admit.REJECT:
            self._record_reject(request, decision.reason)
            return
        if request.kind == "subscribe":
            self._standing[request.request_id] = StandingQuery(request)
            self.stats.subscriptions += 1
            self.stats.tenant(tenant).subscriptions += 1
            _SUBSCRIBED.add()
        if decision.outcome is Admit.DELAY:
            self._paced[tenant] += 1
            self.stats.delayed += 1
            self.stats.tenant(tenant).delayed += 1
            _DELAYED.add()
            self.loop.schedule(
                decision.retry_at_s, lambda: self._on_paced_ready(request)
            )
            return
        self._enqueue(request)

    def _on_paced_ready(self, request: QueryRequest) -> None:
        self._paced[request.tenant] -= 1
        self._enqueue(request)

    def _enqueue(self, request: QueryRequest) -> None:
        self._queues[request.tenant].append(request)
        _QUEUE_DEPTH.set(sum(len(q) for q in self._queues.values()))
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        if self._busy or not any(self._queues.values()):
            return
        with telemetry.span("service.scheduler.dispatch") as sp:
            batch, executed, pricing = self.scheduler.dispatch(self._queues)
            now = self.loop.now
            # standing-query refreshes ride this same dispatch: the
            # batch's updates (executed first, see scheduler.dispatch)
            # re-evaluate every *previously active* subscription reading
            # a rewritten vector, and the combined work is priced as one
            # batch -- shared dispatch overhead, shard-serialised
            updates = [r for r in batch if r.kind == "update"]
            affected: List[StandingQuery] = []
            triggers: List[tuple] = []
            if updates:
                for sq in self._standing.values():
                    if not sq.active:
                        continue
                    ids = tuple(
                        u.request_id
                        for u in updates
                        if u.tenant == sq.request.tenant
                        and u.vector in sq.request.vectors
                    )
                    if ids:
                        affected.append(sq)
                        triggers.append(ids)
            refresh_calls = [request_call(sq.request) for sq in affected]
            refreshed = self.scheduler.execute_calls(refresh_calls)
            if refreshed:
                pricing = self.scheduler.price(
                    list(batch) + refresh_calls,
                    list(executed) + refreshed,
                )
            self._busy = True
            self._batch_id += 1
            batch_id = self._batch_id
            self.stats.batches += 1
            self.stats.busy_s += pricing.makespan_s
            self.stats.first_dispatch_s = min(self.stats.first_dispatch_s, now)
            if len(batch) > 1:
                self.stats.coalesced_requests += len(batch)
                _COALESCED.add(len(batch))
            _BATCHES.add()
            _BATCH_SIZE.set(len(batch))
            _QUEUE_DEPTH.set(sum(len(q) for q in self._queues.values()))
            sp.add(
                latency_s=pricing.makespan_s,
                energy_j=pricing.energy_j,
                requests=len(batch),
                refreshes=len(refreshed),
            )
            results = []
            for request, call, offset in zip(
                batch, executed, pricing.completion_offsets
            ):
                keep = self.config.keep_bits and request.kind != "update"
                results.append(
                    QueryResult(
                        request=request,
                        status=RequestStatus.COMPLETED,
                        popcount=call.popcount,
                        dispatched_s=now,
                        completed_s=now + offset,
                        service_s=call.latency_s,
                        energy_j=call.energy_j,
                        batch_id=batch_id,
                        value=call.value,
                        groups=call.groups,
                        bits=call.bits if keep else None,
                    )
                )
                if request.kind == "subscribe":
                    # initial evaluation done: activate and push the
                    # seq-0 snapshot notification at its completion time
                    sq = self._standing[request.request_id]
                    sq.active = True
                    sq.bits = call.bits.copy()
                    sq.popcount = call.popcount
                    self._push_notification(
                        DeltaNotification(
                            subscription_id=request.request_id,
                            tenant=request.tenant,
                            seq=0,
                            emitted_s=now + offset,
                            popcount=call.popcount,
                            changed_bits=0,
                        )
                    )
            refresh_offsets = pricing.completion_offsets[len(batch):]
            for sq, ids, call, offset in zip(
                affected, triggers, refreshed, refresh_offsets
            ):
                changed = int(np.count_nonzero(sq.bits != call.bits))
                sq.seq += 1
                sq.bits = call.bits.copy()
                sq.popcount = call.popcount
                # the refresh's simulated cost is real batched work,
                # attributed to the subscribing tenant
                tstats = self.stats.tenant(sq.request.tenant)
                self.stats.energy_j += call.energy_j
                tstats.energy_j += call.energy_j
                tstats.service_s += call.latency_s
                self._push_notification(
                    DeltaNotification(
                        subscription_id=sq.request.request_id,
                        tenant=sq.request.tenant,
                        seq=sq.seq,
                        emitted_s=now + offset,
                        popcount=call.popcount,
                        changed_bits=changed,
                        triggered_by=ids,
                    )
                )
            self.loop.schedule(
                now + pricing.makespan_s,
                lambda: self._on_batch_done(results),
            )

    def _push_notification(self, note: DeltaNotification) -> None:
        """Deliver a notification through the event loop at its time."""
        self.loop.schedule(
            note.emitted_s, lambda: self._on_notification(note)
        )

    def _on_notification(self, note: DeltaNotification) -> None:
        self.notifications.append(note)
        self.stats.notifications += 1
        self.stats.tenant(note.tenant).notifications += 1
        _NOTIFICATIONS.add()
        if self.on_notification is not None:
            self.on_notification(note)

    def _on_batch_done(self, results: List[QueryResult]) -> None:
        for result in results:
            self._record_completion(result)
        self._busy = False
        self._maybe_dispatch()

    # -- recording -----------------------------------------------------------

    def _record_reject(self, request: QueryRequest, reason: str) -> None:
        result = QueryResult(
            request=request,
            status=RequestStatus.REJECTED,
            completed_s=self.loop.now,
            reject_reason=reason,
        )
        self.results.append(result)
        self.stats.rejected += 1
        self.stats.tenant(request.tenant).rejected += 1
        _REJECTED.add()
        if self.on_result is not None:
            self.on_result(result)

    def _record_completion(self, result: QueryResult) -> None:
        self.results.append(result)
        tenant = self.stats.tenant(result.request.tenant)
        self.stats.completed += 1
        tenant.completed += 1
        if result.request.kind == "update":
            self.stats.updates += 1
            tenant.updates += 1
            _UPDATES.add()
        self.stats.energy_j += result.energy_j
        tenant.energy_j += result.energy_j
        tenant.service_s += result.service_s
        self.stats.latency.record(result.latency_s)
        tenant.latency.record(result.latency_s)
        self.stats.last_completion_s = max(
            self.stats.last_completion_s, result.completed_s
        )
        _COMPLETED.add()
        if self.on_result is not None:
            self.on_result(result)

    # -- running -------------------------------------------------------------

    def event_budget(self) -> int:
        """Default livelock guard: linear in the submitted request count.

        A cluster router sharing one loop across N nodes sums the
        per-node budgets to bound the combined drain.
        """
        # per request: arrival + paced retry + batch completion share,
        # with headroom; single-request batches are the worst case
        budget = 4 * self._submitted + 64
        if self._n_subscribes:
            # each dispatch can push one notification per standing
            # query (plus one snapshot each); still a bounded guard
            budget += self._n_subscribes * (self._submitted + 1)
        return budget

    def finalize(self) -> ServiceStats:
        """Post-drain bookkeeping: in-flight check + wear publication.

        Split out of :meth:`run` so a cluster router that drains the
        *shared* loop once can still finalize each node service.
        """
        if self._busy:
            raise RuntimeError("event loop drained while a batch was in flight")
        monitor = self.engine.wear_monitor()
        if monitor is not None:
            monitor.publish()
        return self.stats

    def run(self, max_events: Optional[int] = None) -> ServiceStats:
        """Drain the event loop to completion; returns the stats.

        ``max_events`` defaults to a budget linear in the submitted
        request count, so a scheduling bug deadlocks the test, not the
        machine.
        """
        if max_events is None:
            max_events = self.event_budget()
        self.loop.run(max_events=max_events)
        return self.finalize()

    # -- verification --------------------------------------------------------

    def oracle_popcount(self, request: QueryRequest) -> int:
        """Numpy-oracle popcount for a request (parity checks)."""
        return int(
            oracle_bits(
                self.engine, request.tenant, request.op, request.vectors
            ).sum()
        )

    def standing_query(self, subscription_id: int) -> StandingQuery:
        """Look up a registered standing query by its request id."""
        return self._standing[subscription_id]

    def verify_results(self) -> int:
        """Assert every completed *read* result matches the numpy oracle.

        Returns the number of results checked.  With ``keep_bits`` the
        raw bits are compared too, not just the popcount.  Updates and
        subscription registrations are skipped: the oracle reads the
        *final* host shadows, which only reflect a read's inputs when no
        later update rewrote them -- workloads mixing reads and writes
        verify against a live mirror instead (see the delta-repair
        bench/tests).
        """
        checked = 0
        for result in self.results:
            if result.status is not RequestStatus.COMPLETED:
                continue
            if result.request.kind in ("update", "subscribe"):
                continue
            if result.request.kind == "analytics":
                mask, value, groups = oracle_analytics(
                    self.engine,
                    result.request.tenant,
                    result.request.filters,
                    result.request.aggregate,
                )
                if (
                    result.popcount != int(mask.sum())
                    or result.value != value
                    or result.groups != groups
                ):
                    raise AssertionError(
                        f"analytics request {result.request.request_id}: "
                        f"got (popcount={result.popcount}, "
                        f"value={result.value}, groups={result.groups}), "
                        f"oracle ({int(mask.sum())}, {value}, {groups})"
                    )
                if result.bits is not None and not np.array_equal(
                    result.bits, mask
                ):
                    raise AssertionError(
                        f"analytics request {result.request.request_id}: "
                        f"mask bits differ from the numpy oracle"
                    )
                checked += 1
                continue
            expected = oracle_bits(
                self.engine,
                result.request.tenant,
                result.request.op,
                result.request.vectors,
            )
            if result.popcount != int(expected.sum()):
                raise AssertionError(
                    f"request {result.request.request_id}: popcount "
                    f"{result.popcount} != oracle {int(expected.sum())}"
                )
            if result.bits is not None and not np.array_equal(
                result.bits, expected
            ):
                raise AssertionError(
                    f"request {result.request.request_id}: bits differ "
                    f"from the numpy oracle"
                )
            checked += 1
        return checked
