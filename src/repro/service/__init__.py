"""`repro.service`: a multi-tenant bitmap-query serving layer.

The serving-side argument of the Pinatubo paper: a bulk-bitwise
substrate earns its keep when a *service* funnels many concurrent
application queries -- bitmap-index range scans, set intersections --
into dense in-memory command streams.  This package is that service,
built entirely on the repo's existing layers:

- **requests** (:mod:`.request`): bitwise ops and FastBit-style range
  queries over named, tenant-resident bit-vectors;
- **admission** (:mod:`.admission`): per-tenant quotas -- bounded
  queues, token-bucket rates, reject-or-pace overload policies;
- **scheduling** (:mod:`.scheduler`): cross-tenant coalescing into
  single driver command batches, priced shard-aware (requests on
  different (channel, bank) shards overlap);
- **execution** (:mod:`.engine`): the functional Pinatubo runtime with
  os_mm tenant placement, or any other registered backend host-side;
- **time** (:mod:`.clock`): a deterministic simulated event loop -- no
  wall clock anywhere, so runs replay byte-identically;
- **accounting** (:mod:`.stats`): per-tenant latency histograms,
  p50/p99, ops/s, energy, in the repo's StatsLike convention.

Quick start (the :class:`~repro.service.api.ServiceClient` facade is
the one front door -- the same client drives a single node or a
:class:`repro.cluster.ClusterRouter`)::

    import numpy as np
    from repro.service import BitmapQueryService, ServiceClient

    client = ServiceClient(BitmapQueryService())
    client.register_tenant("alice")
    client.load_vectors("alice", {"a": np.random.randint(0, 2, 4096),
                                  "b": np.random.randint(0, 2, 4096)})
    handle = client.query("alice", "and", ("a", "b"))
    stats = client.run()
    print(handle.popcount, stats.summary())
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    Admit,
    OverloadPolicy,
    TenantQuota,
    TokenBucket,
)
from repro.service.api import ResultHandle, ServiceClient, SubscriptionHandle
from repro.service.clock import EventLoop
from repro.service.engine import (
    HostOracleEngine,
    ResidentPimEngine,
    ServiceEngine,
    UnsupportedOpError,
    build_engine,
    oracle_analytics,
)
from repro.service.request import (
    AnalyticsRequest,
    DeltaNotification,
    QueryRequest,
    QueryResult,
    RequestStatus,
    SubscribeRequest,
    UpdateRequest,
    bin_vector_name,
    bitslice_vector_name,
)
from repro.service.scheduler import (
    BatchPricing,
    CoalescingScheduler,
    SchedulerConfig,
)
from repro.service.service import (
    BitmapQueryService,
    ServiceConfig,
    StandingQuery,
)
from repro.service.stats import LatencyRecorder, ServiceStats, TenantStats

__all__ = [
    "AdmissionController",
    "AnalyticsRequest",
    "AdmissionDecision",
    "Admit",
    "BatchPricing",
    "BitmapQueryService",
    "CoalescingScheduler",
    "DeltaNotification",
    "EventLoop",
    "HostOracleEngine",
    "LatencyRecorder",
    "OverloadPolicy",
    "QueryRequest",
    "QueryResult",
    "RequestStatus",
    "ResidentPimEngine",
    "ResultHandle",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceStats",
    "StandingQuery",
    "SubscribeRequest",
    "SubscriptionHandle",
    "TenantQuota",
    "TenantStats",
    "TokenBucket",
    "UnsupportedOpError",
    "UpdateRequest",
    "bin_vector_name",
    "bitslice_vector_name",
    "build_engine",
    "oracle_analytics",
]
