"""`repro.service`: a multi-tenant bitmap-query serving layer.

The serving-side argument of the Pinatubo paper: a bulk-bitwise
substrate earns its keep when a *service* funnels many concurrent
application queries -- bitmap-index range scans, set intersections --
into dense in-memory command streams.  This package is that service,
built entirely on the repo's existing layers:

- **requests** (:mod:`.request`): bitwise ops and FastBit-style range
  queries over named, tenant-resident bit-vectors;
- **admission** (:mod:`.admission`): per-tenant quotas -- bounded
  queues, token-bucket rates, reject-or-pace overload policies;
- **scheduling** (:mod:`.scheduler`): cross-tenant coalescing into
  single driver command batches, priced shard-aware (requests on
  different (channel, bank) shards overlap);
- **execution** (:mod:`.engine`): the functional Pinatubo runtime with
  os_mm tenant placement, or any other registered backend host-side;
- **time** (:mod:`.clock`): a deterministic simulated event loop -- no
  wall clock anywhere, so runs replay byte-identically;
- **accounting** (:mod:`.stats`): per-tenant latency histograms,
  p50/p99, ops/s, energy, in the repo's StatsLike convention.

Quick start::

    import numpy as np
    from repro.service import BitmapQueryService, QueryRequest

    svc = BitmapQueryService()
    svc.register_tenant("alice")
    svc.load_vectors("alice", {"a": np.random.randint(0, 2, 4096),
                               "b": np.random.randint(0, 2, 4096)})
    svc.submit(QueryRequest.bitwise(1, "alice", "and", ("a", "b"),
                                    arrival_s=0.0))
    stats = svc.run()
    print(stats.summary())
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    Admit,
    OverloadPolicy,
    TenantQuota,
    TokenBucket,
)
from repro.service.clock import EventLoop
from repro.service.engine import (
    HostOracleEngine,
    ResidentPimEngine,
    ServiceEngine,
    UnsupportedOpError,
    build_engine,
)
from repro.service.request import (
    DeltaNotification,
    QueryRequest,
    QueryResult,
    RequestStatus,
    SubscribeRequest,
    UpdateRequest,
    bin_vector_name,
)
from repro.service.scheduler import (
    BatchPricing,
    CoalescingScheduler,
    SchedulerConfig,
)
from repro.service.service import (
    BitmapQueryService,
    ServiceConfig,
    StandingQuery,
)
from repro.service.stats import LatencyRecorder, ServiceStats, TenantStats

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Admit",
    "BatchPricing",
    "BitmapQueryService",
    "CoalescingScheduler",
    "DeltaNotification",
    "EventLoop",
    "HostOracleEngine",
    "LatencyRecorder",
    "OverloadPolicy",
    "QueryRequest",
    "QueryResult",
    "RequestStatus",
    "ResidentPimEngine",
    "SchedulerConfig",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceStats",
    "StandingQuery",
    "SubscribeRequest",
    "TenantQuota",
    "TenantStats",
    "TokenBucket",
    "UnsupportedOpError",
    "UpdateRequest",
    "bin_vector_name",
    "build_engine",
]
