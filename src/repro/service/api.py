"""`ServiceClient`: the one facade for talking to a serving target.

Callers used to construct :class:`~repro.service.request.QueryRequest` /
``UpdateRequest`` / ``SubscribeRequest`` objects by hand -- picking
request ids, arrival timestamps, and the right ``submit()`` overload --
for every interaction.  The facade folds all of that into three verbs::

    client = ServiceClient(service_or_cluster)
    client.register_tenant("alice")
    client.load_vectors("alice", {"a": bits_a, "b": bits_b})

    h = client.query("alice", "and", ("a", "b"))      # -> ResultHandle
    u = client.update("alice", "a", new_bits)
    s = client.subscribe("alice", "xor", ("a", "b"))  # -> SubscriptionHandle

    stats = client.run()
    h.result().popcount, u.done, s.notifications

The same client drives a single-node
:class:`~repro.service.service.BitmapQueryService` or a
:class:`~repro.cluster.ClusterRouter` -- anything exposing the small
``ServingTarget`` surface (``submit_request``/``run``/``results``/
``notifications`` plus tenant management).  Request ids are assigned
monotonically by the client (override with ``request_id=`` when a
workload's stream numbering is the determinism contract); arrival times
default to the latest arrival seen, so a sequence of calls without
``at=`` forms a valid non-decreasing open-loop stream.

Handles are *deferred* views: the serving layers run on a simulated
clock, so results exist only after :meth:`ServiceClient.run` drains the
event loop, which resolves every outstanding handle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.service.request import (
    AnalyticsRequest,
    DeltaNotification,
    QueryRequest,
    QueryResult,
    RequestStatus,
    SubscribeRequest,
    UpdateRequest,
)

__all__ = ["ResultHandle", "ServiceClient", "SubscriptionHandle"]


class ResultHandle:
    """Deferred view of one submitted request's terminal result."""

    def __init__(self, request) -> None:
        self.request = request
        self._result: Optional[QueryResult] = None

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def done(self) -> bool:
        """The request reached a terminal state (completed or rejected)."""
        return self._result is not None

    @property
    def completed(self) -> bool:
        return (
            self._result is not None
            and self._result.status is RequestStatus.COMPLETED
        )

    @property
    def rejected(self) -> bool:
        return (
            self._result is not None
            and self._result.status is RequestStatus.REJECTED
        )

    def result(self) -> QueryResult:
        """The terminal :class:`QueryResult`; raises before ``run()``."""
        if self._result is None:
            raise RuntimeError(
                f"request {self.request_id} has no result yet; "
                f"ServiceClient.run() drains the event loop and resolves "
                f"handles"
            )
        return self._result

    @property
    def popcount(self) -> int:
        return self.result().popcount

    @property
    def latency_s(self) -> float:
        return self.result().latency_s

    def _resolve(self, result: QueryResult) -> None:
        self._result = result

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._result is None
            else self._result.status.value
        )
        return (
            f"{type(self).__name__}(id={self.request_id}, "
            f"tenant={self.request.tenant!r}, {state})"
        )


class SubscriptionHandle(ResultHandle):
    """Deferred view of one standing query and its pushed deltas."""

    def __init__(self, request) -> None:
        super().__init__(request)
        #: every DeltaNotification pushed to this subscription, in
        #: delivery order (seq 0 is the initial snapshot)
        self.notifications: List[DeltaNotification] = []

    @property
    def active(self) -> bool:
        """The registration's initial evaluation completed."""
        return self.completed


class ServiceClient:
    """One facade over a serving target (single node or cluster)."""

    def __init__(self, target) -> None:
        for attr in ("submit_request", "run", "results", "notifications"):
            if not hasattr(target, attr):
                raise TypeError(
                    f"target {type(target).__name__} is not a serving "
                    f"target (missing {attr!r})"
                )
        self.target = target
        self._handles: Dict[int, ResultHandle] = {}
        self._next_id = 0
        self._last_at = 0.0

    # -- tenant/data management (pass-through) -------------------------------

    def register_tenant(self, tenant: str, quota=None, **kwargs) -> None:
        """Create a tenant on the target (``**kwargs``: target extras,
        e.g. the cluster router's ``replicas=``)."""
        self.target.register_tenant(tenant, quota, **kwargs)

    def load_vectors(self, tenant: str, vectors: Dict[str, np.ndarray]) -> None:
        self.target.load_vectors(tenant, vectors)

    def load_bitmap_index(
        self, tenant: str, column: str, bin_indices: np.ndarray, n_bins: int
    ) -> None:
        self.target.load_bitmap_index(tenant, column, bin_indices, n_bins)

    def load_bitslice_column(
        self, tenant: str, column: str, values: np.ndarray, n_bits: int
    ) -> None:
        """Load a numeric column bit-sliced (``n_bits`` plane vectors)."""
        self.target.load_bitslice_column(tenant, column, values, n_bits)

    # -- the three verbs -----------------------------------------------------

    def query(
        self,
        tenant: str,
        op: str,
        vectors: Sequence[str],
        *,
        at: Optional[float] = None,
        request_id: Optional[int] = None,
        kind: str = "bitwise",
    ) -> ResultHandle:
        """Submit a bulk-bitwise query; returns its deferred handle.

        ``kind`` tags the request for stats/routing breakdowns (a range
        predicate already lowered to bin vectors keeps ``kind="range"``,
        which is also what makes it eligible for cluster scatter).
        """
        request = QueryRequest(
            self._claim_id(request_id),
            tenant,
            op,
            tuple(vectors),
            self._arrival(at),
            kind=kind,
        )
        return self._place(request, ResultHandle(request))

    def range_query(
        self,
        tenant: str,
        column: str,
        lo: int,
        hi: int,
        *,
        at: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> ResultHandle:
        """FastBit range predicate over a loaded bitmap index."""
        request = QueryRequest.range_query(
            self._claim_id(request_id), tenant, column, lo, hi, self._arrival(at)
        )
        return self._place(request, ResultHandle(request))

    def analyze(
        self,
        tenant: str,
        filters: Sequence[tuple],
        aggregate: tuple,
        *,
        at: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> ResultHandle:
        """Submit a filter+aggregate analytics query.

        ``filters`` is a conjunction of ``("cmp", column, op, value,
        n_bits)`` predicates over bit-sliced columns and
        ``("range", column, lo, hi)`` predicates over bitmap indexes;
        ``aggregate`` is ``("count",)``, ``("sum", column, n_bits)`` or
        ``("hist", column, n_bins)``.  The result's ``popcount`` is the
        filter cardinality; ``value``/``groups`` carry the aggregate.
        """
        request = AnalyticsRequest(
            self._claim_id(request_id),
            tenant,
            tuple(tuple(f) for f in filters),
            tuple(aggregate),
            self._arrival(at),
        )
        return self._place(request, ResultHandle(request))

    def update(
        self,
        tenant: str,
        vector: str,
        bits: np.ndarray,
        *,
        at: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> ResultHandle:
        """Overwrite a resident vector's contents (the write path)."""
        request = UpdateRequest(
            self._claim_id(request_id), tenant, vector, bits, self._arrival(at)
        )
        return self._place(request, ResultHandle(request))

    def subscribe(
        self,
        tenant: str,
        op: str,
        vectors: Sequence[str],
        *,
        at: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> SubscriptionHandle:
        """Register a standing query; deltas land on the handle."""
        request = SubscribeRequest(
            self._claim_id(request_id),
            tenant,
            op,
            tuple(vectors),
            self._arrival(at),
        )
        handle = SubscriptionHandle(request)
        self._place(request, handle)
        return handle

    # -- running -------------------------------------------------------------

    def run(self, **kwargs):
        """Drain the target's event loop and resolve every handle.

        Returns whatever the target's ``run()`` returns (its stats
        object); call :meth:`ServiceClient.run` again after submitting
        more work -- resolution is idempotent.
        """
        stats = self.target.run(**kwargs)
        self._resolve_handles()
        return stats

    @property
    def stats(self):
        return self.target.stats

    def _resolve_handles(self) -> None:
        for result in self.target.results:
            handle = self._handles.get(result.request.request_id)
            if handle is not None:
                handle._resolve(result)
        # rebuild notification lists from the target's delivery log so a
        # second run() stays idempotent (no duplicate appends)
        for handle in self._handles.values():
            if isinstance(handle, SubscriptionHandle):
                handle.notifications.clear()
        for note in self.target.notifications:
            handle = self._handles.get(note.subscription_id)
            if isinstance(handle, SubscriptionHandle):
                handle.notifications.append(note)

    # -- plumbing ------------------------------------------------------------

    def _claim_id(self, request_id: Optional[int]) -> int:
        if request_id is None:
            request_id = self._next_id
        elif request_id in self._handles:
            raise ValueError(f"request id {request_id} already in use")
        self._next_id = max(self._next_id, request_id + 1)
        return request_id

    def _arrival(self, at: Optional[float]) -> float:
        if at is None:
            at = self._last_at
        if at < 0:
            raise ValueError("arrival time must be non-negative")
        self._last_at = max(self._last_at, at)
        return at

    def _place(
        self,
        request: Union[QueryRequest, UpdateRequest, SubscribeRequest],
        handle: ResultHandle,
    ) -> ResultHandle:
        self.target.submit_request(request)
        self._handles[request.request_id] = handle
        return handle
