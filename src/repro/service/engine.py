"""Execution engines: how the service drives a backend.

The scheduler hands an engine one *coalesced batch* of
:class:`ServiceCall`s (possibly from many tenants) and gets back one
:class:`ExecutedCall` per request -- result bits plus the simulated
latency/energy of that request alone.  Two engines cover every
registered backend:

- :class:`ResidentPimEngine` -- the functional Pinatubo runtime.  Tenant
  vectors are *resident*: loaded once through ``pim_malloc`` with a
  per-tenant affinity group, so :mod:`repro.runtime.os_mm` co-locates a
  tenant's vectors in one subarray (ops stay intra-subarray) while
  different tenants land on different subarrays/banks/channels -- the
  shard map the scheduler's makespan model rides on.  Batches execute
  through the driver as **one** command stream (the PR 1 batched
  engine).
- :class:`HostOracleEngine` -- any other registered backend
  (cost-model schemes, the functional in-DRAM baseline).  Vectors stay
  host-side; batches go through the backend protocol's
  ``bitwise_many``.

Both keep a host-side shadow copy of every loaded vector, which is what
the service's numpy-oracle parity checks compare against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.config import SystemConfig
from repro.backends.protocol import (
    ALL_OPS,
    BackendCapabilities,
    UnsupportedOpError,
    bitwise_oracle,
)
from repro.backends.registry import registry
from repro.runtime.wear import WearMonitor
from repro.arith.compile import AnalyticsCompiler, analytics_program_key
from repro.arith.kernels import (
    ScratchPool,
    combine_masks,
    compare_const,
    copy_plane,
    mask_bits,
    masked_histogram,
    masked_sum,
)
from repro.arith.oracle import oracle_compare_const
from repro.service.request import bin_vector_name, bitslice_vector_name

__all__ = [
    "ExecutedCall",
    "HostOracleEngine",
    "ResidentPimEngine",
    "ServiceCall",
    "ServiceEngine",
    # re-exported for compatibility; the class now lives with the
    # backend protocol (repro.backends.UnsupportedOpError)
    "UnsupportedOpError",
    "build_engine",
    "oracle_analytics",
]


@dataclass(frozen=True)
class ServiceCall:
    """One request lowered to engine vocabulary: op over named vectors.

    Analytics requests carry their ``(filters, aggregate)`` spec in
    ``analytics``; plain bitwise reads leave it ``None``.  Analytics
    calls never fold (:meth:`ServiceEngine.call_key` opts them out) but
    ride the same coalesced batches.
    """

    tenant: str
    op: str
    names: Tuple[str, ...]
    analytics: Optional[tuple] = None


@dataclass
class ExecutedCall:
    """Result + per-request simulated cost of one executed call."""

    bits: np.ndarray
    popcount: int
    latency_s: float
    energy_j: float
    steps: int
    in_memory: bool
    #: analytics aggregate value (count / masked sum / histogram total)
    value: float = 0.0
    #: analytics histogram per-bin counts; None otherwise
    groups: Optional[Tuple[int, ...]] = None


class ServiceEngine:
    """What the scheduler needs from an execution substrate."""

    name: str = "engine"

    def capabilities(self) -> BackendCapabilities:
        raise NotImplementedError

    def check_op(self, op: str) -> None:
        """Reject ops the backend cannot serve, with a clear error."""
        caps = self.capabilities()
        if not caps.supports(op):
            raise UnsupportedOpError(
                f"backend {self.name!r} cannot serve op {op!r}; "
                f"supported ops: {', '.join(sorted(caps.ops))} "
                f"(see repro.backends.registry.list() for all backends)"
            )

    def load_vector(self, tenant: str, name: str, bits: np.ndarray) -> None:
        raise NotImplementedError

    def update_vector(
        self, tenant: str, name: str, bits: np.ndarray
    ) -> ExecutedCall:
        """Overwrite a loaded vector's contents (the service write path).

        Returns the priced write: ``popcount`` is the number of bits
        that actually changed (``popcount(old XOR new)``), ``latency_s``
        / ``energy_j`` the full simulated cost of landing the write --
        on the resident engine that includes whatever the planner's
        delta-repair path spent fixing cached sub-results in place.
        """
        raise NotImplementedError

    def host_vector(self, tenant: str, name: str) -> np.ndarray:
        """Host shadow copy (the oracle's input)."""
        raise NotImplementedError

    def has_vector(self, tenant: str, name: str) -> bool:
        raise NotImplementedError

    def tenant_vectors(self, tenant: str) -> Dict[str, np.ndarray]:
        """Host shadows of every vector the tenant has loaded, by name.

        What cluster rebalancing copies when a tenant moves between
        nodes (the insertion order is the original load order, so a
        re-load on another node places vectors identically).
        """
        raise NotImplementedError

    def unload_tenant(self, tenant: str) -> int:
        """Drop a tenant's resident vectors; returns how many were freed.

        The decommission path of cluster rebalancing: after the tenant's
        vector set has been copied to its new owner, the old node
        releases the frames (and any cached sub-results reading them).
        """
        raise NotImplementedError

    def execute(self, calls: Sequence[ServiceCall]) -> List[ExecutedCall]:
        """Run one coalesced batch; one result per call, in call order."""
        raise NotImplementedError

    def call_key(self, call: ServiceCall) -> Optional[tuple]:
        """Content identity of a call, or None when folding is unsafe.

        Two calls with equal keys compute the same bits even across
        tenants (keys hash vector *content*, not names), so the
        scheduler may execute one and :meth:`replay` the other.  The
        base engine opts out: returning None keeps every call on the
        execute path.
        """
        return None

    def replay(self, call: ServiceCall, primary: ExecutedCall) -> ExecutedCall:
        """Serve ``call`` from an equal-key ``primary`` already executed
        in the same batch, with its own result buffer and honest (hit)
        pricing."""
        raise NotImplementedError

    @property
    def n_shards(self) -> int:
        """Independent placement shards requests can overlap across."""
        return 1

    def shard_of(self, tenant: str) -> int:
        """Which shard the tenant's resident data lives on."""
        return 0

    def wear_monitor(self) -> Optional[WearMonitor]:
        """Endurance monitor of the functional memory, if there is one."""
        return None


class ResidentPimEngine(ServiceEngine):
    """Functional Pinatubo runtime with resident, shard-aware placement.

    By default the engine builds its runtime with ``plan=True`` and the
    kernel compiler on: request streams go through the
    :class:`~repro.plan.QueryPlanner`, repeated sub-expressions serve
    from the sub-result cache, and recurring wave shapes replay as
    compiled numpy programs.  ``plan=False`` restores the PR 1 direct
    driver batching; ``compile=False`` keeps planning but interprets
    every wave.  When a prebuilt ``runtime`` is injected, its own
    planner configuration wins and these flags are ignored.
    """

    def __init__(
        self,
        config: SystemConfig,
        runtime=None,
        plan: bool = True,
        compile: bool = True,
    ):
        if config.backend != "pinatubo":
            raise ValueError(
                f"ResidentPimEngine serves the 'pinatubo' backend, "
                f"not {config.backend!r}"
            )
        from repro.runtime.api import PimRuntime

        self.config = config
        self.runtime = runtime or PimRuntime.from_config(
            config, plan=plan, compile=compile
        )
        executor = self.runtime.system.executor
        self.name = f"Pinatubo-{executor.limits.or_rows}"
        self._caps = BackendCapabilities(
            ops=frozenset(ALL_OPS),
            max_fanin=executor.limits.or_rows,
            in_memory=True,
            placement_sensitive=True,
            functional=True,
        )
        self._handles: Dict[Tuple[str, str], object] = {}
        self._host: Dict[Tuple[str, str], np.ndarray] = {}
        self._digests: Dict[Tuple[str, str], str] = {}
        self._tenant_shard: Dict[str, int] = {}
        #: per-(tenant, width) scratch pools for the arithmetic path;
        #: scratch allocates in the tenant's affinity group, so masks
        #: and ripple intermediates stay on the tenant's shard
        self._arith_pools: Dict[Tuple[str, int], ScratchPool] = {}
        #: whole-query analytics programs (shape-keyed, constants as
        #: parameters); self-disables on unplanned/uncompiled runtimes
        self.analytics_compiler = AnalyticsCompiler(self.runtime)
        geometry = self.runtime.system.geometry
        #: shards = independent (channel, bank) pairs: banks have their
        #: own row decoders and sense amps, so command streams touching
        #: different banks interleave on the DDR bus and execute
        #: concurrently; subarrays in one bank share the bank's command
        #: path and serialise.
        self._n_shards = geometry.channels * geometry.banks_per_rank

    @staticmethod
    def group_of(tenant: str) -> str:
        """The os_mm affinity group a tenant's vectors allocate under."""
        return f"tenant/{tenant}"

    def capabilities(self) -> BackendCapabilities:
        return self._caps

    def load_vector(self, tenant: str, name: str, bits: np.ndarray) -> None:
        key = (tenant, name)
        if key in self._handles:
            raise ValueError(f"vector {name!r} already loaded for {tenant!r}")
        bits = np.asarray(bits, dtype=np.uint8)
        rt = self.runtime
        handle = rt.pim_malloc(int(bits.size), self.group_of(tenant))
        rt.pim_write(handle, bits)
        self._handles[key] = handle
        self._host[key] = bits.copy()
        # content digest: what makes cross-tenant duplicate detection
        # name-independent (same bits under different names/tenants fold)
        self._digests[key] = hashlib.sha1(bits.tobytes()).hexdigest()
        if tenant not in self._tenant_shard:
            addr = rt.manager.frame_address(handle.frames[0])
            g = rt.system.geometry
            self._tenant_shard[tenant] = (
                addr.channel * g.banks_per_rank + addr.bank
            )

    def update_vector(
        self, tenant: str, name: str, bits: np.ndarray
    ) -> ExecutedCall:
        key = (tenant, name)
        handle = self._handles.get(key)
        if handle is None:
            raise ValueError(f"vector {name!r} not loaded for {tenant!r}")
        bits = np.asarray(bits, dtype=np.uint8)
        old = self._host[key]
        if bits.size != old.size:
            raise ValueError(
                f"update size {bits.size} != loaded size {old.size} "
                f"for {tenant!r}/{name!r}"
            )
        rt = self.runtime
        lat0, en0 = rt.total_latency(), rt.total_energy()
        # the write lands through the runtime's delta listener: cached
        # sub-results reading these rows repair in place (or fall back
        # to invalidation when recompute prices cheaper), and that cost
        # shows up in the accounting delta below
        rt.pim_write(handle, bits)
        changed = int(np.count_nonzero(old != bits))
        self._host[key] = bits.copy()
        self._digests[key] = hashlib.sha1(bits.tobytes()).hexdigest()
        return ExecutedCall(
            bits=np.zeros(0, dtype=np.uint8),
            popcount=changed,
            latency_s=(rt.total_latency() - lat0) * self.config.timing_scale,
            energy_j=(rt.total_energy() - en0) * self.config.energy_scale,
            steps=0,
            in_memory=True,
        )

    def host_vector(self, tenant: str, name: str) -> np.ndarray:
        return self._host[(tenant, name)]

    def has_vector(self, tenant: str, name: str) -> bool:
        return (tenant, name) in self._handles

    def tenant_vectors(self, tenant: str) -> Dict[str, np.ndarray]:
        return {
            name: bits.copy()
            for (owner, name), bits in self._host.items()
            if owner == tenant
        }

    def unload_tenant(self, tenant: str) -> int:
        keys = [key for key in self._handles if key[0] == tenant]
        for key in keys:
            # pim_free runs the allocator's free listeners, so a planned
            # runtime drops every cached sub-result reading these frames
            self.runtime.pim_free(self._handles.pop(key))
            del self._host[key]
            del self._digests[key]
        for pool_key in [k for k in self._arith_pools if k[0] == tenant]:
            self._arith_pools.pop(pool_key).free_all()
        self._tenant_shard.pop(tenant, None)
        return len(keys)

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, tenant: str) -> int:
        return self._tenant_shard.get(tenant, 0)

    def execute(self, calls: Sequence[ServiceCall]) -> List[ExecutedCall]:
        """One driver batch (or planner wave) for the coalesced stream.

        Analytics calls execute inline in call order (each is its own
        multi-gate kernel sequence through the planner); the plain
        bitwise reads of the batch still coalesce into one
        ``pim_op_many`` stream.
        """
        rt = self.runtime
        out: List[Optional[ExecutedCall]] = [None] * len(calls)
        plain_slots = []
        staged = []
        requests = []
        fuse_token = None
        for i, call in enumerate(calls):
            if call.analytics is not None:
                # one fusion token per engine batch: concurrent analyze
                # requests sharing a program validate once and replay
                # as a fused pass (plan.analytics.fused_batches)
                if fuse_token is None:
                    fuse_token = self.analytics_compiler.new_batch()
                out[i] = self._execute_analytics(call, fuse_token)
                continue
            sources = [self._handles[(call.tenant, n)] for n in call.names]
            n_bits = min(h.n_bits for h in sources)
            dest = rt.pim_malloc(n_bits, self.group_of(call.tenant))
            requests.append((call.op, dest, sources, n_bits))
            staged.append((dest, n_bits))
            plain_slots.append(i)
        # pim_op_many routes through the planner (cache serves, compiled
        # replay) when the runtime has one, and is plain submit+flush
        # otherwise; results come back in submission order either way
        results = rt.pim_op_many(requests) if requests else []
        for i, (dest, n_bits), result in zip(plain_slots, staged, results):
            bits = rt.pim_read(dest, n_bits)
            rt.pim_free(dest)
            out[i] = ExecutedCall(
                bits=bits,
                popcount=int(bits.sum()),
                latency_s=result.latency * self.config.timing_scale,
                energy_j=result.energy * self.config.energy_scale,
                steps=result.steps,
                in_memory=result.steps > 0,
            )
        return out

    def _arith_pool(self, tenant: str, n_bits: int) -> ScratchPool:
        key = (tenant, n_bits)
        pool = self._arith_pools.get(key)
        if pool is None:
            # scratch must share the tenant's affinity group: in-memory
            # bitwise ops require same-chip placement with the operands
            pool = ScratchPool(
                self.runtime,
                n_bits,
                group=self.group_of(tenant),
            )
            self._arith_pools[key] = pool
        return pool

    def _execute_analytics(
        self, call: ServiceCall, fuse_token: Optional[int] = None
    ) -> ExecutedCall:
        """Run one filter+aggregate query on the resident vectors.

        Every gate goes through the runtime (priced by the controller,
        planned and compiled like any other stream); the cost of the
        whole kernel sequence is the runtime accounting delta, exactly
        how :meth:`update_vector` prices delta repair.  On a compiled
        runtime a steady repeated query replays its
        :class:`~repro.arith.compile.AnalyticsProgram` instead --
        identical answers, bits and pricing, no planner work.
        """
        rt = self.runtime
        tenant = call.tenant
        filters, aggregate = call.analytics
        compiler = self.analytics_compiler
        tape = None
        if compiler.enabled:
            key, constants = analytics_program_key(
                filters, aggregate, scope=tenant
            )
            rec = compiler.replay(key, constants, token=fuse_token)
            if rec is not None:
                return ExecutedCall(
                    bits=rec.unpack_bits(),
                    popcount=rec.popcount,
                    latency_s=rec.latency_s * self.config.timing_scale,
                    energy_j=rec.energy_j * self.config.energy_scale,
                    steps=rec.instructions,
                    in_memory=True,
                    value=rec.value,
                    groups=rec.groups,
                )
        handles = {n: self._handles[(tenant, n)] for n in call.names}
        n_elems = min(h.n_bits for h in handles.values())
        pool = self._arith_pool(tenant, n_elems)
        if compiler.enabled:
            tape = compiler.observe(
                key,
                constants,
                lambda: list(handles.values()) + pool._constants,
            )
            if tape is not None and tape.scratch_high_water:
                pool.preallocate(tape.scratch_high_water)
        lat0, en0 = rt.total_latency(), rt.total_energy()
        instr0 = rt.driver.stats.instructions
        masks = []
        requests: list = []
        for pred in filters:
            if pred[0] == "cmp":
                _, column, op, value, n_bits = pred
                planes = [
                    handles[bitslice_vector_name(column, j)]
                    for j in range(n_bits)
                ]
                masks.append(compare_const(pool, planes, op, value, requests))
            else:
                _, column, lo, hi = pred
                bins = [
                    handles[bin_vector_name(column, b)]
                    for b in range(lo, hi + 1)
                ]
                dest = pool.take()
                if len(bins) == 1:
                    requests.append(("or", dest, [bins[0], pool.zero]))
                else:
                    requests.append(("or", dest, bins))
                masks.append(dest)
        mask = (
            combine_masks(pool, masks, requests)
            if masks
            else copy_plane(pool, pool.ones, requests)
        )
        # all predicate chains plus the conjunction land as one wave
        if requests:
            rt.pim_op_many(requests)
        # one to-host stream materialises the mask bits AND its count
        # (the count is free once the bits crossed the bus)
        bits = mask_bits(pool, mask)
        popcount = int(bits.sum())
        groups: Optional[Tuple[int, ...]] = None
        if aggregate[0] == "count":
            value = float(popcount)
        elif aggregate[0] == "sum":
            _, column, n_bits = aggregate
            planes = [
                handles[bitslice_vector_name(column, j)]
                for j in range(n_bits)
            ]
            value = float(masked_sum(pool, planes, mask))
        else:
            _, column, n_bins = aggregate
            bins = [
                handles[bin_vector_name(column, b)] for b in range(n_bins)
            ]
            groups = tuple(masked_histogram(pool, bins, mask))
            value = float(sum(groups))
        if tape is not None:
            tape.finish(
                popcount=popcount,
                value=value,
                groups=groups,
                bits=bits,
                high_water=pool.high_water,
            )
        pool.recycle()
        pool.assert_drained()
        return ExecutedCall(
            bits=bits,
            popcount=popcount,
            latency_s=(rt.total_latency() - lat0) * self.config.timing_scale,
            energy_j=(rt.total_energy() - en0) * self.config.energy_scale,
            steps=int(rt.driver.stats.instructions - instr0),
            in_memory=True,
            value=value,
            groups=groups,
        )

    def call_key(self, call: ServiceCall) -> Optional[tuple]:
        """(op, n_bits, canonical operand digests) -- content identity.

        Operand digests canonicalise exactly like the planner's
        expression keys: OR/AND are commutative *and* idempotent
        (sorted set), XOR is commutative only (sorted multiset), INV
        keeps its single operand.  Analytics calls opt out of folding
        (their result is a kernel sequence, not one op's bits).
        """
        if call.analytics is not None:
            return None
        digests = []
        sizes = []
        for n in call.names:
            key = (call.tenant, n)
            digest = self._digests.get(key)
            if digest is None:
                return None
            digests.append(digest)
            sizes.append(self._handles[key].n_bits)
        op = call.op
        if op in ("or", "and"):
            operands = tuple(sorted(set(digests)))
        elif op == "xor":
            operands = tuple(sorted(digests))
        else:
            operands = tuple(digests)
        return (op, min(sizes), operands)

    def replay(self, call: ServiceCall, primary: ExecutedCall) -> ExecutedCall:
        """Forward an equal-content primary result into a fresh buffer in
        the duplicate tenant's placement group, priced as a row-buffer
        read (see :func:`repro.plan.forward_rows`) -- nonzero simulated
        cost, but no re-execution and no NVM write-back."""
        from repro.plan import forward_rows

        rt = self.runtime
        n_bits = int(primary.bits.size)
        dest = rt.pim_malloc(n_bits, self.group_of(call.tenant))
        g = rt.system.geometry
        n_chunks = g.rows_for_bits(n_bits)
        padded = np.zeros(n_chunks * g.row_bits, dtype=np.uint8)
        padded[:n_bits] = primary.bits
        rows = np.packbits(
            padded.reshape(n_chunks, g.row_bits), axis=1, bitorder="little"
        )
        result = forward_rows(rt.driver, list(dest.frames), rows, n_bits)
        rt.pim_free(dest)
        return ExecutedCall(
            bits=primary.bits.copy(),
            popcount=primary.popcount,
            latency_s=result.latency * self.config.timing_scale,
            energy_j=result.energy * self.config.energy_scale,
            steps=0,
            in_memory=True,
        )

    def wear_monitor(self) -> WearMonitor:
        return WearMonitor(
            self.runtime.system.memory,
            self.runtime.system.technology,
        )


class HostOracleEngine(ServiceEngine):
    """Any registered backend, with vectors held host-side."""

    def __init__(self, config: SystemConfig, n_shards: int = 1):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.config = config
        self.backend = registry.create(config.backend, config)
        self.name = self.backend.name
        self._vectors: Dict[Tuple[str, str], np.ndarray] = {}
        self._tenant_shard: Dict[str, int] = {}
        self._shards = n_shards

    def capabilities(self) -> BackendCapabilities:
        return self.backend.capabilities()

    def load_vector(self, tenant: str, name: str, bits: np.ndarray) -> None:
        key = (tenant, name)
        if key in self._vectors:
            raise ValueError(f"vector {name!r} already loaded for {tenant!r}")
        self._vectors[key] = np.asarray(bits, dtype=np.uint8).copy()
        if tenant not in self._tenant_shard:
            # registration order round-robin: deterministic and balanced
            self._tenant_shard[tenant] = len(self._tenant_shard) % self._shards

    def update_vector(
        self, tenant: str, name: str, bits: np.ndarray
    ) -> ExecutedCall:
        key = (tenant, name)
        old = self._vectors.get(key)
        if old is None:
            raise ValueError(f"vector {name!r} not loaded for {tenant!r}")
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != old.size:
            raise ValueError(
                f"update size {bits.size} != loaded size {old.size} "
                f"for {tenant!r}/{name!r}"
            )
        changed = int(np.count_nonzero(old != bits))
        self._vectors[key] = bits.copy()
        # host-side vectors: the overwrite is a host memcpy, free on the
        # simulated device timeline
        return ExecutedCall(
            bits=np.zeros(0, dtype=np.uint8),
            popcount=changed,
            latency_s=0.0,
            energy_j=0.0,
            steps=0,
            in_memory=False,
        )

    def host_vector(self, tenant: str, name: str) -> np.ndarray:
        return self._vectors[(tenant, name)]

    def has_vector(self, tenant: str, name: str) -> bool:
        return (tenant, name) in self._vectors

    def tenant_vectors(self, tenant: str) -> Dict[str, np.ndarray]:
        return {
            name: bits.copy()
            for (owner, name), bits in self._vectors.items()
            if owner == tenant
        }

    def unload_tenant(self, tenant: str) -> int:
        keys = [key for key in self._vectors if key[0] == tenant]
        for key in keys:
            del self._vectors[key]
        self._tenant_shard.pop(tenant, None)
        return len(keys)

    @property
    def n_shards(self) -> int:
        return self._shards

    def shard_of(self, tenant: str) -> int:
        return self._tenant_shard.get(tenant, 0)

    def execute(self, calls: Sequence[ServiceCall]) -> List[ExecutedCall]:
        out: List[Optional[ExecutedCall]] = [None] * len(calls)
        plain_slots = []
        requests = []
        for i, call in enumerate(calls):
            if call.analytics is not None:
                # host-side vectors: analytics evaluates as plain numpy,
                # free on the simulated device timeline (same convention
                # as this engine's updates)
                filters, aggregate = call.analytics
                mask, value, groups = oracle_analytics(
                    self, call.tenant, filters, aggregate
                )
                out[i] = ExecutedCall(
                    bits=mask,
                    popcount=int(mask.sum()),
                    latency_s=0.0,
                    energy_j=0.0,
                    steps=0,
                    in_memory=False,
                    value=value,
                    groups=groups,
                )
                continue
            requests.append(
                (
                    call.op,
                    [self._vectors[(call.tenant, n)] for n in call.names],
                )
            )
            plain_slots.append(i)
        runs = self.backend.bitwise_many(requests) if requests else []
        for i, run in zip(plain_slots, runs):
            out[i] = ExecutedCall(
                bits=run.bits,
                popcount=int(run.bits.sum()),
                latency_s=run.stats.latency,
                energy_j=run.stats.energy,
                steps=run.stats.steps,
                in_memory=run.stats.in_memory,
            )
        return out


def build_engine(
    config: SystemConfig,
    host_shards: int = 1,
    runtime=None,
    plan: bool = True,
    compile: bool = True,
) -> ServiceEngine:
    """The engine a :class:`SystemConfig` calls for.

    ``pinatubo`` gets the resident shard-aware engine (optionally over a
    caller-built runtime, e.g. a custom benchmark geometry); everything
    else goes through the backend protocol host-side.  ``plan`` /
    ``compile`` configure the pinatubo engine's planner and kernel
    compiler (both on by default; ignored with an injected runtime).
    """
    if config.backend == "pinatubo":
        return ResidentPimEngine(config, runtime=runtime, plan=plan, compile=compile)
    if runtime is not None:
        raise ValueError("runtime injection only applies to 'pinatubo'")
    return HostOracleEngine(config, n_shards=host_shards)


def oracle_bits(
    engine: ServiceEngine, tenant: str, op: str, names: Sequence[str]
) -> np.ndarray:
    """Numpy-oracle result for a request, off the host shadow copies."""
    operands = [engine.host_vector(tenant, n) for n in names]
    n_bits = min(o.size for o in operands)
    return bitwise_oracle(op, [o[:n_bits] for o in operands])


def _oracle_column(
    engine: ServiceEngine, tenant: str, column: str, n_bits: int
) -> np.ndarray:
    """Recompose a bit-sliced column's values from its plane shadows."""
    planes = [
        engine.host_vector(tenant, bitslice_vector_name(column, j))
        for j in range(n_bits)
    ]
    n = min(p.size for p in planes)
    values = np.zeros(n, dtype=np.int64)
    for j, plane in enumerate(planes):
        values += plane[:n].astype(np.int64) << j
    return values


def oracle_analytics(
    engine: ServiceEngine, tenant: str, filters, aggregate
) -> Tuple[np.ndarray, float, Optional[Tuple[int, ...]]]:
    """Numpy-oracle evaluation of one analytics query off the shadows.

    Returns ``(mask_bits, value, groups)`` -- the exact triple the PIM
    execution must reproduce (``verify_results`` compares all three).
    """
    mask: Optional[np.ndarray] = None
    for pred in filters:
        if pred[0] == "cmp":
            _, column, op, value, n_bits = pred
            values = _oracle_column(engine, tenant, column, n_bits)
            part = oracle_compare_const(values, op, value)
        else:
            _, column, lo, hi = pred
            bins = [
                engine.host_vector(tenant, bin_vector_name(column, b))
                for b in range(lo, hi + 1)
            ]
            n = min(b.size for b in bins)
            part = np.zeros(n, dtype=np.uint8)
            for b in bins:
                part |= b[:n]
        if mask is None:
            mask = part
        else:
            n = min(mask.size, part.size)
            mask = mask[:n] & part[:n]
    if mask is None:
        # unfiltered aggregate: every row of the referenced column
        if aggregate[0] == "sum":
            n = _oracle_column(
                engine, tenant, aggregate[1], aggregate[2]
            ).size
        else:
            n = engine.host_vector(
                tenant, bin_vector_name(aggregate[1], 0)
            ).size
        mask = np.ones(n, dtype=np.uint8)
    groups: Optional[Tuple[int, ...]] = None
    if aggregate[0] == "count":
        value = float(int(mask.sum()))
    elif aggregate[0] == "sum":
        _, column, n_bits = aggregate
        values = _oracle_column(engine, tenant, column, n_bits)
        n = min(values.size, mask.size)
        value = float(int(values[:n][mask[:n].astype(bool)].sum()))
    else:
        _, column, n_bins = aggregate
        counts = []
        for b in range(n_bins):
            bits = engine.host_vector(tenant, bin_vector_name(column, b))
            n = min(bits.size, mask.size)
            counts.append(int((bits[:n] & mask[:n]).sum()))
        groups = tuple(counts)
        value = float(sum(groups))
    return mask, value, groups
