"""Admission control: per-tenant quotas, pacing, and bounded queues.

The service front door.  Each tenant gets a :class:`TenantQuota`:

- a **queue bound** (``max_pending``): admitted-but-unserved requests a
  tenant may hold.  Beyond it, requests are rejected outright -- the
  backpressure signal that keeps one misbehaving tenant from growing the
  service's memory without bound or starving everyone else's batches;
- a **rate quota** (``rate_per_s``/``burst``): a deterministic token
  bucket over *simulated* time.  Over-rate requests are either rejected
  (``OverloadPolicy.REJECT``) or paced (``OverloadPolicy.DELAY``): the
  request reserves the next future token and enters the queue when it
  materialises, up to ``max_delay_s`` of pacing delay.

Everything here is pure state + simulated timestamps: no wall clock, no
threads, so admission decisions replay identically under a fixed seed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Admit",
    "OverloadPolicy",
    "TenantQuota",
    "TokenBucket",
]


class OverloadPolicy(enum.Enum):
    """What happens to a request that exceeds the tenant's rate quota."""

    REJECT = "reject"
    DELAY = "delay"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (defaults: generous but bounded)."""

    #: admitted-but-unserved requests the tenant may hold (queue bound)
    max_pending: int = 64
    #: steady-state request rate (tokens/simulated second); inf = unmetered
    rate_per_s: float = math.inf
    #: token-bucket capacity (max burst admitted at once)
    burst: int = 32
    #: over-rate requests: reject outright, or pace them into the future
    policy: OverloadPolicy = OverloadPolicy.REJECT
    #: pacing bound: a DELAY-policy request that would wait longer is
    #: rejected anyway (protects the latency tail and bounds the queue)
    max_delay_s: float = 1.0
    #: standing queries the tenant may keep active at once: every write
    #: re-evaluates each subscription reading it, so fan-out multiplies
    #: the cost of the tenant's own updates and must stay bounded
    max_subscriptions: int = 8

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not self.rate_per_s > 0:
            raise ValueError("rate_per_s must be positive (or inf)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.max_subscriptions < 0:
            raise ValueError("max_subscriptions must be non-negative")


class TokenBucket:
    """Deterministic token bucket over simulated time, with reservation."""

    def __init__(self, rate_per_s: float, burst: int):
        self.rate = float(rate_per_s)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.updated_s = 0.0

    def _refill(self, now: float) -> None:
        if now > self.updated_s:
            if math.isinf(self.rate):
                self.tokens = self.capacity
            else:
                self.tokens = min(
                    self.capacity,
                    self.tokens + (now - self.updated_s) * self.rate,
                )
            self.updated_s = now

    def wait_s(self, now: float) -> float:
        """Seconds until a token is available (0.0 = available now).

        Accounts for reservations that already advanced the bucket into
        the future: the wait is measured from ``now``, not from the
        bucket's internal timestamp.
        """
        if math.isinf(self.rate):
            return 0.0
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        base = max(now, self.updated_s)
        return (base - now) + (1.0 - self.tokens) / self.rate

    def take(self, now: float) -> bool:
        """Consume a token now if one is available."""
        if math.isinf(self.rate):
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def reserve(self, now: float) -> float:
        """Consume the *next* token, possibly in the future.

        Returns the simulated time the token materialises; the bucket
        state advances to that instant, so successive reservations pace
        out at exactly ``1/rate`` apart.
        """
        if math.isinf(self.rate):
            return now
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return now
        # the bucket may already be committed into the future by earlier
        # reservations; this token materialises after those
        base = max(now, self.updated_s)
        when = base + (1.0 - self.tokens) / self.rate
        self.tokens = 0.0
        self.updated_s = when
        return when


class Admit(enum.Enum):
    """Outcome class of one admission decision."""

    ENQUEUE = "enqueue"  # into the tenant queue right now
    DELAY = "delay"  # paced: enqueue at ``retry_at_s``
    REJECT = "reject"


@dataclass(frozen=True)
class AdmissionDecision:
    outcome: Admit
    retry_at_s: float = 0.0  # only for DELAY
    reason: str = ""  # only for REJECT


class AdmissionController:
    """Applies each tenant's quota to its arrival stream."""

    def __init__(self) -> None:
        self._quotas: Dict[str, TenantQuota] = {}
        self._buckets: Dict[str, TokenBucket] = {}

    def register(self, tenant: str, quota: Optional[TenantQuota] = None) -> None:
        if tenant in self._quotas:
            raise ValueError(f"tenant {tenant!r} already registered")
        quota = quota or TenantQuota()
        self._quotas[tenant] = quota
        self._buckets[tenant] = TokenBucket(quota.rate_per_s, quota.burst)

    def deregister(self, tenant: str) -> None:
        """Forget a tenant's quota and bucket (cluster rebalancing)."""
        if tenant not in self._quotas:
            raise KeyError(f"tenant {tenant!r} not registered")
        del self._quotas[tenant]
        del self._buckets[tenant]

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas[tenant]

    def decide(self, tenant: str, now: float, pending: int) -> AdmissionDecision:
        """Admission decision for one arrival.

        ``pending`` is the tenant's current admitted-but-unserved count
        (queued + pacing-delayed), maintained by the service.
        """
        quota = self._quotas[tenant]
        if pending >= quota.max_pending:
            return AdmissionDecision(
                Admit.REJECT,
                reason=(
                    f"queue full: {pending}/{quota.max_pending} "
                    f"pending requests"
                ),
            )
        bucket = self._buckets[tenant]
        if bucket.take(now):
            return AdmissionDecision(Admit.ENQUEUE)
        if quota.policy is OverloadPolicy.REJECT:
            return AdmissionDecision(
                Admit.REJECT,
                reason=f"rate quota exceeded ({quota.rate_per_s:g} req/s)",
            )
        wait = bucket.wait_s(now)
        if wait > quota.max_delay_s:
            return AdmissionDecision(
                Admit.REJECT,
                reason=(
                    f"rate quota exceeded: pacing delay {wait:.3g}s "
                    f"over bound {quota.max_delay_s:g}s"
                ),
            )
        return AdmissionDecision(Admit.DELAY, retry_at_s=bucket.reserve(now))

    def decide_subscribe(
        self, tenant: str, now: float, pending: int, active: int
    ) -> AdmissionDecision:
        """Admission decision for one standing-query registration.

        Runs the normal :meth:`decide` gauntlet (the registration's
        first evaluation rides a regular batch), then meters fan-out:
        ``active`` is the tenant's current standing-query count.
        """
        quota = self._quotas[tenant]
        if active >= quota.max_subscriptions:
            return AdmissionDecision(
                Admit.REJECT,
                reason=(
                    f"subscription fan-out bound: "
                    f"{active}/{quota.max_subscriptions} standing queries"
                ),
            )
        return self.decide(tenant, now, pending)
