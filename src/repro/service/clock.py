"""Deterministic simulated-time event loop for the serving layer.

The service never reads the wall clock: every timestamp -- request
arrivals, dispatches, completions -- lives on one simulated timeline
driven by this loop.  Two runs with the same inputs therefore produce
*byte-identical* latency distributions, which is what makes service
experiments reproducible (and debuggable) at all.

Events are ordered by ``(time, insertion sequence)``: ties break by the
order the events were scheduled, never by hash order or allocation
address, so the execution order is a pure function of the inputs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventLoop"]


class EventLoop:
    """A minimal discrete-event loop with a monotonic simulated clock."""

    def __init__(self) -> None:
        self.now = 0.0  # simulated seconds
        self.events_processed = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def pending(self) -> int:
        """Events scheduled but not yet run."""
        return len(self._heap)

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past: {when} < now {self.now}"
            )
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``max_events`` is a livelock guard: exceeding it raises
        ``RuntimeError`` instead of spinning forever, so a scheduling bug
        (an event that keeps rescheduling itself) fails loudly in tests
        rather than hanging the suite.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {processed} events "
                    f"({self.pending} still pending): possible livelock"
                )
            when, _seq, callback = heapq.heappop(self._heap)
            self.now = when  # heap order guarantees monotonicity
            callback()
            processed += 1
        self.events_processed += processed
        return processed
