"""The coalescing scheduler: cross-tenant batching + shard-aware pricing.

Buddy-RAM and the in-DRAM bulk-bitwise literature make the argument this
module implements: a bulk-bitwise substrate pays off when a scheduler
funnels *many* application queries into dense in-memory command streams.
Two mechanisms here:

- **Cross-tenant coalescing.**  When the server frees up, the scheduler
  drains up to ``max_batch`` admitted requests round-robin across tenant
  queues (deterministic rotation, so no tenant owns the front slot) and
  executes them as **one** driver command batch -- one mode-register
  setup and one command-stream issue instead of one per request.
- **Shard-aware makespan.**  Tenant data is placed by
  :mod:`repro.runtime.os_mm` into per-tenant subarrays, so requests of
  different tenants usually touch different (channel, bank) shards.
  Banks own their row decoders and sense amps; the controller interleaves
  their command streams, so requests on different shards overlap in time.
  The batch's simulated makespan is therefore the *maximum over shards*
  of the per-shard serial sums -- not the total sum a one-at-a-time
  service pays -- plus one ``dispatch_overhead_s`` for the stream issue.

The scheduler is substrate-agnostic: with the default
:class:`~repro.service.engine.ResidentPimEngine` each dispatched batch
runs through the planner's compiled path (sub-result cache serves plus
:mod:`repro.plan.compile` program replay for recurring wave shapes), so
steady-state dispatch wall-clock is dominated by a few vectorized numpy
passes rather than per-op Python.  Build the engine with
``compile=False`` (or ``plan=False``) to fall back to interpreted
execution; simulated pricing is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro import telemetry
from repro.service.engine import ExecutedCall, ServiceEngine
from repro.service.request import QueryRequest

__all__ = ["BatchPricing", "CoalescingScheduler", "SchedulerConfig"]

#: always-live tally of duplicate calls served by replay instead of
#: execution (per-scheduler detail on ``CoalescingScheduler.folds``)
_CSE_FOLDS = telemetry.counter("service.scheduler.cse_folds")
#: non-empty batches dispatched, and the size of the most recent one --
#: read next to the plan.compile.* counters to see how much of the
#: dispatch stream the kernel compiler is absorbing
_DISPATCHES = telemetry.counter("service.scheduler.dispatches")
_BATCH_SIZE = telemetry.gauge("service.scheduler.batch_size")
#: analytics reads dispatched.  The scheduler's contribution to analyze
#: fusion is structural: all analyze requests of one dispatch reach the
#: engine in a *single* ``execute`` batch, so the engine validates each
#: analytics program once per batch token and replays every same-shape
#: request against that one validation (``plan.analytics.fused_batches``
#: counts the batches where that actually fused >= 2 requests).
_ANALYTICS_CALLS = telemetry.counter("service.scheduler.analytics_calls")


@dataclass(frozen=True)
class SchedulerConfig:
    """Dispatch policy knobs."""

    #: requests coalesced into one command-stream dispatch (1 = the
    #: no-batching baseline configuration)
    max_batch: int = 16
    #: per-dispatch issue cost: driver scheduling + mode-register
    #: programming + command-stream setup, paid once per batch (s)
    dispatch_overhead_s: float = 1e-6
    #: fold equal-content calls within a batch into one execution plus
    #: per-duplicate replays (engines that cannot prove content equality
    #: return None from ``call_key`` and opt out per call)
    fold_duplicates: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be non-negative")


@dataclass
class BatchPricing:
    """Simulated timing of one dispatched batch."""

    #: per-request completion offset from dispatch time (s), in batch order
    completion_offsets: List[float]
    #: dispatch-to-last-completion time; the server is busy this long
    makespan_s: float
    #: total energy of the batch (energy adds across shards)
    energy_j: float


class CoalescingScheduler:
    """Drains tenant queues into shard-priced command-stream batches."""

    def __init__(self, config: SchedulerConfig, engine: ServiceEngine):
        self.config = config
        self.engine = engine
        self._rr_offset = 0  # rotating round-robin start position
        self.folds = 0  # duplicate calls served by replay

    # -- collection ----------------------------------------------------------

    def collect(
        self, queues: Dict[str, Deque[QueryRequest]]
    ) -> List[QueryRequest]:
        """Pop up to ``max_batch`` requests, round-robin across tenants.

        Tenant order is registration order rotated by a per-dispatch
        offset: deterministic, but no tenant permanently owns the first
        slot of every batch.
        """
        tenants = list(queues)
        if not tenants:
            return []
        n = len(tenants)
        start = self._rr_offset % n
        self._rr_offset += 1
        batch: List[QueryRequest] = []
        index = start
        empty_streak = 0
        while len(batch) < self.config.max_batch and empty_streak < n:
            queue = queues[tenants[index % n]]
            if queue:
                batch.append(queue.popleft())
                empty_streak = 0
            else:
                empty_streak += 1
            index += 1
        return batch

    # -- pricing -------------------------------------------------------------

    def price(
        self,
        requests: Sequence[QueryRequest],
        executed: Sequence[ExecutedCall],
    ) -> BatchPricing:
        """Shard-aware batch timing from per-request execution costs.

        Requests on the same shard serialise (prefix sums); different
        shards overlap.  Every request additionally waits out the single
        per-batch dispatch overhead.
        """
        overhead = self.config.dispatch_overhead_s
        shard_elapsed: Dict[int, float] = {}
        offsets: List[float] = []
        for request, call in zip(requests, executed):
            shard = self.engine.shard_of(request.tenant)
            elapsed = shard_elapsed.get(shard, 0.0) + call.latency_s
            shard_elapsed[shard] = elapsed
            offsets.append(overhead + elapsed)
        makespan = overhead + max(shard_elapsed.values(), default=0.0)
        energy = sum(call.energy_j for call in executed)
        return BatchPricing(
            completion_offsets=offsets,
            makespan_s=makespan,
            energy_j=energy,
        )

    # -- one-call dispatch ----------------------------------------------------

    def dispatch(
        self, queues: Dict[str, Deque[QueryRequest]]
    ) -> Tuple[List[QueryRequest], List[ExecutedCall], BatchPricing]:
        """Collect, execute, and price one batch (empty batch = no-op).

        Mixed batches reorder **updates before reads**: within one
        dispatch a write lands before any read executes, so a batch has
        read-your-writes semantics on the simulated timeline (the
        returned batch list reflects the execution order).  On the
        resident engine each update flows through the runtime's
        delta-repair listener, so cached sub-results the following reads
        hit are already repaired, in the same coalesced dispatch.
        """
        batch = self.collect(queues)
        if not batch:
            return [], [], BatchPricing([], 0.0, 0.0)
        updates = [r for r in batch if getattr(r, "kind", "") == "update"]
        reads = [r for r in batch if getattr(r, "kind", "") != "update"]
        batch = updates + reads
        _DISPATCHES.add()
        _BATCH_SIZE.set(len(batch))
        n_analytics = sum(
            1 for r in reads if getattr(r, "kind", "") == "analytics"
        )
        if n_analytics:
            _ANALYTICS_CALLS.add(n_analytics)
        executed = [
            self.engine.update_vector(r.tenant, r.vector, r.bits)
            for r in updates
        ]
        if reads:
            executed += self._execute_folded(
                [request_call(request) for request in reads]
            )
        return batch, executed, self.price(batch, executed)

    def execute_calls(self, calls: List) -> List[ExecutedCall]:
        """Execute extra calls riding the current dispatch.

        The service uses this for standing-query refreshes triggered by
        the batch's updates: they run through the same folding path and
        are priced by the caller *together with* the batch (one combined
        :meth:`price` call), so a refresh shares the dispatch overhead
        and serialises on its tenant's shard like any batched read.
        """
        if not calls:
            return []
        return self._execute_folded(list(calls))

    def _execute_folded(self, calls: List) -> List[ExecutedCall]:
        """Execute a call list with cross-tenant duplicate folding.

        Equal-key calls (content equality, possibly across tenants)
        execute once; every duplicate gets its own result buffer through
        the engine's replay path at hit price.  Per-call ExecutedCalls
        keep their tenant's attribution, so ServiceStats stay per-tenant
        correct.
        """
        if not self.config.fold_duplicates:
            return self.engine.execute(calls)
        keys = [self.engine.call_key(call) for call in calls]
        primary_of: Dict[tuple, int] = {}
        unique: List[int] = []
        for i, key in enumerate(keys):
            if key is None or key not in primary_of:
                if key is not None:
                    primary_of[key] = i
                unique.append(i)
        if len(unique) == len(calls):
            return self.engine.execute(calls)
        executed = dict(
            zip(unique, self.engine.execute([calls[i] for i in unique]))
        )
        out: List[ExecutedCall] = []
        for i, (call, key) in enumerate(zip(calls, keys)):
            done = executed.get(i)
            if done is None:
                done = self.engine.replay(call, executed[primary_of[key]])
                self.folds += 1
                _CSE_FOLDS.add()
            out.append(done)
        return out


def request_call(request: QueryRequest):
    """Lower a request to the engine's call vocabulary.

    Analytics requests carry their ``(filters, aggregate)`` spec so the
    engine runs the arithmetic kernel sequence; the names list is the
    full set of vectors the query reads (admission fan-in, validation).
    """
    from repro.service.engine import ServiceCall

    analytics = None
    if getattr(request, "kind", "") == "analytics":
        analytics = (request.filters, request.aggregate)
    return ServiceCall(
        tenant=request.tenant,
        op=request.op,
        names=request.vectors,
        analytics=analytics,
    )
