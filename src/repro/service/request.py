"""Request/response model of the bitmap-query service.

A :class:`QueryRequest` is one tenant-issued bulk-bitwise query over
*named* bit-vectors the tenant loaded beforehand: a plain bitwise op
(OR/AND/XOR/INV over data vectors) or a FastBit-style range query, which
lowers to a wide OR over the covered bins' bitmap vectors (exactly how
:mod:`repro.apps.fastbit` evaluates range predicates).

A :class:`QueryResult` records what happened to the request on the
simulated timeline: admission outcome, queueing delay, simulated service
time, energy, and the result popcount (plus the raw bits when the
service is configured to keep them, which the parity tests use).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.ops import PimOp

__all__ = ["QueryRequest", "QueryResult", "RequestStatus"]


class RequestStatus(enum.Enum):
    """Terminal state of one request."""

    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class QueryRequest:
    """One bulk-bitwise query from one tenant."""

    request_id: int
    tenant: str
    op: str  # "or" / "and" / "xor" / "inv"
    vectors: Tuple[str, ...]  # named bit-vectors of the tenant's dataset
    arrival_s: float  # open-loop arrival time on the simulated clock
    kind: str = "bitwise"  # "bitwise" | "range" (stats breakdown only)

    def __post_init__(self) -> None:
        op = PimOp.parse(self.op).value
        object.__setattr__(self, "op", op)
        if not self.tenant:
            raise ValueError("request needs a tenant")
        if not self.vectors:
            raise ValueError("request needs at least one vector")
        if op == "inv" and len(self.vectors) != 1:
            raise ValueError("inv takes exactly one vector")
        if op != "inv" and len(self.vectors) < 2:
            raise ValueError(f"{op} needs at least two vectors")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    @classmethod
    def bitwise(
        cls, request_id: int, tenant: str, op: str, vectors, arrival_s: float
    ) -> "QueryRequest":
        return cls(request_id, tenant, op, tuple(vectors), arrival_s)

    @classmethod
    def range_query(
        cls,
        request_id: int,
        tenant: str,
        column: str,
        lo: int,
        hi: int,
        arrival_s: float,
    ) -> "QueryRequest":
        """FastBit range predicate: OR over bins ``[lo, hi]`` of a column.

        Bin bitmap vectors are named ``{column}/bin{b}`` by
        ``BitmapQueryService.load_bitmap_index``.
        """
        if lo > hi:
            raise ValueError(f"empty bin range on {column}: [{lo}, {hi}]")
        bins = tuple(bin_vector_name(column, b) for b in range(lo, hi + 1))
        if len(bins) == 1:  # single-bin range: read-through OR with itself
            bins = bins * 2
        return cls(request_id, tenant, "or", bins, arrival_s, kind="range")

    @property
    def fanin(self) -> int:
        return len(self.vectors)


def bin_vector_name(column: str, bin_index: int) -> str:
    """Canonical vector name of one bitmap-index bin."""
    return f"{column}/bin{bin_index}"


@dataclass
class QueryResult:
    """Terminal record of one request on the simulated timeline."""

    request: QueryRequest
    status: RequestStatus
    popcount: int = 0
    dispatched_s: float = 0.0  # when the scheduler issued it
    completed_s: float = 0.0  # when its shard finished it
    service_s: float = 0.0  # simulated execution time of this request alone
    energy_j: float = 0.0
    batch_id: int = -1  # command-stream batch it rode in (-1: never ran)
    reject_reason: str = ""
    bits: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion simulated latency (0 for rejects)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.completed_s - self.request.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent admitted-but-undispatched (includes pacing delay)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.dispatched_s - self.request.arrival_s

    def to_dict(self) -> dict:
        return {
            "request_id": self.request.request_id,
            "tenant": self.request.tenant,
            "op": self.request.op,
            "kind": self.request.kind,
            "status": self.status.value,
            "popcount": self.popcount,
            "arrival_s": self.request.arrival_s,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
            "service_s": self.service_s,
            "energy_j": self.energy_j,
            "batch_id": self.batch_id,
            "reject_reason": self.reject_reason,
        }
