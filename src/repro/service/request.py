"""Request/response model of the bitmap-query service.

A :class:`QueryRequest` is one tenant-issued bulk-bitwise query over
*named* bit-vectors the tenant loaded beforehand: a plain bitwise op
(OR/AND/XOR/INV over data vectors) or a FastBit-style range query, which
lowers to a wide OR over the covered bins' bitmap vectors (exactly how
:mod:`repro.apps.fastbit` evaluates range predicates).

A :class:`QueryResult` records what happened to the request on the
simulated timeline: admission outcome, queueing delay, simulated service
time, energy, and the result popcount (plus the raw bits when the
service is configured to keep them, which the parity tests use).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.ops import PimOp

__all__ = [
    "DeltaNotification",
    "QueryRequest",
    "QueryResult",
    "RequestStatus",
    "SubscribeRequest",
    "UpdateRequest",
]


class RequestStatus(enum.Enum):
    """Terminal state of one request."""

    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class QueryRequest:
    """One bulk-bitwise query from one tenant."""

    request_id: int
    tenant: str
    op: str  # "or" / "and" / "xor" / "inv"
    vectors: Tuple[str, ...]  # named bit-vectors of the tenant's dataset
    arrival_s: float  # open-loop arrival time on the simulated clock
    kind: str = "bitwise"  # "bitwise" | "range" (stats breakdown only)

    def __post_init__(self) -> None:
        op = PimOp.parse(self.op).value
        object.__setattr__(self, "op", op)
        if not self.tenant:
            raise ValueError("request needs a tenant")
        if not self.vectors:
            raise ValueError("request needs at least one vector")
        if op == "inv" and len(self.vectors) != 1:
            raise ValueError("inv takes exactly one vector")
        if op != "inv" and len(self.vectors) < 2:
            raise ValueError(f"{op} needs at least two vectors")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    @classmethod
    def bitwise(
        cls, request_id: int, tenant: str, op: str, vectors, arrival_s: float
    ) -> "QueryRequest":
        return cls(request_id, tenant, op, tuple(vectors), arrival_s)

    @classmethod
    def range_query(
        cls,
        request_id: int,
        tenant: str,
        column: str,
        lo: int,
        hi: int,
        arrival_s: float,
    ) -> "QueryRequest":
        """FastBit range predicate: OR over bins ``[lo, hi]`` of a column.

        Bin bitmap vectors are named ``{column}/bin{b}`` by
        ``BitmapQueryService.load_bitmap_index``.
        """
        if lo > hi:
            raise ValueError(f"empty bin range on {column}: [{lo}, {hi}]")
        bins = tuple(bin_vector_name(column, b) for b in range(lo, hi + 1))
        if len(bins) == 1:  # single-bin range: read-through OR with itself
            bins = bins * 2
        return cls(request_id, tenant, "or", bins, arrival_s, kind="range")

    @property
    def fanin(self) -> int:
        return len(self.vectors)


def bin_vector_name(column: str, bin_index: int) -> str:
    """Canonical vector name of one bitmap-index bin."""
    return f"{column}/bin{bin_index}"


@dataclass(frozen=True, eq=False)
class UpdateRequest:
    """One tenant-issued overwrite of a resident vector's contents.

    Rides the same admission pipeline and coalesced batches as reads;
    executing it funnels through ``PimRuntime.pim_write``, whose delta
    listener repairs (or drops) every cached sub-result reading the
    vector's rows -- the service-level face of the write path.
    ``eq=False``: identity comparison (the payload is an ndarray).
    """

    request_id: int
    tenant: str
    vector: str  # resident vector to overwrite
    bits: np.ndarray  # full new contents
    arrival_s: float
    kind: str = "update"
    #: replica fan-in copy issued by the cluster router, not a tenant:
    #: skips node-level rate admission (the user-facing write already
    #: passed it on the primary) so replicas cannot diverge
    internal: bool = False

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("update needs a tenant")
        if not self.vector:
            raise ValueError("update needs a vector name")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        object.__setattr__(
            self, "bits", np.asarray(self.bits, dtype=np.uint8)
        )

    # QueryResult.to_dict duck-typing
    @property
    def op(self) -> str:
        return "write"

    @property
    def vectors(self) -> Tuple[str, ...]:
        return (self.vector,)


@dataclass(frozen=True)
class SubscribeRequest:
    """Registration of one standing query for a tenant.

    Validated like a :class:`QueryRequest`; once admitted (subscription
    fan-out is metered per tenant) its first evaluation rides a normal
    coalesced batch, after which every batched update touching its
    input vectors re-evaluates it in the same dispatch and pushes a
    :class:`DeltaNotification` through the event loop.
    """

    request_id: int
    tenant: str
    op: str
    vectors: Tuple[str, ...]
    arrival_s: float
    kind: str = "subscribe"

    def __post_init__(self) -> None:
        op = PimOp.parse(self.op).value
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "vectors", tuple(self.vectors))
        if not self.tenant:
            raise ValueError("subscription needs a tenant")
        if not self.vectors:
            raise ValueError("subscription needs at least one vector")
        if op == "inv" and len(self.vectors) != 1:
            raise ValueError("inv takes exactly one vector")
        if op != "inv" and len(self.vectors) < 2:
            raise ValueError(f"{op} needs at least two vectors")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass
class DeltaNotification:
    """One pushed re-evaluation of a standing query.

    ``changed_bits`` is the popcount of ``old XOR new`` over the
    standing query's result -- the delta the subscriber actually sees,
    not the whole bitmap.
    """

    subscription_id: int  # the SubscribeRequest's request_id
    tenant: str
    seq: int  # per-subscription sequence number (0 = initial snapshot)
    emitted_s: float  # completion time on the simulated clock
    popcount: int  # result popcount after re-evaluation
    changed_bits: int  # popcount(old XOR new); 0 for the snapshot
    triggered_by: Tuple[int, ...] = ()  # update request_ids in the batch

    def to_dict(self) -> dict:
        return {
            "subscription_id": self.subscription_id,
            "tenant": self.tenant,
            "seq": self.seq,
            "emitted_s": self.emitted_s,
            "popcount": self.popcount,
            "changed_bits": self.changed_bits,
            "triggered_by": list(self.triggered_by),
        }


@dataclass
class QueryResult:
    """Terminal record of one request on the simulated timeline."""

    request: QueryRequest
    status: RequestStatus
    popcount: int = 0
    dispatched_s: float = 0.0  # when the scheduler issued it
    completed_s: float = 0.0  # when its shard finished it
    service_s: float = 0.0  # simulated execution time of this request alone
    energy_j: float = 0.0
    batch_id: int = -1  # command-stream batch it rode in (-1: never ran)
    reject_reason: str = ""
    bits: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion simulated latency (0 for rejects)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.completed_s - self.request.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent admitted-but-undispatched (includes pacing delay)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.dispatched_s - self.request.arrival_s

    def to_dict(self) -> dict:
        return {
            "request_id": self.request.request_id,
            "tenant": self.request.tenant,
            "op": self.request.op,
            "kind": self.request.kind,
            "status": self.status.value,
            "popcount": self.popcount,
            "arrival_s": self.request.arrival_s,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
            "service_s": self.service_s,
            "energy_j": self.energy_j,
            "batch_id": self.batch_id,
            "reject_reason": self.reject_reason,
        }
