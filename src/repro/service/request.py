"""Request/response model of the bitmap-query service.

A :class:`QueryRequest` is one tenant-issued bulk-bitwise query over
*named* bit-vectors the tenant loaded beforehand: a plain bitwise op
(OR/AND/XOR/INV over data vectors) or a FastBit-style range query, which
lowers to a wide OR over the covered bins' bitmap vectors (exactly how
:mod:`repro.apps.fastbit` evaluates range predicates).

A :class:`QueryResult` records what happened to the request on the
simulated timeline: admission outcome, queueing delay, simulated service
time, energy, and the result popcount (plus the raw bits when the
service is configured to keep them, which the parity tests use).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.ops import PimOp

__all__ = [
    "AnalyticsRequest",
    "DeltaNotification",
    "QueryRequest",
    "QueryResult",
    "RequestStatus",
    "SubscribeRequest",
    "UpdateRequest",
    "bin_vector_name",
    "bitslice_vector_name",
]


class RequestStatus(enum.Enum):
    """Terminal state of one request."""

    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class QueryRequest:
    """One bulk-bitwise query from one tenant."""

    request_id: int
    tenant: str
    op: str  # "or" / "and" / "xor" / "inv"
    vectors: Tuple[str, ...]  # named bit-vectors of the tenant's dataset
    arrival_s: float  # open-loop arrival time on the simulated clock
    kind: str = "bitwise"  # "bitwise" | "range" (stats breakdown only)

    def __post_init__(self) -> None:
        op = PimOp.parse(self.op).value
        object.__setattr__(self, "op", op)
        if not self.tenant:
            raise ValueError("request needs a tenant")
        if not self.vectors:
            raise ValueError("request needs at least one vector")
        if op == "inv" and len(self.vectors) != 1:
            raise ValueError("inv takes exactly one vector")
        if op != "inv" and len(self.vectors) < 2:
            raise ValueError(f"{op} needs at least two vectors")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    @classmethod
    def bitwise(
        cls, request_id: int, tenant: str, op: str, vectors, arrival_s: float
    ) -> "QueryRequest":
        return cls(request_id, tenant, op, tuple(vectors), arrival_s)

    @classmethod
    def range_query(
        cls,
        request_id: int,
        tenant: str,
        column: str,
        lo: int,
        hi: int,
        arrival_s: float,
    ) -> "QueryRequest":
        """FastBit range predicate: OR over bins ``[lo, hi]`` of a column.

        Bin bitmap vectors are named ``{column}/bin{b}`` by
        ``BitmapQueryService.load_bitmap_index``.
        """
        if lo > hi:
            raise ValueError(f"empty bin range on {column}: [{lo}, {hi}]")
        bins = tuple(bin_vector_name(column, b) for b in range(lo, hi + 1))
        if len(bins) == 1:  # single-bin range: read-through OR with itself
            bins = bins * 2
        return cls(request_id, tenant, "or", bins, arrival_s, kind="range")

    @property
    def fanin(self) -> int:
        return len(self.vectors)


def bin_vector_name(column: str, bin_index: int) -> str:
    """Canonical vector name of one bitmap-index bin."""
    return f"{column}/bin{bin_index}"


def bitslice_vector_name(column: str, plane: int) -> str:
    """Canonical vector name of one bit-slice plane of a numeric column.

    ``BitmapQueryService.load_bitslice_column`` loads plane ``j`` of
    column ``c`` as the ordinary named vector ``c#b{j}``, so the
    arithmetic path rides the existing replication / rebalance /
    update machinery for free.
    """
    return f"{column}#b{plane}"


_AGGREGATES = ("count", "sum", "hist")


@dataclass(frozen=True)
class AnalyticsRequest:
    """One SQL-ish filter+aggregate query over a tenant's columns.

    ``filters`` is a conjunction of predicate tuples:

    - ``("cmp", column, op, value, n_bits)`` -- bit-serial compare of a
      bit-sliced numeric column against a constant (``op`` in
      ``lt | le | gt | ge | eq``; the column was loaded as ``n_bits``
      planes via ``load_bitslice_column``);
    - ``("range", column, lo, hi)`` -- FastBit range predicate over an
      equality-encoded bitmap index (bins ``lo..hi`` inclusive).

    ``aggregate`` is one of ``("count",)``, ``("sum", column, n_bits)``
    (bit-sliced column) or ``("hist", column, n_bins)`` (indexed
    column).  The result's ``popcount`` is the filter cardinality;
    ``value``/``groups`` carry the aggregate.
    """

    request_id: int
    tenant: str
    filters: Tuple[tuple, ...]
    aggregate: tuple
    arrival_s: float
    kind: str = "analytics"

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("analytics request needs a tenant")
        object.__setattr__(
            self, "filters", tuple(tuple(f) for f in self.filters)
        )
        object.__setattr__(self, "aggregate", tuple(self.aggregate))
        for pred in self.filters:
            if not pred or pred[0] not in ("cmp", "range"):
                raise ValueError(f"malformed predicate {pred!r}")
            if pred[0] == "cmp":
                if len(pred) != 5:
                    raise ValueError(
                        f"cmp predicate needs (cmp, column, op, value, "
                        f"n_bits), got {pred!r}"
                    )
                if pred[2] not in ("lt", "le", "gt", "ge", "eq"):
                    raise ValueError(f"unknown comparison {pred[2]!r}")
                if pred[4] < 1:
                    raise ValueError("cmp predicate needs n_bits >= 1")
            else:
                if len(pred) != 4:
                    raise ValueError(
                        f"range predicate needs (range, column, lo, hi), "
                        f"got {pred!r}"
                    )
                if not 0 <= pred[2] <= pred[3]:
                    raise ValueError(
                        f"empty bin range on {pred[1]}: [{pred[2]}, {pred[3]}]"
                    )
        if not self.aggregate or self.aggregate[0] not in _AGGREGATES:
            raise ValueError(
                f"unknown aggregate {self.aggregate!r}; supported: "
                f"{_AGGREGATES}"
            )
        if self.aggregate[0] in ("sum", "hist") and (
            len(self.aggregate) != 3 or self.aggregate[2] < 1
        ):
            raise ValueError(
                f"{self.aggregate[0]} aggregate needs (kind, column, "
                f"width), got {self.aggregate!r}"
            )
        if not self.filters and self.aggregate[0] == "count":
            raise ValueError(
                "an unfiltered count references no vectors; add a filter "
                "or aggregate over a column"
            )
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    # QueryResult.to_dict / admission duck-typing
    @property
    def op(self) -> str:
        return "analyze"

    @property
    def vectors(self) -> Tuple[str, ...]:
        """Every resident vector the query reads (validation surface)."""
        names = []
        for pred in self.filters:
            if pred[0] == "cmp":
                _, column, _op, _value, n_bits = pred
                names.extend(
                    bitslice_vector_name(column, j) for j in range(n_bits)
                )
            else:
                _, column, lo, hi = pred
                names.extend(
                    bin_vector_name(column, b) for b in range(lo, hi + 1)
                )
        if self.aggregate[0] == "sum":
            _, column, n_bits = self.aggregate
            names.extend(
                bitslice_vector_name(column, j) for j in range(n_bits)
            )
        elif self.aggregate[0] == "hist":
            _, column, n_bins = self.aggregate
            names.extend(bin_vector_name(column, b) for b in range(n_bins))
        return tuple(dict.fromkeys(names))

    @property
    def fanin(self) -> int:
        return len(self.vectors)


@dataclass(frozen=True, eq=False)
class UpdateRequest:
    """One tenant-issued overwrite of a resident vector's contents.

    Rides the same admission pipeline and coalesced batches as reads;
    executing it funnels through ``PimRuntime.pim_write``, whose delta
    listener repairs (or drops) every cached sub-result reading the
    vector's rows -- the service-level face of the write path.
    ``eq=False``: identity comparison (the payload is an ndarray).
    """

    request_id: int
    tenant: str
    vector: str  # resident vector to overwrite
    bits: np.ndarray  # full new contents
    arrival_s: float
    kind: str = "update"
    #: replica fan-in copy issued by the cluster router, not a tenant:
    #: skips node-level rate admission (the user-facing write already
    #: passed it on the primary) so replicas cannot diverge
    internal: bool = False

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("update needs a tenant")
        if not self.vector:
            raise ValueError("update needs a vector name")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        object.__setattr__(
            self, "bits", np.asarray(self.bits, dtype=np.uint8)
        )

    # QueryResult.to_dict duck-typing
    @property
    def op(self) -> str:
        return "write"

    @property
    def vectors(self) -> Tuple[str, ...]:
        return (self.vector,)


@dataclass(frozen=True)
class SubscribeRequest:
    """Registration of one standing query for a tenant.

    Validated like a :class:`QueryRequest`; once admitted (subscription
    fan-out is metered per tenant) its first evaluation rides a normal
    coalesced batch, after which every batched update touching its
    input vectors re-evaluates it in the same dispatch and pushes a
    :class:`DeltaNotification` through the event loop.
    """

    request_id: int
    tenant: str
    op: str
    vectors: Tuple[str, ...]
    arrival_s: float
    kind: str = "subscribe"

    def __post_init__(self) -> None:
        op = PimOp.parse(self.op).value
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "vectors", tuple(self.vectors))
        if not self.tenant:
            raise ValueError("subscription needs a tenant")
        if not self.vectors:
            raise ValueError("subscription needs at least one vector")
        if op == "inv" and len(self.vectors) != 1:
            raise ValueError("inv takes exactly one vector")
        if op != "inv" and len(self.vectors) < 2:
            raise ValueError(f"{op} needs at least two vectors")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass
class DeltaNotification:
    """One pushed re-evaluation of a standing query.

    ``changed_bits`` is the popcount of ``old XOR new`` over the
    standing query's result -- the delta the subscriber actually sees,
    not the whole bitmap.
    """

    subscription_id: int  # the SubscribeRequest's request_id
    tenant: str
    seq: int  # per-subscription sequence number (0 = initial snapshot)
    emitted_s: float  # completion time on the simulated clock
    popcount: int  # result popcount after re-evaluation
    changed_bits: int  # popcount(old XOR new); 0 for the snapshot
    triggered_by: Tuple[int, ...] = ()  # update request_ids in the batch

    def to_dict(self) -> dict:
        return {
            "subscription_id": self.subscription_id,
            "tenant": self.tenant,
            "seq": self.seq,
            "emitted_s": self.emitted_s,
            "popcount": self.popcount,
            "changed_bits": self.changed_bits,
            "triggered_by": list(self.triggered_by),
        }


@dataclass
class QueryResult:
    """Terminal record of one request on the simulated timeline."""

    request: QueryRequest
    status: RequestStatus
    popcount: int = 0
    dispatched_s: float = 0.0  # when the scheduler issued it
    completed_s: float = 0.0  # when its shard finished it
    service_s: float = 0.0  # simulated execution time of this request alone
    energy_j: float = 0.0
    batch_id: int = -1  # command-stream batch it rode in (-1: never ran)
    reject_reason: str = ""
    #: analytics aggregate: scalar value (count / masked sum / histogram
    #: total); 0.0 for plain bitwise reads
    value: float = 0.0
    #: analytics histogram aggregate: per-bin counts; None otherwise
    groups: Optional[Tuple[int, ...]] = None
    bits: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion simulated latency (0 for rejects)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.completed_s - self.request.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent admitted-but-undispatched (includes pacing delay)."""
        if self.status is not RequestStatus.COMPLETED:
            return 0.0
        return self.dispatched_s - self.request.arrival_s

    def to_dict(self) -> dict:
        return {
            "request_id": self.request.request_id,
            "tenant": self.request.tenant,
            "op": self.request.op,
            "kind": self.request.kind,
            "status": self.status.value,
            "popcount": self.popcount,
            "arrival_s": self.request.arrival_s,
            "latency_s": self.latency_s,
            "queue_delay_s": self.queue_delay_s,
            "service_s": self.service_s,
            "energy_j": self.energy_j,
            "batch_id": self.batch_id,
            "reject_reason": self.reject_reason,
            "value": self.value,
            "groups": None if self.groups is None else list(self.groups),
        }
