"""Service statistics: latency distributions and per-tenant accounting.

Latencies are *simulated* seconds off the deterministic clock, so the
recorder's output -- percentiles, the log-binned histogram, the JSON
serialisation -- is byte-identical across runs with the same seed.  The
containers follow the repo's StatsLike convention (``to_dict()`` +
``summary()``), matching ``RunStats``/``DriverStats``/``OpAccounting``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

__all__ = ["LatencyRecorder", "ServiceStats", "TenantStats"]

#: histogram geometry: log-spaced bins over [1 ns, 10 s), 8 per decade;
#: fixed constants so two runs bin identically
_HIST_LO_EXP = -9
_HIST_HI_EXP = 1
_BINS_PER_DECADE = 8
_N_BINS = (_HIST_HI_EXP - _HIST_LO_EXP) * _BINS_PER_DECADE


class LatencyRecorder:
    """Deterministic latency samples + log-binned histogram + percentiles."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._bins = [0] * (_N_BINS + 2)  # + underflow/overflow

    def record(self, latency_s: float) -> None:
        if not math.isfinite(latency_s) or latency_s < 0:
            raise ValueError("latency must be finite and non-negative")
        self._samples.append(latency_s)
        self._bins[self._bin_index(latency_s)] += 1

    @staticmethod
    def _bin_index(latency_s: float) -> int:
        if latency_s <= 0:
            return 0  # underflow bin
        pos = (math.log10(latency_s) - _HIST_LO_EXP) * _BINS_PER_DECADE
        if pos < 0:
            return 0
        if pos >= _N_BINS:
            return _N_BINS + 1  # overflow bin
        return int(pos) + 1

    @staticmethod
    def bin_edges() -> List[float]:
        """Bin edges in seconds (fixed; shared by every recorder)."""
        return [
            10.0 ** (_HIST_LO_EXP + i / _BINS_PER_DECADE)
            for i in range(_N_BINS + 1)
        ]

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Cluster aggregation: per-node recorders merge into one
        distribution.  Bin geometry is a module constant, so histograms
        add bin-wise; percentiles re-sort the combined samples, making
        the merge order-independent (and therefore deterministic).
        """
        self._samples.extend(other._samples)
        for i, n in enumerate(other._bins):
            self._bins[i] += n

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (deterministic; 0.0 when empty)."""
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def histogram(self) -> List[int]:
        """Counts per bin: ``[underflow, *bins, overflow]``."""
        return list(self._bins)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean(),
            "p50_s": self.percentile(50) if self._samples else 0.0,
            "p99_s": self.percentile(99) if self._samples else 0.0,
            "max_s": max(self._samples) if self._samples else 0.0,
            "histogram": self.histogram(),
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialisation (the determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class TenantStats:
    """One tenant's view of the service."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.delayed = 0  # paced by the DELAY overload policy
        self.updates = 0  # completed vector overwrites
        self.subscriptions = 0  # standing queries registered
        self.notifications = 0  # delta notifications pushed
        self.energy_j = 0.0
        self.service_s = 0.0  # simulated execution time consumed
        self.latency = LatencyRecorder()

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "delayed": self.delayed,
            "updates": self.updates,
            "subscriptions": self.subscriptions,
            "notifications": self.notifications,
            "energy_j": self.energy_j,
            "service_s": self.service_s,
            "latency": self.latency.to_dict(),
        }

    def summary(self) -> str:
        lat = self.latency
        return (
            f"TenantStats[{self.tenant}]: {self.completed}/{self.submitted} "
            f"completed, {self.rejected} rejected, {self.delayed} delayed, "
            f"p50 {lat.percentile(50) if lat.count else 0.0:.3e}s, "
            f"p99 {lat.percentile(99) if lat.count else 0.0:.3e}s, "
            f"energy {self.energy_j:.3e}J"
        )


class ServiceStats:
    """Aggregate + per-tenant statistics of one service run."""

    def __init__(self) -> None:
        self.tenants: Dict[str, TenantStats] = {}
        self.latency = LatencyRecorder()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.delayed = 0
        self.batches = 0
        self.coalesced_requests = 0  # requests that shared a batch with >= 1 other
        self.updates = 0  # completed vector overwrites
        self.subscriptions = 0  # standing queries registered
        self.notifications = 0  # delta notifications pushed
        self.energy_j = 0.0
        self.busy_s = 0.0  # simulated time the server spent executing batches
        self.first_dispatch_s = math.inf
        self.last_completion_s = 0.0

    def tenant(self, name: str) -> TenantStats:
        stats = self.tenants.get(name)
        if stats is None:
            stats = self.tenants[name] = TenantStats(name)
        return stats

    @property
    def makespan_s(self) -> float:
        """First dispatch to last completion on the simulated clock."""
        if not math.isfinite(self.first_dispatch_s):
            return 0.0
        return self.last_completion_s - self.first_dispatch_s

    @property
    def ops_per_s(self) -> float:
        """Completed requests per simulated second of serving."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.completed / span

    @property
    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.completed / self.batches

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "delayed": self.delayed,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "updates": self.updates,
            "subscriptions": self.subscriptions,
            "notifications": self.notifications,
            "mean_batch_size": self.mean_batch_size,
            "energy_j": self.energy_j,
            "busy_s": self.busy_s,
            "makespan_s": self.makespan_s,
            "ops_per_s": self.ops_per_s,
            "latency": self.latency.to_dict(),
            "tenants": {
                name: stats.to_dict()
                for name, stats in sorted(self.tenants.items())
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialisation (the determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary(self) -> str:
        lat = self.latency
        lines = [
            (
                f"ServiceStats: {self.completed}/{self.submitted} completed "
                f"({self.rejected} rejected, {self.delayed} delayed) in "
                f"{self.batches} batches (mean size "
                f"{self.mean_batch_size:.1f}), "
                f"{self.ops_per_s:.3e} ops/s over {self.makespan_s:.3e}s, "
                f"p50 {lat.percentile(50) if lat.count else 0.0:.3e}s, "
                f"p99 {lat.percentile(99) if lat.count else 0.0:.3e}s, "
                f"energy {self.energy_j:.3e}J"
            )
        ]
        for name in sorted(self.tenants):
            lines.append("  " + self.tenants[name].summary())
        return "\n".join(lines)
