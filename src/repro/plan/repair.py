"""Delta repair of cached sub-results (incremental view maintenance).

A write to frames some cached expression reads no longer has to drop
the entry.  The main memory's delta listener hands the planner the
per-frame ``old XOR new`` bitmap (free in the functional model -- the
write path already reads and programs those rows), and the algebra of
the cached op decides how to fix the packed result rows in place:

- **XOR / NOT** are linear over GF(2): flipping input bits flips
  exactly those output bits, so one bulk XOR of the delta row into the
  touched chunk repairs it (NOT is XOR against an implicit all-ones
  mask -- same rule).
- **AND / OR** are not linear; their repair is a *delta-masked
  recompute* limited to the touched chunks, reading the operand rows'
  new contents.  Chunks the write did not reach keep their cached
  value untouched.

Either way the repair is priced through the real controller with the
same per-step command templates a driver-issued bulk op uses
(:meth:`PimExecutor._step_rows`), so simulated pricing stays honest.
Before applying, the engine estimates repair vs. recomputing the whole
entry from the live :class:`PriceTable`; when repair would be strictly
worse -- e.g. an XOR whose every chunk took multiple deltas -- or the
entry is out of repair's reach (nested sub-expression children,
cross-channel operand placement), the entry falls back to plain
invalidation and the fallback is counted.

Repaired entries are re-inserted under their canonical key at the
*new* write versions, so later lookups of the same expression hit
directly; :class:`ProgramCache` integration freezes the repair command
batch per shape (chunk widths, sense steps, localities, group fan-ins)
so the compiled planner re-prices recurring repairs without rebuilding
command rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.memsim.address import OpLocality
from repro.memsim.controller import CommandBatch, CommandKind
from repro.core.bitops import popcount_rows
from repro.plan.compile import freeze_batch

__all__ = ["RepairEngine"]

_REPAIRS = telemetry.counter("plan.repair.repairs")
_FALLBACKS = telemetry.counter("plan.repair.fallback_invalidations")
_CHUNKS = telemetry.counter("plan.repair.chunks")
#: simulated latency saved vs. recomputing the repaired entries
_SAVED = telemetry.accumulator("plan.repair.sim_saved_s")

#: command code -> CommandKind (codes are enum-declaration indices)
_KIND_OF = tuple(CommandKind)


class RepairEngine:
    """Applies algebraic delta repair to entries popped from the cache.

    Owned by one :class:`~repro.plan.planner.QueryPlanner`; state is a
    pure cost memo plus the planner's program cache, so the engine is
    safe to drive from the memory's write listener (it never writes
    main memory itself -- repairs land in the host-side cached rows).
    """

    __slots__ = ("planner", "_cost_memo")

    def __init__(self, planner):
        self.planner = planner
        #: (op, locality, channel, fanin, chunk_bits) -> serial seconds
        self._cost_memo: Dict[tuple, float] = {}

    # -- entry points --------------------------------------------------------

    def on_delta(self, farr: np.ndarray, deltas: np.ndarray) -> None:
        """Repair or invalidate every cached entry reading ``farr``."""
        planner = self.planner
        cache = planner.cache
        entries = cache.pop_frames(farr)
        if not entries:
            return
        delta_map = {int(f): deltas[i] for i, f in enumerate(farr)}
        fallbacks = 0
        for entry in entries:
            if not self._repair_entry(entry, farr, delta_map):
                fallbacks += 1
                planner.stats.repair_fallbacks += 1
        if fallbacks:
            cache.tally_invalidations(fallbacks)
            _FALLBACKS.add(fallbacks)

    # -- per-entry repair ----------------------------------------------------

    def _repair_entry(self, entry, written: np.ndarray, delta_map) -> bool:
        """Fix one popped entry in place; False -> caller invalidates."""
        planner = self.planner
        key = entry.key
        if not (isinstance(key, tuple) and len(key) == 3):
            return False
        op_value, n_bits, children = key
        if not children or any(
            not (isinstance(ch, tuple) and len(ch) == 3 and ch[0] == "L")
            for ch in children
        ):
            # a child is itself a sub-expression: its leaf identity is
            # folded into the nested key, out of frame-delta reach
            return False
        op = PimOp.parse(op_value)
        rows = entry.rows
        n_chunks = rows.shape[0]
        child_frames = [
            np.frombuffer(ch[1], dtype=np.intp) for ch in children
        ]
        if any(cf.size != n_chunks for cf in child_frames):
            return False
        masks = [np.isin(cf, written) for cf in child_frames]
        touched = masks[0].copy()
        for m in masks[1:]:
            touched |= m
        aff = np.nonzero(touched)[0]
        if aff.size == 0:  # pragma: no cover - the frame index is exact
            return False

        memory = planner.memory
        linear = op is PimOp.XOR or op is PimOp.INV
        rep_op = PimOp.XOR if linear else op

        # -- new contents of the touched chunks (functional model) ----------
        if linear:
            new_aff = rows[aff].copy()
            for cf, mask in zip(child_frames, masks):
                sub = np.nonzero(mask[aff])[0]
                if sub.size == 0:
                    continue
                dstack = np.stack(
                    [delta_map[int(f)] for f in cf[aff[sub]]]
                )
                new_aff[sub] ^= dstack
        else:
            lists = [cf[aff] for cf in child_frames]
            if len(lists) == 1:
                new_aff = memory.gather_rows(lists[0])
            else:
                new_aff = memory.bitwise_rows(op.value, lists)
        wb_widths = popcount_rows(np.bitwise_xor(rows[aff], new_aff))

        # -- per-chunk repair shape: (chunk_bits, groups) --------------------
        # a group is one combine step: (fanin, channel, locality)
        shape = self._repair_shape(
            op, rep_op, n_bits, child_frames, masks, aff, delta_map
        )
        if shape is None:
            return False

        # -- cost-model gate: repair vs whole-entry recompute ----------------
        repair_est = 0.0
        for chunk_bits, groups in shape:
            for fanin, ch, loc in groups:
                repair_est += self._group_cost(
                    rep_op, loc, ch, fanin, chunk_bits
                )
        recompute_est = self._recompute_estimate(op, n_bits, child_frames)
        if repair_est > recompute_est:
            return False

        # -- execute the repair through the real controller ------------------
        acct = OpAccounting()
        executor = planner.executor
        with telemetry.span(
            "plan.repair.apply", op=op.value, chunks=int(aff.size)
        ):
            executor._set_mode(rep_op, acct)
            frozen, wb_positions = self._program(rep_op, shape)
            wb_values = self._wb_values(shape, wb_widths)
            if wb_positions.size:
                frozen.n_bits[wb_positions] = wb_values
            acct.absorb(executor.controller.execute_batch(frozen))
        affected_bits = sum(chunk_bits for chunk_bits, _ in shape)
        acct.count_bits(affected_bits)
        acct.count_step(sum(len(groups) for _, groups in shape))
        driver = planner.driver
        driver.stats.accounting = driver.stats.accounting.merged(acct)

        # -- re-insert under the canonical key at the new versions -----------
        versions = planner._versions
        new_children: List[tuple] = []
        for ch_key, cf, mask in zip(children, child_frames, masks):
            if mask.any():
                new_children.append(("L", ch_key[1], versions[cf].tobytes()))
            else:
                new_children.append(ch_key)
        if op is PimOp.OR or op is PimOp.AND:
            new_children = sorted(set(new_children))
        elif op is PimOp.XOR:
            new_children = sorted(new_children)
        new_key = (op_value, n_bits, tuple(new_children))
        new_rows = rows.copy()
        new_rows[aff] = new_aff
        planner.cache.put(new_key, new_rows, n_bits, entry.dep_frames)

        stats = planner.stats
        stats.repairs += 1
        stats.repaired_chunks += int(aff.size)
        stats.repair_latency_s += acct.latency
        stats.repair_energy_j += acct.energy
        saved = recompute_est - repair_est
        stats.repair_saved_s += saved
        _REPAIRS.add()
        _CHUNKS.add(int(aff.size))
        _SAVED.add(saved)
        return True

    # -- shape / cost helpers ------------------------------------------------

    def _repair_shape(
        self, op, rep_op, n_bits, child_frames, masks, aff, delta_map
    ) -> Optional[List[Tuple[int, tuple]]]:
        """Per affected chunk: ``(chunk_bits, ((fanin, channel, locality),
        ...))``; ``None`` when any chunk cannot execute in memory."""
        planner = self.planner
        mapper = planner.executor.mapper
        channel_of = mapper.channel_of
        row_bits = planner.geometry.row_bits
        linear = op is PimOp.XOR or op is PimOp.INV
        shape: List[Tuple[int, tuple]] = []
        for c in aff:
            c = int(c)
            chunk_bits = min(n_bits - c * row_bits, row_bits)
            if linear:
                # one 2-operand XOR step per written (child, frame)
                # occurrence: cached row ^= delta row
                groups = tuple(
                    (2, channel_of(int(cf[c])), OpLocality.INTRA_SUBARRAY)
                    for cf, mask in zip(child_frames, masks)
                    if mask[c]
                )
            else:
                frames = [int(cf[c]) for cf in child_frames]
                loc = mapper.classify_frames(frames)
                if loc is OpLocality.INTER_CHIP:
                    return None
                ch = channel_of(frames[0])
                groups = tuple(
                    (fanin, ch, loc)
                    for fanin in self._group_fanins(op, len(frames), loc)
                )
            shape.append((chunk_bits, groups))
        return shape

    def _group_fanins(self, op, n_ops: int, locality) -> tuple:
        """Combine-step fan-ins of one chunk, mirroring
        :meth:`PimExecutor._chunk_bitwise`'s decomposition."""
        if op is PimOp.INV or n_ops == 1:
            return (1,)
        if locality is not OpLocality.INTRA_SUBARRAY:
            return (n_ops,)  # buffered path: one pass over all operands
        limit = max(2, self.planner.executor.limits.single_step_limit(op))
        if n_ops <= limit:
            return (n_ops,)
        fanins = [limit]
        rem = n_ops - limit
        while rem > 0:
            take = min(limit - 1, rem)
            fanins.append(1 + take)
            rem -= take
        return tuple(fanins)

    def _group_cost(self, op, locality, channel, fanin, chunk_bits) -> float:
        """Serial (array + bus) seconds of one combine step, from the
        live PriceTable.  Write-back width does not move command
        latency (only energy), so the memo is width-free."""
        key = (op, locality, channel, fanin, chunk_bits)
        cost = self._cost_memo.get(key)
        if cost is None:
            executor = self.planner.executor
            rows, _wb = executor._step_rows(
                op, locality, channel, fanin, chunk_bits, False
            )
            price = executor.controller.price_table.price
            cost = 0.0
            for k, _ch, b, s, t in rows:
                array_t, bus_t = price(_KIND_OF[k], b, s, t)[:2]
                cost += array_t + bus_t
            self._cost_memo[key] = cost
        return cost

    def _recompute_estimate(self, op, n_bits, child_frames) -> float:
        """Cost of recomputing the whole entry with the same templates."""
        planner = self.planner
        mapper = planner.executor.mapper
        row_bits = planner.geometry.row_bits
        n_chunks = child_frames[0].size
        n_ops = len(child_frames)
        total = 0.0
        for c in range(n_chunks):
            chunk_bits = min(n_bits - c * row_bits, row_bits)
            frames = [int(cf[c]) for cf in child_frames]
            loc = mapper.classify_frames(frames)
            if loc is OpLocality.INTER_CHIP:
                # recompute could not run in memory either; repair wins
                return float("inf")
            ch = mapper.channel_of(frames[0])
            for fanin in self._group_fanins(op, n_ops, loc):
                total += self._group_cost(op, loc, ch, fanin, chunk_bits)
        return total

    # -- program cache -------------------------------------------------------

    def _program(self, rep_op, shape):
        """(frozen batch, write-back row positions) for one repair shape.

        Shape keys embed everything the command stream depends on --
        chunk widths *and their sense-step resolution* (so a geometry
        change, e.g. a different SA mux, can never replay a stale
        program), localities, channels, group fan-ins.  The frozen
        batch's ``n_bits`` column is patched with the differential
        write-back widths before every pricing pass, exactly like the
        wave programs' write-backs.
        """
        planner = self.planner
        geometry = planner.geometry
        sig = tuple(
            (
                chunk_bits,
                geometry.sense_steps_for_bits(chunk_bits),
                tuple((f, ch, loc.value) for f, ch, loc in groups),
            )
            for chunk_bits, groups in shape
        )
        key = ("repair", rep_op.value, geometry.row_bits, sig)
        if planner.compile_enabled:
            hit = planner.programs.get(key)
            if hit is not None:
                planner.stats.program_hits += 1
                return hit
        batch = CommandBatch()
        wb_positions: List[int] = []
        pos = 0
        executor = planner.executor
        for chunk_bits, groups in shape:
            for fanin, ch, loc in groups:
                rows, wb_index = executor._step_rows(
                    rep_op, loc, ch, fanin, chunk_bits, False
                )
                if wb_index is not None:
                    wb_positions.append(pos + wb_index)
                batch.extend_rows(rows)
                pos += len(rows)
            batch.fence()
        program = (freeze_batch(batch), np.asarray(wb_positions, dtype=np.intp))
        if planner.compile_enabled:
            planner.programs.put(key, program)
            planner.stats.program_misses += 1
        return program

    @staticmethod
    def _wb_values(shape, wb_widths) -> np.ndarray:
        """Write-back widths per write-back row, in emission order: the
        final step of a chunk programs only the flipped result cells
        (differential write); intermediate accumulation steps program
        the full chunk."""
        values: List[int] = []
        for (chunk_bits, groups), width in zip(shape, wb_widths):
            n_wb = sum(1 for _f, _ch, _loc in groups)
            if n_wb == 0:
                continue
            values.extend([chunk_bits] * (n_wb - 1))
            values.append(int(width))
        return np.asarray(values, dtype=np.float64)
