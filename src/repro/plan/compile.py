"""Kernel compiler: planned DAG waves lowered to flat numpy programs.

The planner's interpreted hot path pays Python-level cost per operation
-- command-template lookups, per-chunk list appends, per-op result
objects -- while the *shape* of everything it emits (command kinds,
channels, step counts, segment fences) is a pure function of the wave's
canonical structure: the ops, operand-sharing pattern (dense vector
ids), per-chunk channels/localities, and the executor's mode register
on entry.  Only the ``PIM_WRITEBACK`` differential widths depend on the
data.

This module exploits that: the first time a wave shape repeats, the
interpreted execution is *recorded* (``PinatuboExecutor.record_sink``)
and lowered into a program with

- a **frozen command batch**: the recorded batch's columns as
  preallocated numpy arrays that duck-type
  :class:`~repro.memsim.controller.CommandBatch`, so replay re-prices
  through the *real* ``MemoryController.execute_batch`` -- simulated
  latency/energy is byte-identical to the interpreted path by
  construction.  Data-dependent write-back widths are patched into the
  frozen ``n_bits`` column before each pricing pass;
- a **flat instruction list**: one ``(op, dst, srcs)`` per (item,
  chunk) over a structure-of-arrays slot buffer, topologically leveled
  (RAW *and* WAR edges) and grouped by ``(level, op, arity)`` so each
  group executes as a single ``ufunc.reduce`` over the buffer -- zero
  per-op Python objects on the hot path;
- replicated driver bookkeeping (requests, flushes, mode switches,
  result order), so ``DriverStats`` and telemetry counters agree with
  the interpreted run.

Programs are keyed by canonical shape (see :func:`wave_shape_key`) and
are **frame-agnostic**: slots are resolved to the wave's actual row
frames at replay time, so one program serves every recurrence of the
shape regardless of where the allocator placed the vectors.  Write
invalidation needs no program-level hook -- content correctness rides
on the planner's version-carrying sub-result keys; a write only changes
*which* requests execute, never what a shape's command stream looks
like.

Shapes the interpreter handles but the slot model cannot (multi-step
operand accumulation, duplicate destination rows, host fallbacks) are
marked :data:`UNCOMPILABLE` and stay interpreted forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.executor import MODE_CODES, OpResult
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.core.bitops import popcount_packed, popcount_rows
from repro.memsim.controller import CommandKind, KIND_CODES

__all__ = [
    "SEEN_ONCE",
    "UNCOMPILABLE",
    "PopcountProgram",
    "ServeTemplate",
    "ToHostProgram",
    "WaveProgram",
    "build_popcount_program",
    "build_serve_template",
    "build_to_host_program",
    "build_wave_program",
    "concat_serve_templates",
    "to_host_shape_key",
    "wave_shape_key",
]

PROGRAM_HITS = telemetry.counter("plan.compile.program_hits")
PROGRAM_MISSES = telemetry.counter("plan.compile.program_misses")
COMPILATIONS = telemetry.counter("plan.compile.compilations")
UNCOMPILABLE_SHAPES = telemetry.counter("plan.compile.uncompilable")
COMPILE_SECONDS = telemetry.accumulator("plan.compile.seconds")

_K_ACT = KIND_CODES[CommandKind.ACT]
_K_SENSE = KIND_CODES[CommandKind.PIM_SENSE]
_K_PRE = KIND_CODES[CommandKind.PRE]
_K_WB = KIND_CODES[CommandKind.PIM_WRITEBACK]
_K_WR = KIND_CODES[CommandKind.WR]

_UFUNCS = {
    PimOp.OR: np.bitwise_or,
    PimOp.AND: np.bitwise_and,
    PimOp.XOR: np.bitwise_xor,
}


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self._name}>"


#: program-cache marker: shape observed once, not yet worth compiling
SEEN_ONCE = _Sentinel("seen-once")
#: program-cache marker: shape needs interpreted semantics forever
UNCOMPILABLE = _Sentinel("uncompilable")


class _FrozenBatch:
    """A recorded command batch's columns as preallocated numpy arrays.

    Duck-types exactly the surface ``MemoryController.execute_batch``
    reads (column sequences, ``op_starts``/``op_segment_starts``,
    ``n_segments``, ``__len__``), so replay prices through the real
    controller with zero list-to-array conversion cost.  ``n_bits`` is
    the one mutable column: write-back widths are patched in place
    before each pricing pass.
    """

    __slots__ = (
        "kinds", "channels", "n_bits", "n_steps", "transfer_bytes",
        "segments", "op_starts", "op_segment_starts", "n_segments",
        "price_memo", "price_memo_ok",
    )

    def __len__(self) -> int:
        return self.kinds.size


def freeze_batch(batch, memo_ok: bool = False) -> _FrozenBatch:
    """Snapshot a :class:`CommandBatch`'s columns into a frozen batch.

    ``memo_ok=True`` marks the columns immutable, opting into the
    controller's memoized batch pricing; leave it False when the replay
    patches widths (wave programs' differential write-backs).
    """
    fb = _FrozenBatch()
    fb.kinds = np.asarray(batch.kinds, dtype=np.intp)
    fb.channels = np.asarray(batch.channels, dtype=np.intp)
    fb.n_bits = np.asarray(batch.n_bits, dtype=np.float64)
    fb.n_steps = np.asarray(batch.n_steps, dtype=np.float64)
    fb.transfer_bytes = np.asarray(batch.transfer_bytes, dtype=np.float64)
    fb.segments = np.asarray(batch.segments, dtype=np.intp)
    fb.op_starts = np.asarray(batch.op_starts, dtype=np.intp)
    fb.op_segment_starts = np.asarray(batch.op_segment_starts, dtype=np.intp)
    fb.n_segments = batch.n_segments
    fb.price_memo = None
    fb.price_memo_ok = memo_ok
    return fb


# -- shape keys ---------------------------------------------------------------


def _mode_token(mode: Optional[PimOp]) -> str:
    return mode.value if mode is not None else ""


def wave_shape_key(mapper, exec_items, mode_in: Optional[PimOp]):
    """Canonical shape of one exec wave, or ``None`` if unkeyable.

    The key captures everything the emitted command stream and the
    functional dataflow depend on: the executor's mode register on
    entry, and per item (submission order) the op, bit width, overlap
    flag, dense vector-id of destination and sources (the
    operand-sharing pattern), and per-chunk channels and locality
    codes.  Frames themselves are *not* in the key -- two waves over
    different allocations with the same shape share one program.

    Returns ``None`` when any chunk classifies inter-chip (the
    interpreted path owns the host-fallback semantics).
    """
    vid_ids: Dict[int, int] = {}
    parts = []
    for it in exec_items:
        req = it.req
        n_chunks = it.n_chunks
        rows = []
        src_ids = []
        for src in req.sources:
            sid = vid_ids.setdefault(src.vid, len(vid_ids))
            src_ids.append(sid)
            rows.append(src.frames[:n_chunks])
        did = vid_ids.setdefault(req.dest.vid, len(vid_ids))
        rows.append(it.dest_frames)
        mat = np.asarray(rows, dtype=np.int64)
        codes = mapper.locality_codes(mat)
        if codes.max(initial=0) == 3:
            return None
        channels = mapper.channels_of(mat[0])
        parts.append((
            req.op.value,
            req.n_bits,
            req.overlap_chunks,
            did,
            tuple(src_ids),
            channels.tobytes(),
            codes.tobytes(),
        ))
    return ("wave", _mode_token(mode_in), tuple(parts))


def to_host_shape_key(
    mapper,
    op: PimOp,
    scratch: Sequence[int],
    sources: Sequence[Sequence[int]],
    n_bits: int,
    n_chunks: int,
    mode_in: Optional[PimOp],
):
    """Canonical shape of one ``bitwise_to_host`` call, or ``None``.

    No vector ids: a to-host op writes nothing, so only the command
    shape matters -- op, width, operand count, entry mode, the first
    operand's per-chunk channels, and the per-chunk locality of the
    (scratch, sources) set, mirroring the interpreted classification.
    """
    rows = [list(s[:n_chunks]) for s in sources]
    rows.append(list(scratch[:n_chunks]))
    mat = np.asarray(rows, dtype=np.int64)
    codes = mapper.locality_codes(mat)
    if codes.max(initial=0) == 3:
        return None
    channels = mapper.channels_of(mat[0])
    return (
        "to_host",
        op.value,
        n_bits,
        len(rows) - 1,
        _mode_token(mode_in),
        channels.tobytes(),
        codes.tobytes(),
    )


# -- serve templates ----------------------------------------------------------


class ServeTemplate:
    """Precomputed command columns of one served result's row-buffer read.

    Column-for-column what :func:`repro.plan.planner._serve_commands`
    emits for a ``(n_bits, per-chunk channels)`` shape: per chunk a
    fenced ACT / PIM_SENSE / PRE on the destination's channel.  The
    ``frozen`` attribute is the single-item batch (``op_starts = [0]``)
    used when a wave serves exactly one item.
    """

    __slots__ = (
        "kinds", "channels", "n_bits", "n_steps", "transfer_bytes",
        "segments", "n_chunks", "length", "frozen",
    )


def build_serve_template(geometry, n_bits: int, channels: np.ndarray) -> ServeTemplate:
    """Build the serve-command columns for one ``(n_bits, channels)`` shape."""
    row_bits = geometry.row_bits
    n_chunks = int(channels.size)
    chunk_bits = np.minimum(
        n_bits - np.arange(n_chunks, dtype=np.int64) * row_bits, row_bits
    )
    steps = np.array(
        [geometry.sense_steps_for_bits(int(b)) for b in chunk_bits],
        dtype=np.float64,
    )
    chunk_bits = chunk_bits.astype(np.float64)
    zeros = np.zeros(n_chunks)
    ones = np.ones(n_chunks)

    t = ServeTemplate()
    t.n_chunks = n_chunks
    t.length = 3 * n_chunks
    t.kinds = np.tile(np.array([_K_ACT, _K_SENSE, _K_PRE], dtype=np.intp), n_chunks)
    t.channels = np.repeat(np.asarray(channels, dtype=np.intp), 3)
    t.n_bits = np.stack([chunk_bits, chunk_bits, zeros], axis=1).reshape(-1)
    t.n_steps = np.stack([ones, steps, ones], axis=1).reshape(-1)
    t.transfer_bytes = np.zeros(t.length)
    t.segments = np.repeat(np.arange(n_chunks, dtype=np.intp), 3)

    fb = _FrozenBatch()
    fb.kinds = t.kinds
    fb.channels = t.channels
    fb.n_bits = t.n_bits
    fb.n_steps = t.n_steps
    fb.transfer_bytes = t.transfer_bytes
    fb.segments = t.segments
    fb.op_starts = np.zeros(1, dtype=np.intp)
    fb.op_segment_starts = np.zeros(1, dtype=np.intp)
    fb.n_segments = n_chunks
    fb.price_memo = None
    fb.price_memo_ok = True
    t.frozen = fb
    return t


def concat_serve_templates(templates: List[ServeTemplate]) -> _FrozenBatch:
    """One frozen, marked batch covering a wave's serve items in order.

    Equivalent to ``batch.mark()`` + the serve commands per item: op
    starts at the cumulative command offsets, op segment starts at the
    cumulative chunk counts.
    """
    if len(templates) == 1:
        return templates[0].frozen
    lengths = np.array([t.length for t in templates], dtype=np.intp)
    seg_counts = np.array([t.n_chunks for t in templates], dtype=np.intp)
    seg_offsets = np.concatenate([[0], np.cumsum(seg_counts)])

    fb = _FrozenBatch()
    fb.kinds = np.concatenate([t.kinds for t in templates])
    fb.channels = np.concatenate([t.channels for t in templates])
    fb.n_bits = np.concatenate([t.n_bits for t in templates])
    fb.n_steps = np.concatenate([t.n_steps for t in templates])
    fb.transfer_bytes = np.concatenate([t.transfer_bytes for t in templates])
    fb.segments = np.concatenate([
        t.segments + seg_offsets[i] for i, t in enumerate(templates)
    ])
    fb.op_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.intp)
    fb.op_segment_starts = seg_offsets[:-1].astype(np.intp)
    fb.n_segments = int(seg_offsets[-1])
    fb.price_memo = None
    fb.price_memo_ok = True
    return fb


# -- to-host programs ---------------------------------------------------------


class ToHostProgram:
    """Replayable ``bitwise_to_host``: frozen pricing + functional compute.

    A to-host op writes no memory and its command stream carries no
    data-dependent widths, so the whole call freezes on first sight:
    replay recomputes the functional result row-parallel, sets the mode
    register, and re-prices the frozen batch.
    """

    __slots__ = (
        "frozen", "op", "n_chunks", "n_sources", "steps",
        "localities", "locality_counts", "mode_code",
    )

    def replay(
        self,
        executor,
        scratch: Sequence[int],
        sources: Sequence[Sequence[int]],
        n_bits: int,
    ) -> Tuple[np.ndarray, OpResult]:
        op = self.op
        n_chunks = self.n_chunks
        operand_lists = (
            [sources[0][:n_chunks]]
            if op is PimOp.INV
            else [s[:n_chunks] for s in sources]
        )
        new_rows = executor.memory.bitwise_rows(op.value, operand_lists)
        executor.controller.mode_register = self.mode_code
        executor._current_mode = op
        acct = OpAccounting()
        acct.locality_counts = dict(self.locality_counts)
        acct.in_memory_steps = self.steps
        acct.absorb(executor.controller.execute_batch(self.frozen))
        acct.count_bits(n_bits * len(sources))
        bits = np.unpackbits(new_rows, bitorder="little")[:n_bits]
        result = OpResult(
            op=op, accounting=acct, steps=self.steps,
            localities=dict(self.localities),
        )
        return bits, result


def build_to_host_program(
    recorded: list, op: PimOp, result: OpResult, n_chunks: int
) -> Optional[ToHostProgram]:
    """Lower one recorded ``bitwise_to_host`` call; ``None`` if it took
    the serial (multi-step) path the slot model does not replay."""
    if len(recorded) != 1:
        return None
    flavor = recorded[0]
    if flavor[0] != "to_host" or not flavor[2]:
        return None
    if result.steps != n_chunks:
        return None
    prog = ToHostProgram()
    prog.frozen = freeze_batch(flavor[1], memo_ok=True)
    prog.op = op
    prog.n_chunks = n_chunks
    prog.n_sources = 1 if op is PimOp.INV else None
    prog.steps = result.steps
    prog.localities = dict(result.localities)
    prog.locality_counts = dict(result.accounting.locality_counts)
    prog.mode_code = MODE_CODES[op]
    return prog


class PopcountProgram:
    """Replayable popcount reduction: a to-host op that returns a count.

    Same frozen pricing and functional recompute as
    :class:`ToHostProgram` (the full result still crosses the I/O bus,
    so the command stream and accounting are identical), but the host
    side reduces the packed rows straight to a set-bit count instead of
    unpacking ``n_bits`` booleans -- the hot path of the arithmetic
    subsystem's COUNT/SUM/histogram aggregations.  ``tail_mask`` zeroes
    any packed bits past ``n_bits`` (an INV can flip padding bits in
    the last row) and is derived lazily from the first replay's row
    shape; the shape key pins ``n_bits``, so one mask serves every
    replay.
    """

    __slots__ = (
        "frozen", "op", "n_chunks", "n_sources", "steps",
        "localities", "locality_counts", "mode_code",
        "tail_mask", "mask_ready",
    )

    def replay(
        self,
        executor,
        scratch: Sequence[int],
        sources: Sequence[Sequence[int]],
        n_bits: int,
    ) -> Tuple[int, OpResult]:
        op = self.op
        n_chunks = self.n_chunks
        operand_lists = (
            [sources[0][:n_chunks]]
            if op is PimOp.INV
            else [s[:n_chunks] for s in sources]
        )
        new_rows = executor.memory.bitwise_rows(op.value, operand_lists)
        executor.controller.mode_register = self.mode_code
        executor._current_mode = op
        acct = OpAccounting()
        acct.locality_counts = dict(self.locality_counts)
        acct.in_memory_steps = self.steps
        acct.absorb(executor.controller.execute_batch(self.frozen))
        acct.count_bits(n_bits * len(sources))
        if not self.mask_ready:
            total_bits = new_rows.size * 8
            if n_bits < total_bits:
                flat = np.zeros(total_bits, dtype=np.uint8)
                flat[:n_bits] = 1
                self.tail_mask = np.packbits(
                    flat, bitorder="little"
                ).reshape(new_rows.shape)
            self.mask_ready = True
        if self.tail_mask is not None:
            new_rows = new_rows & self.tail_mask
        count = popcount_packed(new_rows)
        result = OpResult(
            op=op, accounting=acct, steps=self.steps,
            localities=dict(self.localities),
        )
        return count, result


def build_popcount_program(
    recorded: list, op: PimOp, result: OpResult, n_chunks: int
) -> Optional[PopcountProgram]:
    """Lower one recorded popcount-flavoured ``bitwise_to_host`` call;
    ``None`` if it took the serial path the slot model does not replay."""
    if len(recorded) != 1:
        return None
    flavor = recorded[0]
    if flavor[0] != "to_host" or not flavor[2]:
        return None
    if result.steps != n_chunks:
        return None
    prog = PopcountProgram()
    prog.frozen = freeze_batch(flavor[1], memo_ok=True)
    prog.op = op
    prog.n_chunks = n_chunks
    prog.n_sources = 1 if op is PimOp.INV else None
    prog.steps = result.steps
    prog.localities = dict(result.localities)
    prog.locality_counts = dict(result.accounting.locality_counts)
    prog.mode_code = MODE_CODES[op]
    prog.tail_mask = None
    prog.mask_ready = False
    return prog


# -- exec-wave programs -------------------------------------------------------


class WaveProgram:
    """Replayable exec wave: flat instructions + frozen pricing.

    Slots are (vector id, chunk) positions resolved to row frames per
    replay; ``groups`` execute in level order, each as one vectorized
    ufunc pass over the slot buffer.
    """

    __slots__ = (
        "split",        # True: bitwise_many pricing (marked batch, split)
        "frozen",
        "order",        # submission -> execution permutation
        "mode_code", "mode_out",
        "item_meta",    # per item, execution order:
                        # (op, steps, localities, locality_counts,
                        #  n_bits, n_sources)
        "n_requests", "n_switches",
        "n_slots", "row_bytes",
        "slot_refs",    # slot -> (item exec pos, role, chunk); role -1 = dest
        "load_slots",   # np.intp: slots gathered from memory before exec
        "store_slots",  # np.intp: slots written back, in emission order
        "store_refs",   # parallel to store_slots: (item exec pos, chunk)
        "wb_pos",       # np.intp: frozen.n_bits positions of the widths
        "groups",       # [(ufunc | None, dst np.intp, srcs 2-D np.intp)]
    )

    def replay(self, planner, exec_items: list) -> List[OpResult]:
        """Execute the program; returns results in submission order."""
        driver = planner.driver
        executor = planner.executor
        memory = planner.memory
        ordered = [exec_items[i] for i in self.order]

        # resolve slots -> this wave's row frames
        frames = [0] * self.n_slots
        for slot, (pos, role, chunk) in enumerate(self.slot_refs):
            it = ordered[pos]
            if role < 0:
                frames[slot] = it.dest_frames[chunk]
            else:
                frames[slot] = it.req.sources[role].frames[chunk]

        frame_view = memory.frame_view
        buf = np.empty((self.n_slots, self.row_bytes), dtype=np.uint8)
        if self.load_slots.size:
            buf[self.load_slots] = np.stack(
                [frame_view(frames[s]) for s in self.load_slots]
            )
        store_frames = [frames[s] for s in self.store_slots]
        old_rows = np.stack([frame_view(f) for f in store_frames])

        for ufunc, dsts, srcs in self.groups:
            if ufunc is None:  # INV
                buf[dsts] = np.bitwise_not(buf[srcs[:, 0]])
            elif srcs.shape[1] == 2:
                buf[dsts] = ufunc(buf[srcs[:, 0]], buf[srcs[:, 1]])
            else:
                buf[dsts] = ufunc.reduce(buf[srcs], axis=1)

        new_rows = buf[self.store_slots]
        self.frozen.n_bits[self.wb_pos] = np.asarray(
            popcount_rows(np.bitwise_xor(old_rows, new_rows)),
            dtype=np.float64,
        )

        executor.controller.mode_register = self.mode_code
        executor._current_mode = self.mode_out
        if self.split:
            _, per_op = executor.controller.execute_batch(
                self.frozen, split_ops=True
            )
        else:
            per_op = [executor.controller.execute_batch(self.frozen)]

        memory.write_frames(store_frames, new_rows)

        n = self.n_requests
        stats = driver.stats
        stats.requests += n
        _DRIVER_REQUESTS.add(n)
        _DRIVER_FLUSHES.add()
        stats.mode_switches += self.n_switches
        _DRIVER_MODE_SWITCHES.add(self.n_switches)
        driver.last_order = list(self.order)

        exec_results: List[OpResult] = []
        acct_total = None
        for meta, op_stats in zip(self.item_meta, per_op):
            op, steps, localities, locality_counts, n_bits, n_sources = meta
            acct = OpAccounting()
            acct.in_memory_steps = steps
            acct.locality_counts = dict(locality_counts)
            acct.absorb(op_stats)
            acct.count_bits(n_bits * n_sources)
            stats.instructions += 1
            if acct_total is None:
                acct_total = stats.accounting.merged(acct)
            else:
                acct_total.merge_from(acct)
            exec_results.append(
                OpResult(
                    op=op, accounting=acct, steps=steps,
                    localities=dict(localities),
                )
            )
        if acct_total is not None:
            stats.accounting = acct_total

        out: List[Optional[OpResult]] = [None] * n
        for pos, sub in enumerate(self.order):
            out[sub] = exec_results[pos]
        return out


def build_wave_program(
    planner,
    exec_items: list,
    flush_results: List[OpResult],
    recorded: list,
    order: List[int],
) -> Optional[WaveProgram]:
    """Lower one recorded exec wave into a :class:`WaveProgram`.

    Returns ``None`` when the recording reveals interpreted-only
    semantics: a host fallback or per-request retry (recording shape
    mismatch), multi-step operand accumulation (``steps`` above the
    chunk count), duplicate destination rows within an item, or a
    write-back count that does not line up with the stores.
    """
    n = len(exec_items)
    if len(recorded) != 1:
        return None
    flavor, batch = recorded[0][0], recorded[0][1]
    split = n > 1
    if flavor != ("many" if split else "single"):
        return None
    for it, result in zip(exec_items, flush_results):
        if result.steps != it.n_chunks:
            return None
        if len(set(it.dest_frames)) != it.n_chunks:
            return None
        if it.req.op is not PimOp.INV and len(it.req.sources) < 2:
            return None

    prog = WaveProgram()
    prog.split = split
    prog.frozen = freeze_batch(batch)
    prog.order = list(order)
    prog.n_requests = n
    prog.row_bytes = planner.geometry.row_bytes

    ordered = [exec_items[i] for i in order]
    results_ordered = [flush_results[i] for i in order]

    switches = 0  # flush resets last_op, so the first op always switches
    last_op = None
    for it in ordered:
        if it.req.op != last_op:
            switches += 1
            last_op = it.req.op
    prog.n_switches = switches
    prog.mode_out = ordered[-1].req.op
    prog.mode_code = MODE_CODES[prog.mode_out]

    prog.item_meta = [
        (
            it.req.op,
            res.steps,
            dict(res.localities),
            dict(res.accounting.locality_counts),
            it.req.n_bits,
            len(it.req.sources),
        )
        for it, res in zip(ordered, results_ordered)
    ]

    # slots: (vid, chunk) -> slot id; first reference recorded for the
    # replay-time frame resolution
    slot_of: Dict[Tuple[int, int], int] = {}
    slot_refs: List[Tuple[int, int, int]] = []
    produced: set = set()
    needs_load: set = set()
    prod_lvl: Dict[int, int] = {}
    reader_lvl: Dict[int, int] = {}
    store_slots: List[int] = []
    store_refs: List[Tuple[int, int]] = []
    wb_count = 0
    groups: Dict[Tuple[int, str, int], Tuple[list, list]] = {}

    for pos, it in enumerate(ordered):
        op = it.req.op
        n_chunks = it.n_chunks
        operand_handles = (
            it.req.sources[:1] if op is PimOp.INV else it.req.sources
        )
        src_slots_by_chunk: List[List[int]] = []
        for c in range(n_chunks):
            srcs = []
            for role, handle in enumerate(operand_handles):
                key = (handle.vid, c)
                slot = slot_of.get(key)
                if slot is None:
                    slot = slot_of[key] = len(slot_refs)
                    slot_refs.append((pos, role, c))
                if slot not in produced:
                    needs_load.add(slot)
                srcs.append(slot)
            src_slots_by_chunk.append(srcs)
        dvid = it.req.dest.vid
        for c in range(n_chunks):
            key = (dvid, c)
            dst = slot_of.get(key)
            if dst is None:
                dst = slot_of[key] = len(slot_refs)
                slot_refs.append((pos, -1, c))
            srcs = src_slots_by_chunk[c]
            lvl = reader_lvl.get(dst, 0) + 1
            for s in srcs:
                p = prod_lvl.get(s)
                if p is not None and p >= lvl:
                    lvl = p + 1
            produced.add(dst)
            prod_lvl[dst] = lvl
            for s in srcs:
                if reader_lvl.get(s, 0) < lvl:
                    reader_lvl[s] = lvl
            gkey = (lvl, op.value, len(srcs))
            group = groups.get(gkey)
            if group is None:
                group = groups[gkey] = ([], [])
            group[0].append(dst)
            group[1].append(srcs)
            store_slots.append(dst)
            store_refs.append((pos, c))
            wb_count += 1

    kinds = prog.frozen.kinds
    wb_pos = np.flatnonzero(
        (kinds == _K_WB)
        | ((kinds == _K_WR) & (prog.frozen.transfer_bytes == 0.0))
    )
    if wb_pos.size != wb_count:
        return None
    prog.wb_pos = wb_pos.astype(np.intp)

    prog.n_slots = len(slot_refs)
    prog.slot_refs = slot_refs
    prog.load_slots = np.fromiter(
        sorted(needs_load), dtype=np.intp, count=len(needs_load)
    )
    prog.store_slots = np.asarray(store_slots, dtype=np.intp)
    prog.store_refs = store_refs
    prog.groups = [
        (
            _UFUNCS.get(PimOp(gop)),
            np.asarray(dsts, dtype=np.intp),
            np.asarray(srcs, dtype=np.intp),
        )
        for (lvl, gop, arity), (dsts, srcs) in sorted(groups.items())
    ]
    return prog


# driver telemetry counters replay must keep in step with the
# interpreted flush (same registry objects the driver module uses)
_DRIVER_REQUESTS = telemetry.counter("runtime.driver.requests")
_DRIVER_FLUSHES = telemetry.counter("runtime.driver.flushes")
_DRIVER_MODE_SWITCHES = telemetry.counter("runtime.driver.mode_switches")
