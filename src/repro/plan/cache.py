"""The sharded, write-invalidated sub-result cache.

Entries are keyed by the planner's canonical expression string (op,
vector length, canonicalised operand DAG -- see
:mod:`repro.plan.planner`) and hold a packed copy of the result rows.
Because every leaf of a key carries the *version* of its row frame at
planning time, a stale entry can never be returned: any write to an
operand row bumps that frame's version, so later lookups compute a
different key.  Eager invalidation through :meth:`invalidate_frame`
(driven by the memory's write listener and the allocator's free hook)
exists to reclaim the bytes immediately and to make the invalidation
observable (the ``plan.cache.invalidations`` counter).

The store is sharded by key hash; each shard is an LRU dict with its
slice of the byte budget, so eviction pressure in one shard never scans
the others.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import numpy as np

from repro import telemetry

# always-live instruments (shared across every cache instance; the
# per-instance tallies live on the cache itself)
_HITS = telemetry.counter("plan.cache.hits")
_MISSES = telemetry.counter("plan.cache.misses")
_EVICTIONS = telemetry.counter("plan.cache.evictions")
_INVALIDATIONS = telemetry.counter("plan.cache.invalidations")


class CacheEntry:
    """One cached sub-result: packed rows plus its dependency frames."""

    __slots__ = ("key", "rows", "n_bits", "dep_frames", "nbytes")

    def __init__(
        self,
        key: str,
        rows: np.ndarray,
        n_bits: int,
        dep_frames: FrozenSet[int],
    ):
        self.key = key
        self.rows = rows
        self.n_bits = n_bits
        self.dep_frames = dep_frames
        self.nbytes = int(rows.nbytes)


class SubResultCache:
    """Sharded LRU store of materialised sub-expression results."""

    def __init__(self, max_bytes: int = 64 << 20, shards: int = 8):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if shards < 1:
            raise ValueError("shards must be positive")
        self.max_bytes = max_bytes
        self.n_shards = shards
        self._shard_budget = max(1, max_bytes // shards)
        self._shards: List[OrderedDict] = [OrderedDict() for _ in range(shards)]
        self._shard_bytes = [0] * shards
        #: frame -> keys of entries whose expression reads that frame
        self._frame_index: Dict[int, Set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- capacity ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    @property
    def bytes_used(self) -> int:
        return sum(self._shard_bytes)

    def _shard_of(self, key: str) -> int:
        return hash(key) % self.n_shards

    # -- lookup / insert -----------------------------------------------------

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Presence probe: no hit/miss tally, no LRU touch.

        The planner's resident-wave validation uses this to ask "would
        these lookups all hit?" before committing to a replay whose
        tallies must then match the interpreted path exactly.
        """
        return self._shards[self._shard_of(key)].get(key)

    def get(self, key: str) -> Optional[CacheEntry]:
        """LRU lookup; tallies the hit/miss."""
        i = self._shard_of(key)
        shard = self._shards[i]
        entry = shard.get(key)
        if entry is None:
            self.misses += 1
            _MISSES.add()
            return None
        shard.move_to_end(key)
        self.hits += 1
        _HITS.add()
        return entry

    def put(
        self,
        key: str,
        rows: np.ndarray,
        n_bits: int,
        dep_frames: Iterable[int],
    ) -> bool:
        """Insert (or refresh) one sub-result; False if it cannot fit."""
        entry = CacheEntry(key, rows, n_bits, frozenset(dep_frames))
        i = self._shard_of(key)
        if entry.nbytes > self._shard_budget:
            return False
        old = self._shards[i].pop(key, None)
        if old is not None:
            self._shard_bytes[i] -= old.nbytes
            self._unindex(old)
        self._shards[i][key] = entry
        self._shard_bytes[i] += entry.nbytes
        for frame in entry.dep_frames:
            self._frame_index.setdefault(frame, set()).add(key)
        while self._shard_bytes[i] > self._shard_budget:
            _evicted_key, evicted = self._shards[i].popitem(last=False)
            self._shard_bytes[i] -= evicted.nbytes
            self._unindex(evicted)
            self.evictions += 1
            _EVICTIONS.add()
        return True

    def _unindex(self, entry: CacheEntry) -> None:
        for frame in entry.dep_frames:
            keys = self._frame_index.get(frame)
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._frame_index[frame]

    # -- invalidation --------------------------------------------------------

    def invalidate_frame(self, frame: int) -> int:
        """Drop every entry whose expression reads ``frame``.

        Version-carrying keys already make stale entries unreachable;
        this reclaims their bytes the moment the write happens and
        counts the invalidation.  Returns the number of entries dropped.
        """
        keys = self._frame_index.pop(frame, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            i = self._shard_of(key)
            entry = self._shards[i].pop(key, None)
            if entry is None:
                continue
            self._shard_bytes[i] -= entry.nbytes
            for other in entry.dep_frames:
                if other != frame:
                    other_keys = self._frame_index.get(other)
                    if other_keys is not None:
                        other_keys.discard(key)
                        if not other_keys:
                            del self._frame_index[other]
            dropped += 1
        if dropped:
            self.invalidations += dropped
            _INVALIDATIONS.add(dropped)
        return dropped

    def pop_frames(self, frames: Iterable[int]) -> List[CacheEntry]:
        """Remove and return every entry reading any of ``frames``.

        One pass: the affected key set is unioned across all written
        frames up front, then each entry is popped and unindexed exactly
        once -- the old per-frame loop rescanned ``_frame_index`` for
        every frame of a bulk write.  Callers decide what the removal
        *means*: :meth:`invalidate_frames` tallies an invalidation,
        the planner's repair path re-inserts what it can fix.
        """
        index = self._frame_index
        if not index or index.keys().isdisjoint(frames):
            return []
        keys: Set[str] = set()
        for frame in frames:
            hit = index.get(frame)
            if hit:
                keys |= hit
        popped: List[CacheEntry] = []
        for key in sorted(keys):
            i = self._shard_of(key)
            entry = self._shards[i].pop(key, None)
            if entry is None:  # pragma: no cover - index is kept exact
                continue
            self._shard_bytes[i] -= entry.nbytes
            self._unindex(entry)
            popped.append(entry)
        return popped

    def tally_invalidations(self, n: int) -> None:
        """Count ``n`` dropped entries as invalidations."""
        if n > 0:
            self.invalidations += n
            _INVALIDATIONS.add(n)

    def invalidate_frames(self, frames: Iterable[int]) -> int:
        """Drop every entry reading any of ``frames``; true evicted count."""
        dropped = len(self.pop_frames(frames))
        self.tally_invalidations(dropped)
        return dropped

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()
        self._shard_bytes = [0] * self.n_shards
        self._frame_index.clear()

    # -- stats ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready tallies of this cache instance."""
        return {
            "entries": len(self),
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "shards": self.n_shards,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        lookups = self.hits + self.misses
        rate = self.hits / lookups if lookups else 0.0
        return (
            f"SubResultCache: {len(self)} entries / {self.bytes_used}B, "
            f"hit rate {100.0 * rate:.1f}% "
            f"({self.hits}/{lookups}), {self.evictions} evictions, "
            f"{self.invalidations} invalidations"
        )


class ProgramCache:
    """Bounded LRU of compiled kernel programs, keyed by DAG shape.

    Values are :class:`repro.plan.compile.WaveProgram` /
    :class:`~repro.plan.compile.ToHostProgram` instances or the compile
    module's ``SEEN_ONCE`` / ``UNCOMPILABLE`` markers; the arithmetic
    subsystem's :class:`~repro.arith.compile.AnalyticsProgram` keeps its
    whole-query analytics programs in a separate instance of this same
    store.  Programs are frame-agnostic and shape keys embed no content
    versions, so -- unlike :class:`SubResultCache` entries -- they need
    no write invalidation: a memory write changes *which* requests
    execute, never what a shape's command stream looks like.  (Analytics
    programs *do* pin frames, and drop themselves via :meth:`discard`
    from an allocator free listener.)  Eviction only ever costs a
    recompile on the next recurrence.
    """

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """LRU lookup; ``None`` on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, program) -> None:
        """Insert or replace (marker upgrades reuse the key's slot)."""
        self._entries[key] = program
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key):
        """Drop one entry (no tally); returns it, or ``None``."""
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def to_dict(self) -> dict:
        """JSON-ready tallies of this cache instance."""
        return {
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
