"""The query-plan compiler: canonical DAGs, CSE, and cached serving.

:class:`QueryPlanner` sits between ``PimRuntime.pim_op/pim_op_many``
and the batched driver.  For every request it builds a **canonical
expression key**:

- a *leaf* is the tuple ``("L", frames, versions)`` -- the identity of
  a run of row frames at their current write versions, encoded as the
  raw bytes of the frame-number and version arrays (versions are bumped
  by the main memory's write listener, so any write to a row changes
  every key that reads it).  Leaf keys are memoized per vector id and
  revalidated with one vectorized version compare, so the hot path
  never re-derives them;
- a handle whose content was produced by an earlier planned request
  resolves to that request's *expression key* instead of its raw
  frames (the binding survives as long as the destination rows are
  unwritten), which is what lets the AND over two cached range-ORs
  match across queries even though each query materialised its
  predicates into different scratch rows;
- operand lists are sorted (and, for the idempotent OR/AND, dedup'd)
  so commutative expressions canonicalise to one key; XOR keeps its
  multiset.

Requests stream through a *wave*: duplicates of a request already in
the wave (``plan.cse_hits``) and requests whose key is in the
:class:`~repro.plan.cache.SubResultCache` (``plan.cache.hits``) become
*serve* items; everything else executes through one batched driver
flush.  Serve items are materialised after the flush, in submission
order, and priced honestly as a **row-buffer read** per chunk (ACT +
serial PIM_SENSE steps + PRE) through the real controller -- the cached
result is re-sensed from the array and forwarded to the destination
row, so a hit has nonzero simulated latency/energy but skips the
multi-row activation and, critically, the NVM write-back of a full
execution.  Serve costs merge into ``driver.stats.accounting`` so
runtime/telemetry totals reconcile.

Correctness invariants:

- versions only increase, and every key embeds the versions of its
  transitive leaf frames, so a cache entry can never be returned for
  changed operands (eager invalidation via the write listener also
  reclaims the entry's bytes immediately);
- a wave is flushed before admitting an exec-bound request that reads
  or writes any frame a pending serve item will write, or writes a
  frame a pending exec item writes -- the only orderings where
  serve-after-flush could be observed out of submission order;
- requests whose destination frames appear among their own leaf
  frames (accumulation in place) execute normally but are never
  inserted, since their stored key would reference a pre-write version
  that no later lookup can reproduce.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import telemetry
from repro.core.executor import OpResult
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.memsim.controller import CommandBatch, CommandKind
from repro.plan.cache import ProgramCache, SubResultCache
from repro.plan.compile import (
    COMPILATIONS,
    COMPILE_SECONDS,
    PROGRAM_HITS,
    PROGRAM_MISSES,
    SEEN_ONCE,
    UNCOMPILABLE,
    UNCOMPILABLE_SHAPES,
    PopcountProgram,
    ToHostProgram,
    WaveProgram,
    build_popcount_program,
    build_serve_template,
    build_to_host_program,
    build_wave_program,
    concat_serve_templates,
    to_host_shape_key,
    wave_shape_key,
)
from repro.runtime.driver import PimDriver, PimRequest

__all__ = ["PlanStats", "QueryPlanner", "forward_rows"]

#: persistent expression bindings kept per planner (vid -> producing
#: expression); a plain LRU bound -- bindings are an optimisation hint,
#: dropping one only costs a missed CSE opportunity
_MAX_BINDINGS = 8192

_CSE_HITS = telemetry.counter("plan.cse_hits")
_PLANNED = telemetry.counter("plan.requests")
#: canonical serve-replay counter; the historical ``plan.compile.*``
#: name is kept as a compatibility alias (both bump in lock-step)
_SERVE_REPLAYS = telemetry.counter("plan.serve.replays")
_SERVE_REPLAYS_COMPAT = telemetry.counter("plan.compile.serve_replays")


def _serve_commands(batch, geometry, channel_of, dest_frames, n_bits):
    """Emit the row-buffer-read command shape of one served result.

    Per chunk: re-open the row holding the cached sub-result (ACT),
    resolve its sense steps through the SA mux (PIM_SENSE), close
    (PRE).  No PIM_WRITEBACK/WR: the forwarded buffer content lands in
    the destination row through the write-driver bypass without a full
    array program, which is exactly why a hit is cheaper than an
    execution on write-asymmetric NVM.
    """
    row_bits = geometry.row_bits
    for c, frame in enumerate(dest_frames):
        chunk_bits = min(n_bits - c * row_bits, row_bits)
        ch = channel_of(frame)
        steps = geometry.sense_steps_for_bits(chunk_bits)
        batch.add(CommandKind.ACT, channel=ch, n_bits=chunk_bits)
        batch.add(
            CommandKind.PIM_SENSE, channel=ch, n_bits=chunk_bits, n_steps=steps
        )
        batch.add(CommandKind.PRE, channel=ch)
        batch.fence()


def forward_rows(
    driver: PimDriver,
    dest_frames: Sequence[int],
    rows: np.ndarray,
    n_bits: int,
    op: PimOp = PimOp.OR,
) -> OpResult:
    """Materialise pre-computed packed rows into a destination vector,
    priced as a row-buffer read and merged into the driver's totals.

    The standalone entry point for result forwarding outside a planner
    wave -- the serving layer's cross-tenant replay path uses it to give
    a folded duplicate its own destination buffer at hit price.
    """
    executor = driver.executor
    batch = CommandBatch()
    _serve_commands(
        batch,
        executor.geometry,
        executor.mapper.channel_of,
        dest_frames,
        n_bits,
    )
    for c, frame in enumerate(dest_frames):
        executor.memory.write_frame(frame, rows[c])
    acct = OpAccounting()
    acct.absorb(executor.controller.execute_batch(batch))
    acct.count_bits(n_bits)
    driver.stats.accounting = driver.stats.accounting.merged(acct)
    return OpResult(op=op, accounting=acct, steps=0, localities={})


class PlanStats:
    """Tallies of one planner instance (StatsLike)."""

    __slots__ = (
        "requests",
        "cse_hits",
        "cache_hits",
        "cache_misses",
        "waves",
        "hazard_flushes",
        "served_latency_s",
        "served_energy_j",
        "program_hits",
        "program_misses",
        "compilations",
        "compile_seconds",
        "serve_replays",
        "repairs",
        "repair_fallbacks",
        "repaired_chunks",
        "repair_latency_s",
        "repair_energy_j",
        "repair_saved_s",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.cse_hits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.waves = 0
        self.hazard_flushes = 0
        self.served_latency_s = 0.0
        self.served_energy_j = 0.0
        self.program_hits = 0
        self.program_misses = 0
        self.compilations = 0
        self.compile_seconds = 0.0
        self.serve_replays = 0
        self.repairs = 0
        self.repair_fallbacks = 0
        self.repaired_chunks = 0
        self.repair_latency_s = 0.0
        self.repair_energy_j = 0.0
        self.repair_saved_s = 0.0

    @property
    def served(self) -> int:
        return self.cse_hits + self.cache_hits

    def to_dict(self) -> dict:
        """JSON-ready dict of every tally."""
        return {
            "requests": self.requests,
            "cse_hits": self.cse_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "served": self.served,
            "waves": self.waves,
            "hazard_flushes": self.hazard_flushes,
            "served_latency_s": self.served_latency_s,
            "served_energy_j": self.served_energy_j,
            "program_hits": self.program_hits,
            "program_misses": self.program_misses,
            "compilations": self.compilations,
            "compile_seconds": self.compile_seconds,
            "serve_replays": self.serve_replays,
            "repairs": self.repairs,
            "repair_fallbacks": self.repair_fallbacks,
            "repaired_chunks": self.repaired_chunks,
            "repair_latency_s": self.repair_latency_s,
            "repair_energy_j": self.repair_energy_j,
            "repair_saved_s": self.repair_saved_s,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"PlanStats: {self.requests} requests, "
            f"{self.cse_hits} CSE hits + {self.cache_hits} cache hits "
            f"served ({self.cache_misses} misses), {self.waves} waves "
            f"({self.hazard_flushes} hazard flushes)"
        )


class _Item:
    """One planned request inside the current wave."""

    __slots__ = (
        "index",
        "req",
        "key",
        "leaves",
        "dest_frames",
        "n_chunks",
        "kind",  # "exec" | "serve"
        "rows",  # serve: cached rows (None when copied from a primary)
        "primary",  # serve: the exec _Item whose result this duplicates
        "cacheable",
        "has_dups",
    )

    def __init__(self, index, req, key, leaves, dest_frames, n_chunks, kind):
        self.index = index
        self.req = req
        self.key = key
        self.leaves = leaves
        self.dest_frames = dest_frames
        self.n_chunks = n_chunks
        self.kind = kind
        self.rows = None
        self.primary = None
        self.cacheable = False
        self.has_dups = False


class _Wave:
    """Pending items plus the frame sets the hazard checks consult."""

    __slots__ = ("items", "keys", "exec_reads", "exec_writes", "serve_writes",
                 "bind")

    def __init__(self) -> None:
        self.items: List[_Item] = []
        #: canonical key -> exec item (the wave-local CSE table)
        self.keys: Dict[tuple, _Item] = {}
        self.exec_reads: Set[int] = set()
        self.exec_writes: Set[int] = set()
        self.serve_writes: Set[int] = set()
        #: vid -> (frames, key, leaves) for every pending destination
        self.bind: Dict[int, Tuple[tuple, tuple, FrozenSet[int]]] = {}


class _ResidentItem:
    """One replayable cache serve: everything a re-serve needs.

    Recorded whenever a compiled planner serves a request straight from
    the sub-result cache.  The store is *content-addressed*: the lookup
    key is ``(canonical expression key, overlap flag, destination
    channel layout)``, never raw frame numbers -- scratch vectors rotate
    through physical rows between queries, so frame identity is
    meaningless across calls, while the expression key pins both the
    operand contents (leaf frames + versions) and the command pricing
    (bit widths; the channel layout fixes the serve command columns).
    Destination frames are taken fresh from the live request at replay
    time; everything content- and price-dependent is reused.
    """

    __slots__ = (
        "key",  # canonical expression key
        "n_chunks",
        "leaves",  # frozenset of the expression's transitive leaf frames
        "result",  # the (shared, read-only) OpResult
        "entry",  # the CacheEntry served at record time
        "rows",  # the entry's first n_chunks rows
        "frozen",  # the serve template's memo-priced frozen batch
    )

    def __init__(self, key, n_chunks, leaves, result, entry, rows, frozen):
        self.key = key
        self.n_chunks = n_chunks
        self.leaves = leaves
        self.result = result
        self.entry = entry
        self.rows = rows
        self.frozen = frozen


#: shared read-only wave for leaf-key resolution outside planning
_EMPTY_WAVE = _Wave()

#: cap on retained resident serve items per planner
_MAX_RESIDENT = 4096


class QueryPlanner:
    """Compiles request streams into minimally-executed driver waves."""

    def __init__(
        self,
        driver: PimDriver,
        cache_bytes: int = 64 << 20,
        cache_shards: int = 8,
        compile: bool = True,
        repair: bool = True,
    ):
        self.driver = driver
        self.executor = driver.executor
        self.geometry = self.executor.geometry
        self.memory = self.executor.memory
        self.cache = SubResultCache(cache_bytes, cache_shards)
        #: ``compile=False`` is the escape hatch back to the fully
        #: interpreted wave execution (identical results and pricing,
        #: just no program recording/replay)
        self.compile_enabled = bool(compile)
        #: shape key -> WaveProgram/ToHostProgram or SEEN_ONCE/UNCOMPILABLE
        self.programs = ProgramCache()
        #: (n_bits, channels bytes) -> ServeTemplate
        self._serve_templates: Dict[tuple, object] = {}
        self.stats = PlanStats()
        #: authoritative write versions, dense per frame (row counts are
        #: modest even for the 64 GiB geometry -- capacity lives in row
        #: *width*); a frame never written since the planner attached
        #: stays at version 0
        self._versions = np.zeros(self.geometry.total_rows, dtype=np.int64)
        #: bumps once per write call; a memo entry validated at the
        #: current epoch needs no version re-check (see :meth:`_leaf_key`)
        self._write_epoch = 0
        #: vid -> [frames, frames array, version snapshot array, version
        #: sum, expression key, leaf frames, validated epoch]
        self._bound: "OrderedDict[int, list]" = OrderedDict()
        #: vid -> [n_chunks, frames, frames array, version sum, leaf
        #: key, leaf frames, validated epoch] -- raw-operand key memo
        self._leaf_keys: "OrderedDict[int, list]" = OrderedDict()
        #: serve-wave composition (tuple of templates) -> frozen batch,
        #: so recurring compositions reuse one memo-priced batch object
        self._serve_batches: Dict[tuple, object] = {}
        #: frames tuple -> packed channel layout; pure (the mapping is
        #: geometry, not state) and scratch frames rotate through a
        #: finite pool, so the same tuples recur indefinitely
        self._chan_bytes: Dict[tuple, bytes] = {}
        #: raw to-host operand identity -> shape key (same purity
        #: argument; ``None`` marks shapes the compiler rejects)
        self._to_host_keys: Dict[tuple, Optional[tuple]] = {}
        #: (op, n_bits, child keys in submission order) -> canonical
        #: request key, skipping the per-request sort of recurring
        #: operand combinations
        self._canon_keys: Dict[tuple, tuple] = {}
        #: content part -> _ResidentItem (replayable cache serves)
        self._resident: "OrderedDict[tuple, _ResidentItem]" = OrderedDict()
        #: ``repair=False`` is the escape hatch back to PR-6 semantics:
        #: every write eagerly invalidates dependent cached sub-results
        self.repair_enabled = bool(repair)
        #: >0 while this planner itself is executing a wave; the dest
        #: writes a wave lands (serves, exec write-backs) always
        #: invalidate -- their grouping differs between the interpreted
        #: and compiled paths, and repairing mid-wave would fork their
        #: pricing.  Host-side writes (``pim_write``, service updates)
        #: happen at depth 0 and take the repair path.
        self._wave_depth = 0
        from repro.plan.repair import RepairEngine

        self._repair = RepairEngine(self)
        self.memory.add_delta_write_listener(self)

    # -- invalidation / repair hooks -----------------------------------------

    def wants_delta(self, frames) -> bool:
        """Memory asks before a write: capture ``old XOR new``?

        Only when repair is on, the planner is not mid-wave, and some
        cached entry actually reads one of the frames -- so unrelated
        writes never pay the old-row gather.  Reads ``self.cache``
        dynamically (tests swap the cache instance out).
        """
        if not self.repair_enabled or self._wave_depth:
            return False
        index = self.cache._frame_index
        return bool(index) and not index.keys().isdisjoint(frames)

    def on_write(self, frames, farr=None, deltas=None) -> None:
        """Every write to main memory lands here (driver execution, host
        writes, fallbacks, the planner's own serves), once per write
        call with the programmed frames: bump their versions, then
        either repair the cached sub-results that read them (a delta
        was captured) or drop them (PR-6 eager invalidation)."""
        self._write_epoch += 1
        versions = self._versions
        if len(frames) == 1:
            versions[frames[0]] += 1
        elif type(frames) is np.ndarray:
            np.add.at(versions, frames, 1)
        else:
            np.add.at(
                versions,
                np.fromiter(frames, dtype=np.intp, count=len(frames)),
                1,
            )
        if deltas is None:
            self.cache.invalidate_frames(frames)
        else:
            self._repair.on_delta(farr, deltas)

    def _on_frames_written(self, frames) -> None:
        """Bulk-listener compatibility shim: invalidation-only entry."""
        self.on_write(frames)

    def on_free(self, handle) -> None:
        """Allocator free hook: a freed vector's rows may be recycled, so
        its bindings and any sub-results reading its frames go now."""
        self._bound.pop(handle.vid, None)
        self._leaf_keys.pop(handle.vid, None)
        self.cache.invalidate_frames(handle.frames)

    # -- canonicalisation ----------------------------------------------------

    def _leaf_key(
        self, handle, n_chunks: int, wave: _Wave
    ) -> Tuple[tuple, FrozenSet[int]]:
        """Canonical key of one operand handle (expression or raw leaf)."""
        frames = handle.frames
        if len(frames) != n_chunks:
            frames = frames[:n_chunks]
        pending = wave.bind.get(handle.vid)
        if pending is not None:
            bframes, key, leaves = pending
            if len(bframes) >= n_chunks and bframes[:n_chunks] == frames:
                return key, leaves
        # version snapshots are validated by *sum*: versions only ever
        # increment, so sum equality over the same frames is equivalent
        # to elementwise equality -- one scalar compare instead of an
        # elementwise one on every memo probe.  Cheaper still: an entry
        # whose ``epoch`` slot equals the global write epoch was
        # validated after the last write anywhere, so its versions
        # cannot have moved -- no array touch at all.
        epoch = self._write_epoch
        bound = self._bound.get(handle.vid)
        if bound is not None:
            bframes = bound[0]
            if len(bframes) == n_chunks:
                if bframes == frames and (
                    bound[6] == epoch
                    or int(self._versions[bound[1]].sum()) == bound[3]
                ):
                    bound[6] = epoch
                    self._bound.move_to_end(handle.vid)
                    return bound[4], bound[5]
            elif (
                len(bframes) > n_chunks
                and bframes[:n_chunks] == frames
                and (
                    bound[6] == epoch
                    or (
                        self._versions[bound[1][:n_chunks]]
                        == bound[2][:n_chunks]
                    ).all()
                )
            ):
                # prefix-only validation: leave the epoch slot alone
                # (it asserts whole-entry freshness)
                self._bound.move_to_end(handle.vid)
                return bound[4], bound[5]
        cached = self._leaf_keys.get(handle.vid)
        if cached is not None:
            if (
                cached[0] == n_chunks
                and cached[1] == frames
                and (
                    cached[6] == epoch
                    or int(self._versions[cached[2]].sum()) == cached[3]
                )
            ):
                cached[6] = epoch
                self._leaf_keys.move_to_end(handle.vid)
                return cached[4], cached[5]
        farr = np.fromiter(frames, dtype=np.intp, count=n_chunks)
        snapshot = self._versions[farr]
        key = ("L", farr.tobytes(), snapshot.tobytes())
        leaves = frozenset(frames)
        self._leaf_keys[handle.vid] = [
            n_chunks, frames, farr, int(snapshot.sum()), key, leaves, epoch
        ]
        while len(self._leaf_keys) > _MAX_BINDINGS:
            self._leaf_keys.popitem(last=False)
        return key, leaves

    def _request_key(
        self, req: PimRequest, wave: _Wave
    ) -> Tuple[tuple, FrozenSet[int], bool]:
        """(canonical key, transitive leaf frames, aliased?) of a request.

        ``aliased`` marks in-place accumulation: the destination's own
        frames are among the expression's leaves, so the result is never
        inserted (its key embeds pre-write versions no later lookup can
        reproduce) and never served.
        """
        n_chunks = req_chunks = self.geometry.rows_for_bits(req.n_bits)
        children = []
        leaves: Set[int] = set()
        for src in req.sources:
            ck, cl = self._leaf_key(src, n_chunks, wave)
            children.append(ck)
            leaves.update(cl)
        # OR/AND are commutative and idempotent (sorted set), XOR is
        # commutative only (sorted multiset) -- _canon memoizes both
        key = self._canon(req.op, req.n_bits, children)
        dest_frames = req.dest.frames[:req_chunks]
        aliased = any(f in leaves for f in dest_frames)
        return key, frozenset(leaves), aliased

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        op,
        dest,
        sources,
        n_bits: Optional[int] = None,
        overlap_chunks: bool = False,
    ) -> OpResult:
        """Plan + run one operation (see :meth:`execute_many`)."""
        return self.execute_many([(op, dest, sources, n_bits, overlap_chunks)])[0]

    def execute_many(self, requests) -> List[OpResult]:
        """Plan and run a request stream; results in submission order.

        Accepts the driver's ``(op, dest, sources[, n_bits[,
        overlap_chunks]])`` tuples.  Functional results are identical to
        :meth:`PimDriver.execute_many`; only the cost of served
        duplicates differs (row-buffer read instead of re-execution).
        """
        reqs: List[PimRequest] = []
        for tup in requests:
            op, dest, sources = tup[0], tup[1], tup[2]
            n_bits = tup[3] if len(tup) > 3 else None
            overlap = bool(tup[4]) if len(tup) > 4 else False
            op = PimOp.parse(op)
            sources = tuple(sources)
            if n_bits is None:
                n_bits = min([dest.n_bits] + [s.n_bits for s in sources])
            reqs.append(PimRequest(op, dest, sources, n_bits, overlap))
        if not reqs:
            return []
        n = len(reqs)
        self._wave_depth += 1
        try:
            with telemetry.span("plan.execute_many", requests=n):
                results: List[Optional[OpResult]] = [None] * n
                wave = _Wave()
                probe = self.compile_enabled and len(self._resident) > 0
                i = 0
                while i < n:
                    if probe:
                        k = self._try_replay(reqs, i, results, wave)
                        if k:
                            i += k
                            continue
                    self._plan_one(i, reqs[i], wave, results)
                    i += 1
                self._flush_wave(wave, results)
        finally:
            self._wave_depth -= 1
        return results

    def _channels_bytes(self, frames: tuple) -> bytes:
        chan = self._chan_bytes.get(frames)
        if chan is None:
            if len(self._chan_bytes) >= 8192:
                self._chan_bytes.clear()
            chan = self.executor.mapper.channels_of(frames).tobytes()
            self._chan_bytes[frames] = chan
        return chan

    def _req_part(self, req: PimRequest, pending, wave: _Wave) -> tuple:
        """One request's resident-store lookup part.

        ``(canonical expression key, overlap flag, destination channel
        layout)`` -- resolved through the same pending/bound/leaf memos
        the interpreted path consults (including the live wave's
        bindings, so a source fed by a still-pending destination gets
        its pending expression key, never a stale one), so the
        expression key embeds operand identity and content (leaf frames
        + versions) while the channel layout fixes the serve pricing.
        Raw destination frame numbers are deliberately absent: scratch
        rotates through physical rows between queries, and a replay
        writes to whatever frames the live requests name.
        """
        n_chunks = self.geometry.rows_for_bits(req.n_bits)
        children = []
        for src in req.sources:
            bound = pending.get(src.vid)
            if bound is not None:
                bframes, bkey = bound
                if (
                    len(bframes) >= n_chunks
                    and bframes[:n_chunks] == src.frames[:n_chunks]
                ):
                    children.append(bkey)
                    continue
            children.append(self._leaf_key(src, n_chunks, wave)[0])
        key = self._canon(req.op, req.n_bits, children)
        dest_frames = req.dest.frames[:n_chunks]
        part = (key, req.overlap_chunks, self._channels_bytes(dest_frames))
        return key, part, dest_frames

    def _canon(self, op, n_bits: int, children: list) -> tuple:
        """Canonical request key, memoized on the submission-order
        children (recurring operand combinations skip the sort)."""
        raw = (op.value, n_bits, tuple(children))
        key = self._canon_keys.get(raw)
        if key is not None:
            return key
        if op is PimOp.OR or op is PimOp.AND:
            children = sorted(set(children))
        elif op is PimOp.XOR:
            children = sorted(children)
        key = (op.value, n_bits, tuple(children))
        if len(self._canon_keys) >= _MAX_BINDINGS:
            self._canon_keys.clear()
        self._canon_keys[raw] = key
        return key

    def _try_replay(
        self, reqs: List[PimRequest], i: int, results, wave: _Wave
    ) -> int:
        """Replay the longest run of recorded serves starting at ``i``.

        Returns the number of requests consumed (0 when request ``i``
        has no valid resident entry).  Requests are matched greedily:
        each one's key part is resolved (with pending bindings emulated
        for intra-run chains, exactly as planning would bind them) and
        looked up in the resident store; the run ends at the first
        request that misses, fails validation (cache entry gone, a
        destination aliasing its expression's leaves, or a destination
        touching frames the pending wave will read or write -- a replay
        commits *now*, so it must not reorder against unflushed items),
        or is simply not a recorded serve.  Validation happens *before*
        any observable side effect; only then is the whole run
        committed -- same tallies, writes, pricing, and bindings as the
        interpreted serve.
        """
        resident = self._resident
        peek = self.cache.peek
        pending: Dict[int, tuple] = {}
        matched = []  # (req, res, dest_frames, entry, part)
        blocked = wave.exec_writes | wave.serve_writes | wave.exec_reads
        n = len(reqs)
        j = i
        while j < n:
            req = reqs[j]
            key, part, dest = self._req_part(req, pending, wave)
            res = resident.get(part)
            if res is None:
                break
            entry = peek(res.key)
            if entry is None:
                break
            if not res.leaves.isdisjoint(dest):
                break  # aliased: the full path must execute it
            if blocked and not blocked.isdisjoint(dest):
                break  # would reorder against the pending wave
            matched.append((req, res, dest, entry, part))
            pending[req.dest.vid] = (dest, key)
            j += 1
        if not matched:
            return 0

        # -- committed: replay with the interpreted path's side effects --
        k = len(matched)
        stats = self.stats
        stats.requests += k
        _PLANNED.add(k)
        cache_get = self.cache.get
        for _req, res, _dest, _entry, _part in matched:
            cache_get(res.key)  # guaranteed hit: tally + LRU touch
        stats.cache_hits += k
        stats.waves += 1
        stats.serve_replays += 1
        _SERVE_REPLAYS.add()
        _SERVE_REPLAYS_COMPAT.add()
        with telemetry.span("plan.cache.serve", served=k):
            farrs = []
            rows_parts = []
            for _req, res, dest, entry, _part in matched:
                if entry is not res.entry:
                    # same key, re-inserted entry: identical values,
                    # fresh arrays -- refresh the snapshot
                    res.entry = entry
                    res.rows = entry.rows[: res.n_chunks]
                farrs.append(
                    np.fromiter(dest, dtype=np.intp, count=res.n_chunks)
                )
                rows_parts.append(res.rows)
            if k == 1:
                frames_arr = farrs[0]
                rows_2d = rows_parts[0]
            else:
                frames_arr = np.concatenate(farrs)
                rows_2d = np.concatenate(rows_parts)
            self.memory.write_frames(frames_arr, rows_2d)
            execute_batch = self.executor.controller.execute_batch
            latency = 0.0
            energy = 0.0
            driver_acct = None
            for _req, res, _dest, _entry, _part in matched:
                total, _per_item = execute_batch(res.frozen, split_ops=True)
                latency += total.latency
                energy += total.energy
                acct = res.result.accounting
                if driver_acct is None:
                    driver_acct = self.driver.stats.accounting.merged(acct)
                else:
                    driver_acct.merge_from(acct)
            self.driver.stats.accounting = driver_acct
            stats.served_latency_s += latency
            stats.served_energy_j += energy
        versions = self._versions
        bound = self._bound
        epoch = self._write_epoch
        # one fancy-index + one reduction for every binding snapshot:
        # the run's frames are already concatenated in ``frames_arr``
        all_snap = versions[frames_arr]
        starts = 0
        vsums = None
        if k > 1 and all(m[1].n_chunks == matched[0][1].n_chunks for m in matched):
            n_c = matched[0][1].n_chunks
            all_snap = all_snap.reshape(k, n_c)
            vsums = all_snap.sum(axis=1)
        for idx, (req, res, dest, _entry, part) in enumerate(matched):
            results[i + idx] = res.result
            resident.move_to_end(part)
            farr = farrs[idx]
            vid = req.dest.vid
            if vsums is not None:
                snapshot = all_snap[idx]
                vsum = int(vsums[idx])
            else:
                snapshot = all_snap[starts : starts + res.n_chunks]
                starts += res.n_chunks
                vsum = int(snapshot.sum())
            bound[vid] = [
                dest, farr, snapshot, vsum, res.key, res.leaves, epoch,
            ]
            bound.move_to_end(vid)
        while len(bound) > _MAX_BINDINGS:
            bound.popitem(last=False)
        return k

    def _record_resident(self, items: List[_Item], results: list) -> None:
        """Snapshot a wave's cache-served items for content replay."""
        resident = self._resident
        peek = self.cache.peek
        get_tmpl = self._serve_templates.get
        channels_bytes = self._channels_bytes
        for it in items:
            if it.rows is None:
                continue  # CSE copy of an exec primary: not cache-backed
            entry = peek(it.key)
            if entry is None or entry.rows is not it.rows:
                continue
            chan = channels_bytes(it.dest_frames)
            tmpl = get_tmpl((it.req.n_bits, chan))
            if tmpl is None:  # pragma: no cover - serve always populates it
                continue
            part = (it.key, it.req.overlap_chunks, chan)
            resident[part] = _ResidentItem(
                it.key,
                it.n_chunks,
                it.leaves,
                results[it.index],
                entry,
                it.rows[: it.n_chunks],
                tmpl.frozen,
            )
            resident.move_to_end(part)
        while len(resident) > _MAX_RESIDENT:
            resident.popitem(last=False)

    # -- planning ------------------------------------------------------------

    def _plan_one(
        self, index: int, req: PimRequest, wave: _Wave, results: list
    ) -> None:
        self.stats.requests += 1
        _PLANNED.add()
        n_chunks = self.geometry.rows_for_bits(req.n_bits)
        dest_frames = req.dest.frames[:n_chunks]
        while True:
            key, leaves, aliased = self._request_key(req, wave)

            if not aliased:
                primary = wave.keys.get(key)
                if primary is not None:
                    # same expression already pending in this wave:
                    # serve a copy of its result after the flush
                    item = _Item(index, req, key, leaves, dest_frames,
                                 n_chunks, "serve")
                    item.primary = primary
                    primary.has_dups = True
                    self.stats.cse_hits += 1
                    _CSE_HITS.add()
                    self._admit_serve(item, wave)
                    return
                entry = self.cache.get(key)
                if entry is not None:
                    item = _Item(index, req, key, leaves, dest_frames,
                                 n_chunks, "serve")
                    item.rows = entry.rows
                    self.stats.cache_hits += 1
                    self._admit_serve(item, wave)
                    return
                self.stats.cache_misses += 1

            # exec-bound.  Flush first if this request would observe a
            # pending serve's write out of order (RAW/WAW against a
            # serve item) or double-write a pending exec destination
            # (WAW whose post-flush snapshot would be ambiguous); then
            # re-plan against the (empty, hazard-free) wave -- the
            # flush advanced the bindings and may have inserted this
            # very expression into the cache.
            source_frames: Set[int] = set()
            for src in req.sources:
                source_frames.update(src.frames[:n_chunks])
            dest_set = set(dest_frames)
            if (
                (source_frames & wave.serve_writes)
                or (dest_set & wave.serve_writes)
                or (dest_set & wave.exec_writes)
            ):
                self.stats.hazard_flushes += 1
                self._flush_wave(wave, results)
                continue

            item = _Item(index, req, key, leaves, dest_frames, n_chunks,
                         "exec")
            item.cacheable = not aliased
            wave.items.append(item)
            if item.cacheable:
                wave.keys[key] = item
            wave.exec_reads |= source_frames
            wave.exec_writes |= dest_set
            wave.bind[req.dest.vid] = (dest_frames, key, leaves)
            return

    def _admit_serve(self, item: _Item, wave: _Wave) -> None:
        wave.items.append(item)
        wave.serve_writes |= set(item.dest_frames)
        wave.bind[item.req.dest.vid] = (item.dest_frames, item.key, item.leaves)

    # -- wave execution ------------------------------------------------------

    def _flush_wave(self, wave: _Wave, results: list) -> None:
        if not wave.items:
            return
        self.stats.waves += 1
        exec_items = [it for it in wave.items if it.kind == "exec"]
        serve_items = [it for it in wave.items if it.kind == "serve"]

        if exec_items:
            for it, result in zip(exec_items, self._run_exec(exec_items)):
                results[it.index] = result

        # Snapshot result rows straight after the flush -- before any
        # serve write can touch them -- for cache inserts and for the
        # wave's CSE duplicates.
        frame_view = self.memory.frame_view
        primary_rows: Dict[int, np.ndarray] = {}
        for it in exec_items:
            if not (it.cacheable or it.has_dups):
                continue
            rows = np.stack([frame_view(f) for f in it.dest_frames])
            if it.has_dups:
                primary_rows[id(it)] = rows
            if it.cacheable:
                self.cache.put(it.key, rows, it.req.n_bits, it.leaves)

        if serve_items:
            self._serve(serve_items, primary_rows, results)
            if self.compile_enabled:
                self._record_resident(serve_items, results)

        # Persistent bindings: every destination now holds its
        # expression's value; snapshot the (final) versions so any later
        # write is detected.  Submission order makes the last writer of
        # a vid win.
        versions = self._versions
        epoch = self._write_epoch
        for it in wave.items:
            farr = np.fromiter(
                it.dest_frames, dtype=np.intp, count=it.n_chunks
            )
            snapshot = versions[farr]
            self._bound[it.req.dest.vid] = [
                it.dest_frames,
                farr,
                snapshot,
                int(snapshot.sum()),
                it.key,
                it.leaves,
                epoch,
            ]
            self._bound.move_to_end(it.req.dest.vid)
        while len(self._bound) > _MAX_BINDINGS:
            self._bound.popitem(last=False)

        wave.items.clear()
        wave.keys.clear()
        wave.exec_reads.clear()
        wave.exec_writes.clear()
        wave.serve_writes.clear()
        wave.bind.clear()

    def _run_exec(self, exec_items: List[_Item]) -> List[OpResult]:
        """Execute a wave's exec items, compiled when possible.

        A wave shape's lifecycle: first sight interprets and drops a
        ``SEEN_ONCE`` marker; the second sight interprets again with the
        executor's record sink attached and lowers the recording into a
        :class:`~repro.plan.compile.WaveProgram` (or marks the shape
        ``UNCOMPILABLE`` forever); every later sight replays the program
        -- same memory effects, byte-identical pricing through the
        frozen command batch, no per-op Python on the hot path.
        """
        if not self.compile_enabled:
            return self._interpret_exec(exec_items)
        executor = self.executor
        key = wave_shape_key(executor.mapper, exec_items, executor._current_mode)
        if key is None:  # inter-chip placement: interpreted fallback owns it
            return self._interpret_exec(exec_items)
        entry = self.programs.get(key)
        if type(entry) is WaveProgram:
            PROGRAM_HITS.add()
            self.stats.program_hits += 1
            return entry.replay(self, exec_items)
        PROGRAM_MISSES.add()
        self.stats.program_misses += 1
        if entry is UNCOMPILABLE:
            return self._interpret_exec(exec_items)
        if entry is None:
            self.programs.put(key, SEEN_ONCE)
            return self._interpret_exec(exec_items)
        # second sight: record the interpreted run and compile it
        executor.record_sink = recorded = []
        try:
            flush_results = self._interpret_exec(exec_items)
        finally:
            executor.record_sink = None
        with telemetry.span(
            "plan.compile.program", kind="wave", items=len(exec_items)
        ):
            t0 = perf_counter()
            program = build_wave_program(
                self, exec_items, flush_results, recorded,
                self.driver.last_order,
            )
            dt = perf_counter() - t0
        COMPILE_SECONDS.add(dt)
        self.stats.compile_seconds += dt
        if program is None:
            UNCOMPILABLE_SHAPES.add()
            self.programs.put(key, UNCOMPILABLE)
        else:
            COMPILATIONS.add()
            self.stats.compilations += 1
            self.programs.put(key, program)
        return flush_results

    def _interpret_exec(self, exec_items: List[_Item]) -> List[OpResult]:
        driver = self.driver
        for it in exec_items:
            driver.submit(
                it.req.op, it.req.dest, it.req.sources, it.req.n_bits,
                it.req.overlap_chunks,
            )
        return driver.flush(batched=True)

    def execute_to_host(
        self,
        op,
        scratch_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ):
        """Compiled-path :meth:`PinatuboExecutor.bitwise_to_host`.

        A to-host call writes no memory and its command stream has no
        data-dependent widths, so its program freezes on *first* sight
        and replays from the second on.  Returns ``(bits, OpResult)``
        exactly like the executor call.
        """
        # scratch intermediates written by the serial interpreted path
        # are wave-internal: keep every write inside on eager
        # invalidation (program replays write nothing, so the guard is
        # inert on the compiled fast path)
        self._wave_depth += 1
        try:
            return self._execute_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        finally:
            self._wave_depth -= 1

    def _execute_to_host(
        self,
        op,
        scratch_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ):
        executor = self.executor
        if not self.compile_enabled:
            return executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        op = PimOp.parse(op)
        n_chunks = self.geometry.rows_for_bits(n_bits)
        # shape keys are geometry-pure, so memo them by raw operand
        # identity: scratch rotates through a finite pool and the same
        # frame tuples recur indefinitely
        raw = (
            op,
            n_bits,
            executor._current_mode,
            tuple(scratch_frames),
            tuple(tuple(s) for s in source_frame_lists),
        )
        key = self._to_host_keys.get(raw)
        if key is None and raw not in self._to_host_keys:
            key = to_host_shape_key(
                executor.mapper, op, scratch_frames, source_frame_lists,
                n_bits, n_chunks, executor._current_mode,
            )
            if len(self._to_host_keys) >= _MAX_BINDINGS:
                self._to_host_keys.clear()
            self._to_host_keys[raw] = key
        if key is None:
            return executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        entry = self.programs.get(key)
        if type(entry) is ToHostProgram:
            PROGRAM_HITS.add()
            self.stats.program_hits += 1
            return entry.replay(
                executor, scratch_frames, source_frame_lists, n_bits
            )
        PROGRAM_MISSES.add()
        self.stats.program_misses += 1
        if entry is UNCOMPILABLE:
            return executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        executor.record_sink = recorded = []
        try:
            bits, result = executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        finally:
            executor.record_sink = None
        with telemetry.span("plan.compile.program", kind="to_host", items=1):
            t0 = perf_counter()
            program = build_to_host_program(recorded, op, result, n_chunks)
            dt = perf_counter() - t0
        COMPILE_SECONDS.add(dt)
        self.stats.compile_seconds += dt
        if program is None:
            UNCOMPILABLE_SHAPES.add()
            self.programs.put(key, UNCOMPILABLE)
        else:
            COMPILATIONS.add()
            self.stats.compilations += 1
            self.programs.put(key, program)
        return bits, result

    def execute_popcount(
        self,
        op,
        scratch_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ):
        """Compiled-path popcount reduction of a to-host op.

        Same command stream, pricing and freeze-on-first-sight lifecycle
        as :meth:`execute_to_host`, but the host side reduces straight
        to a set-bit count (the arithmetic subsystem's aggregation
        primitive).  Returns ``(count, OpResult)``.
        """
        self._wave_depth += 1
        try:
            return self._execute_popcount(
                op, scratch_frames, source_frame_lists, n_bits
            )
        finally:
            self._wave_depth -= 1

    def _execute_popcount(
        self,
        op,
        scratch_frames: Sequence[int],
        source_frame_lists: Sequence[Sequence[int]],
        n_bits: int,
    ):
        executor = self.executor
        if not self.compile_enabled:
            bits, result = executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
            return int(bits.sum()), result
        op = PimOp.parse(op)
        n_chunks = self.geometry.rows_for_bits(n_bits)
        # raw keys are tagged so popcount bindings never collide with
        # plain to-host bindings over the same operand tuples
        raw = (
            "pc",
            op,
            n_bits,
            executor._current_mode,
            tuple(scratch_frames),
            tuple(tuple(s) for s in source_frame_lists),
        )
        key = self._to_host_keys.get(raw)
        if key is None and raw not in self._to_host_keys:
            key = to_host_shape_key(
                executor.mapper, op, scratch_frames, source_frame_lists,
                n_bits, n_chunks, executor._current_mode,
            )
            if key is not None:
                key = ("popcount",) + key
            if len(self._to_host_keys) >= _MAX_BINDINGS:
                self._to_host_keys.clear()
            self._to_host_keys[raw] = key
        if key is None:
            bits, result = executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
            return int(bits.sum()), result
        entry = self.programs.get(key)
        if type(entry) is PopcountProgram:
            PROGRAM_HITS.add()
            self.stats.program_hits += 1
            return entry.replay(
                executor, scratch_frames, source_frame_lists, n_bits
            )
        PROGRAM_MISSES.add()
        self.stats.program_misses += 1
        if entry is UNCOMPILABLE:
            bits, result = executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
            return int(bits.sum()), result
        executor.record_sink = recorded = []
        try:
            bits, result = executor.bitwise_to_host(
                op, scratch_frames, source_frame_lists, n_bits
            )
        finally:
            executor.record_sink = None
        with telemetry.span("plan.compile.program", kind="popcount", items=1):
            t0 = perf_counter()
            program = build_popcount_program(recorded, op, result, n_chunks)
            dt = perf_counter() - t0
        COMPILE_SECONDS.add(dt)
        self.stats.compile_seconds += dt
        if program is None:
            UNCOMPILABLE_SHAPES.add()
            self.programs.put(key, UNCOMPILABLE)
        else:
            COMPILATIONS.add()
            self.stats.compilations += 1
            self.programs.put(key, program)
        return int(bits.sum()), result

    def _serve(
        self,
        serve_items: List[_Item],
        primary_rows: Dict[int, np.ndarray],
        results: list,
    ) -> None:
        """Materialise every serve item (submission order) in one priced
        command batch: a fenced row-buffer read per chunk."""
        with telemetry.span(
            "plan.cache.serve", served=len(serve_items)
        ):
            if self.compile_enabled:
                total, per_item = self._serve_compiled(serve_items, primary_rows)
            else:
                batch = CommandBatch()
                geometry = self.geometry
                channel_of = self.executor.mapper.channel_of
                write_frame = self.memory.write_frame
                for it in serve_items:
                    rows = (
                        it.rows
                        if it.rows is not None
                        else primary_rows[id(it.primary)]
                    )
                    batch.mark()
                    _serve_commands(
                        batch, geometry, channel_of, it.dest_frames, it.req.n_bits
                    )
                    for c, frame in enumerate(it.dest_frames):
                        write_frame(frame, rows[c])
                total, per_item = self.executor.controller.execute_batch(
                    batch, split_ops=True
                )
            # accumulate the wave in place (bit-identical to the
            # per-item merged() chain -- see OpAccounting.merge_from)
            driver_acct = None
            for it, stats in zip(serve_items, per_item):
                acct = OpAccounting()
                acct.absorb(stats)
                acct.count_bits(it.req.n_bits)
                results[it.index] = OpResult(
                    op=it.req.op, accounting=acct, steps=0, localities={}
                )
                if driver_acct is None:
                    driver_acct = self.driver.stats.accounting.merged(acct)
                else:
                    driver_acct.merge_from(acct)
            if driver_acct is not None:
                self.driver.stats.accounting = driver_acct
            self.stats.served_latency_s += total.latency
            self.stats.served_energy_j += total.energy

    def _serve_compiled(
        self, serve_items: List[_Item], primary_rows: Dict[int, np.ndarray]
    ):
        """Template-driven serve path: command columns come from cached
        :class:`~repro.plan.compile.ServeTemplate` objects keyed by
        ``(n_bits, per-chunk channels)``, destination rows land in one
        batched :meth:`MainMemory.write_frames` pass.  The templates are
        column-for-column what :func:`_serve_commands` emits, so pricing,
        write counts, and listener order match the interpreted serve
        exactly."""
        mapper = self.executor.mapper
        templates = []
        frames_all: List[int] = []
        rows_parts = []
        get_tmpl = self._serve_templates.get
        channels_bytes = self._channels_bytes
        for it in serve_items:
            rows = (
                it.rows if it.rows is not None else primary_rows[id(it.primary)]
            )
            tkey = (it.req.n_bits, channels_bytes(it.dest_frames))
            tmpl = get_tmpl(tkey)
            if tmpl is None:
                tmpl = build_serve_template(
                    self.geometry, it.req.n_bits,
                    mapper.channels_of(it.dest_frames),
                )
                self._serve_templates[tkey] = tmpl
            templates.append(tmpl)
            frames_all.extend(it.dest_frames)
            rows_parts.append(rows[: it.n_chunks])
        self.memory.write_frames(
            frames_all,
            rows_parts[0] if len(rows_parts) == 1 else np.concatenate(rows_parts),
        )
        return self.executor.controller.execute_batch(
            self._frozen_for(templates), split_ops=True
        )

    def _frozen_for(self, templates: list):
        """The interned frozen batch of a serve-wave composition.

        A stable batch object per composition lets the controller's
        price memo absorb repeats of the same serve wave.
        """
        if len(templates) == 1:
            return templates[0].frozen
        ckey = tuple(templates)
        frozen = self._serve_batches.get(ckey)
        if frozen is None:
            if len(self._serve_batches) >= 8192:
                self._serve_batches.clear()
            frozen = concat_serve_templates(templates)
            self._serve_batches[ckey] = frozen
        return frozen
