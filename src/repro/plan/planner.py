"""The query-plan compiler: canonical DAGs, CSE, and cached serving.

:class:`QueryPlanner` sits between ``PimRuntime.pim_op/pim_op_many``
and the batched driver.  For every request it builds a **canonical
expression key**:

- a *leaf* is ``L<frame>.<version>`` -- the identity of a row frame at
  its current write version (versions are bumped by the main memory's
  write listener, so any write to a row changes every key that reads
  it);
- a handle whose content was produced by an earlier planned request
  resolves to that request's *expression key* instead of its raw
  frames (the binding survives as long as the destination rows are
  unwritten), which is what lets the AND over two cached range-ORs
  match across queries even though each query materialised its
  predicates into different scratch rows;
- operand lists are sorted (and, for the idempotent OR/AND, dedup'd)
  so commutative expressions canonicalise to one key; XOR keeps its
  multiset.

Requests stream through a *wave*: duplicates of a request already in
the wave (``plan.cse_hits``) and requests whose key is in the
:class:`~repro.plan.cache.SubResultCache` (``plan.cache.hits``) become
*serve* items; everything else executes through one batched driver
flush.  Serve items are materialised after the flush, in submission
order, and priced honestly as a **row-buffer read** per chunk (ACT +
serial PIM_SENSE steps + PRE) through the real controller -- the cached
result is re-sensed from the array and forwarded to the destination
row, so a hit has nonzero simulated latency/energy but skips the
multi-row activation and, critically, the NVM write-back of a full
execution.  Serve costs merge into ``driver.stats.accounting`` so
runtime/telemetry totals reconcile.

Correctness invariants:

- versions only increase, and every key embeds the versions of its
  transitive leaf frames, so a cache entry can never be returned for
  changed operands (eager invalidation via the write listener also
  reclaims the entry's bytes immediately);
- a wave is flushed before admitting an exec-bound request that reads
  or writes any frame a pending serve item will write, or writes a
  frame a pending exec item writes -- the only orderings where
  serve-after-flush could be observed out of submission order;
- requests whose destination frames appear among their own leaf
  frames (accumulation in place) execute normally but are never
  inserted, since their stored key would reference a pre-write version
  that no later lookup can reproduce.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import telemetry
from repro.core.executor import OpResult
from repro.core.ops import PimOp
from repro.core.stats import OpAccounting
from repro.memsim.controller import CommandBatch, CommandKind
from repro.plan.cache import SubResultCache
from repro.runtime.driver import PimDriver, PimRequest

__all__ = ["PlanStats", "QueryPlanner", "forward_rows"]

#: persistent expression bindings kept per planner (vid -> producing
#: expression); a plain LRU bound -- bindings are an optimisation hint,
#: dropping one only costs a missed CSE opportunity
_MAX_BINDINGS = 8192

_CSE_HITS = telemetry.counter("plan.cse_hits")
_PLANNED = telemetry.counter("plan.requests")


def _serve_commands(batch, geometry, channel_of, dest_frames, n_bits):
    """Emit the row-buffer-read command shape of one served result.

    Per chunk: re-open the row holding the cached sub-result (ACT),
    resolve its sense steps through the SA mux (PIM_SENSE), close
    (PRE).  No PIM_WRITEBACK/WR: the forwarded buffer content lands in
    the destination row through the write-driver bypass without a full
    array program, which is exactly why a hit is cheaper than an
    execution on write-asymmetric NVM.
    """
    row_bits = geometry.row_bits
    for c, frame in enumerate(dest_frames):
        chunk_bits = min(n_bits - c * row_bits, row_bits)
        ch = channel_of(frame)
        steps = geometry.sense_steps_for_bits(chunk_bits)
        batch.add(CommandKind.ACT, channel=ch, n_bits=chunk_bits)
        batch.add(
            CommandKind.PIM_SENSE, channel=ch, n_bits=chunk_bits, n_steps=steps
        )
        batch.add(CommandKind.PRE, channel=ch)
        batch.fence()


def forward_rows(
    driver: PimDriver,
    dest_frames: Sequence[int],
    rows: np.ndarray,
    n_bits: int,
    op: PimOp = PimOp.OR,
) -> OpResult:
    """Materialise pre-computed packed rows into a destination vector,
    priced as a row-buffer read and merged into the driver's totals.

    The standalone entry point for result forwarding outside a planner
    wave -- the serving layer's cross-tenant replay path uses it to give
    a folded duplicate its own destination buffer at hit price.
    """
    executor = driver.executor
    batch = CommandBatch()
    _serve_commands(
        batch,
        executor.geometry,
        executor.mapper.channel_of,
        dest_frames,
        n_bits,
    )
    for c, frame in enumerate(dest_frames):
        executor.memory.write_frame(frame, rows[c])
    acct = OpAccounting()
    acct.absorb(executor.controller.execute_batch(batch))
    acct.count_bits(n_bits)
    driver.stats.accounting = driver.stats.accounting.merged(acct)
    return OpResult(op=op, accounting=acct, steps=0, localities={})


class PlanStats:
    """Tallies of one planner instance (StatsLike)."""

    __slots__ = (
        "requests",
        "cse_hits",
        "cache_hits",
        "cache_misses",
        "waves",
        "hazard_flushes",
        "served_latency_s",
        "served_energy_j",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.cse_hits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.waves = 0
        self.hazard_flushes = 0
        self.served_latency_s = 0.0
        self.served_energy_j = 0.0

    @property
    def served(self) -> int:
        return self.cse_hits + self.cache_hits

    def to_dict(self) -> dict:
        """JSON-ready dict of every tally."""
        return {
            "requests": self.requests,
            "cse_hits": self.cse_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "served": self.served,
            "waves": self.waves,
            "hazard_flushes": self.hazard_flushes,
            "served_latency_s": self.served_latency_s,
            "served_energy_j": self.served_energy_j,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"PlanStats: {self.requests} requests, "
            f"{self.cse_hits} CSE hits + {self.cache_hits} cache hits "
            f"served ({self.cache_misses} misses), {self.waves} waves "
            f"({self.hazard_flushes} hazard flushes)"
        )


class _Item:
    """One planned request inside the current wave."""

    __slots__ = (
        "index",
        "req",
        "key",
        "leaves",
        "dest_frames",
        "n_chunks",
        "kind",  # "exec" | "serve"
        "rows",  # serve: cached rows (None when copied from a primary)
        "primary",  # serve: the exec _Item whose result this duplicates
        "cacheable",
        "has_dups",
    )

    def __init__(self, index, req, key, leaves, dest_frames, n_chunks, kind):
        self.index = index
        self.req = req
        self.key = key
        self.leaves = leaves
        self.dest_frames = dest_frames
        self.n_chunks = n_chunks
        self.kind = kind
        self.rows = None
        self.primary = None
        self.cacheable = False
        self.has_dups = False


class _Wave:
    """Pending items plus the frame sets the hazard checks consult."""

    __slots__ = ("items", "keys", "exec_reads", "exec_writes", "serve_writes",
                 "bind")

    def __init__(self) -> None:
        self.items: List[_Item] = []
        #: canonical key -> exec item (the wave-local CSE table)
        self.keys: Dict[str, _Item] = {}
        self.exec_reads: Set[int] = set()
        self.exec_writes: Set[int] = set()
        self.serve_writes: Set[int] = set()
        #: vid -> (frames, key, leaves) for every pending destination
        self.bind: Dict[int, Tuple[tuple, str, FrozenSet[int]]] = {}


class QueryPlanner:
    """Compiles request streams into minimally-executed driver waves."""

    def __init__(
        self,
        driver: PimDriver,
        cache_bytes: int = 64 << 20,
        cache_shards: int = 8,
    ):
        self.driver = driver
        self.executor = driver.executor
        self.geometry = self.executor.geometry
        self.memory = self.executor.memory
        self.cache = SubResultCache(cache_bytes, cache_shards)
        self.stats = PlanStats()
        #: authoritative write versions (frames absent were never
        #: written since the planner attached; they count as version 0)
        self._versions: Dict[int, int] = {}
        #: vid -> (frames, version snapshot, expression key, leaf frames)
        self._bound: "OrderedDict[int, tuple]" = OrderedDict()
        self.memory.add_write_listener(self._on_frame_write)

    # -- invalidation hooks --------------------------------------------------

    def _on_frame_write(self, frame: int) -> None:
        """Every write to main memory lands here (driver execution, host
        writes, fallbacks, the planner's own serves): bump the frame's
        version and drop cached sub-results that read it."""
        self._versions[frame] = self._versions.get(frame, 0) + 1
        self.cache.invalidate_frame(frame)

    def on_free(self, handle) -> None:
        """Allocator free hook: a freed vector's rows may be recycled, so
        its binding and any sub-results reading its frames go now."""
        self._bound.pop(handle.vid, None)
        self.cache.invalidate_frames(handle.frames)

    # -- canonicalisation ----------------------------------------------------

    def _leaf_key(
        self, handle, n_chunks: int, wave: _Wave
    ) -> Tuple[str, FrozenSet[int]]:
        """Canonical key of one operand handle (expression or raw leaf)."""
        frames = handle.frames[:n_chunks]
        pending = wave.bind.get(handle.vid)
        if pending is not None:
            bframes, key, leaves = pending
            if len(bframes) >= n_chunks and bframes[:n_chunks] == frames:
                return key, leaves
        bound = self._bound.get(handle.vid)
        if bound is not None:
            bframes, snapshot, key, leaves = bound
            if (
                len(bframes) >= n_chunks
                and bframes[:n_chunks] == frames
                and all(
                    self._versions.get(f, 0) == v
                    for f, v in zip(frames, snapshot)
                )
            ):
                self._bound.move_to_end(handle.vid)
                return key, leaves
        versions = self._versions
        key = ",".join(f"L{f}.{versions.get(f, 0)}" for f in frames)
        return key, frozenset(frames)

    def _request_key(
        self, req: PimRequest, wave: _Wave
    ) -> Tuple[str, FrozenSet[int], bool]:
        """(canonical key, transitive leaf frames, aliased?) of a request.

        ``aliased`` marks in-place accumulation: the destination's own
        frames are among the expression's leaves, so the result is never
        inserted (its key embeds pre-write versions no later lookup can
        reproduce) and never served.
        """
        n_chunks = req_chunks = self.geometry.rows_for_bits(req.n_bits)
        children = []
        leaves: Set[int] = set()
        for src in req.sources:
            ck, cl = self._leaf_key(src, n_chunks, wave)
            children.append(ck)
            leaves.update(cl)
        op = req.op
        if op is PimOp.OR or op is PimOp.AND:
            # commutative and idempotent: sorted set
            children = sorted(set(children))
        elif op is PimOp.XOR:
            # commutative only: sorted multiset
            children.sort()
        key = f"{op.value}:{req.n_bits}:({'|'.join(children)})"
        dest_frames = req.dest.frames[:req_chunks]
        aliased = any(f in leaves for f in dest_frames)
        return key, frozenset(leaves), aliased

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        op,
        dest,
        sources,
        n_bits: Optional[int] = None,
        overlap_chunks: bool = False,
    ) -> OpResult:
        """Plan + run one operation (see :meth:`execute_many`)."""
        return self.execute_many([(op, dest, sources, n_bits, overlap_chunks)])[0]

    def execute_many(self, requests) -> List[OpResult]:
        """Plan and run a request stream; results in submission order.

        Accepts the driver's ``(op, dest, sources[, n_bits[,
        overlap_chunks]])`` tuples.  Functional results are identical to
        :meth:`PimDriver.execute_many`; only the cost of served
        duplicates differs (row-buffer read instead of re-execution).
        """
        reqs: List[PimRequest] = []
        for tup in requests:
            op, dest, sources = tup[0], tup[1], tup[2]
            n_bits = tup[3] if len(tup) > 3 else None
            overlap = bool(tup[4]) if len(tup) > 4 else False
            op = PimOp.parse(op)
            sources = tuple(sources)
            if n_bits is None:
                n_bits = min([dest.n_bits] + [s.n_bits for s in sources])
            reqs.append(PimRequest(op, dest, sources, n_bits, overlap))
        if not reqs:
            return []
        with telemetry.span("plan.execute_many", requests=len(reqs)):
            results: List[Optional[OpResult]] = [None] * len(reqs)
            wave = _Wave()
            for i, req in enumerate(reqs):
                self._plan_one(i, req, wave, results)
            self._flush_wave(wave, results)
        return results

    # -- planning ------------------------------------------------------------

    def _plan_one(
        self, index: int, req: PimRequest, wave: _Wave, results: list
    ) -> None:
        self.stats.requests += 1
        _PLANNED.add()
        n_chunks = self.geometry.rows_for_bits(req.n_bits)
        dest_frames = req.dest.frames[:n_chunks]
        while True:
            key, leaves, aliased = self._request_key(req, wave)

            if not aliased:
                primary = wave.keys.get(key)
                if primary is not None:
                    # same expression already pending in this wave:
                    # serve a copy of its result after the flush
                    item = _Item(index, req, key, leaves, dest_frames,
                                 n_chunks, "serve")
                    item.primary = primary
                    primary.has_dups = True
                    self.stats.cse_hits += 1
                    _CSE_HITS.add()
                    self._admit_serve(item, wave)
                    return
                entry = self.cache.get(key)
                if entry is not None:
                    item = _Item(index, req, key, leaves, dest_frames,
                                 n_chunks, "serve")
                    item.rows = entry.rows
                    self.stats.cache_hits += 1
                    self._admit_serve(item, wave)
                    return
                self.stats.cache_misses += 1

            # exec-bound.  Flush first if this request would observe a
            # pending serve's write out of order (RAW/WAW against a
            # serve item) or double-write a pending exec destination
            # (WAW whose post-flush snapshot would be ambiguous); then
            # re-plan against the (empty, hazard-free) wave -- the
            # flush advanced the bindings and may have inserted this
            # very expression into the cache.
            source_frames: Set[int] = set()
            for src in req.sources:
                source_frames.update(src.frames[:n_chunks])
            dest_set = set(dest_frames)
            if (
                (source_frames & wave.serve_writes)
                or (dest_set & wave.serve_writes)
                or (dest_set & wave.exec_writes)
            ):
                self.stats.hazard_flushes += 1
                self._flush_wave(wave, results)
                continue

            item = _Item(index, req, key, leaves, dest_frames, n_chunks,
                         "exec")
            item.cacheable = not aliased
            wave.items.append(item)
            if item.cacheable:
                wave.keys[key] = item
            wave.exec_reads |= source_frames
            wave.exec_writes |= dest_set
            wave.bind[req.dest.vid] = (dest_frames, key, leaves)
            return

    def _admit_serve(self, item: _Item, wave: _Wave) -> None:
        wave.items.append(item)
        wave.serve_writes |= set(item.dest_frames)
        wave.bind[item.req.dest.vid] = (item.dest_frames, item.key, item.leaves)

    # -- wave execution ------------------------------------------------------

    def _flush_wave(self, wave: _Wave, results: list) -> None:
        if not wave.items:
            return
        self.stats.waves += 1
        exec_items = [it for it in wave.items if it.kind == "exec"]
        serve_items = [it for it in wave.items if it.kind == "serve"]

        driver = self.driver
        for it in exec_items:
            driver.submit(
                it.req.op, it.req.dest, it.req.sources, it.req.n_bits,
                it.req.overlap_chunks,
            )
        if exec_items:
            for it, result in zip(exec_items, driver.flush(batched=True)):
                results[it.index] = result

        # Snapshot result rows straight after the flush -- before any
        # serve write can touch them -- for cache inserts and for the
        # wave's CSE duplicates.
        frame_view = self.memory.frame_view
        primary_rows: Dict[int, np.ndarray] = {}
        for it in exec_items:
            if not (it.cacheable or it.has_dups):
                continue
            rows = np.stack([frame_view(f) for f in it.dest_frames])
            if it.has_dups:
                primary_rows[id(it)] = rows
            if it.cacheable:
                self.cache.put(it.key, rows, it.req.n_bits, it.leaves)

        if serve_items:
            self._serve(serve_items, primary_rows, results)

        # Persistent bindings: every destination now holds its
        # expression's value; snapshot the (final) versions so any later
        # write is detected.  Submission order makes the last writer of
        # a vid win.
        versions = self._versions
        for it in wave.items:
            self._bound[it.req.dest.vid] = (
                it.dest_frames,
                tuple(versions.get(f, 0) for f in it.dest_frames),
                it.key,
                it.leaves,
            )
            self._bound.move_to_end(it.req.dest.vid)
        while len(self._bound) > _MAX_BINDINGS:
            self._bound.popitem(last=False)

        wave.items.clear()
        wave.keys.clear()
        wave.exec_reads.clear()
        wave.exec_writes.clear()
        wave.serve_writes.clear()
        wave.bind.clear()

    def _serve(
        self,
        serve_items: List[_Item],
        primary_rows: Dict[int, np.ndarray],
        results: list,
    ) -> None:
        """Materialise every serve item (submission order) in one priced
        command batch: a fenced row-buffer read per chunk."""
        with telemetry.span(
            "plan.cache.serve", served=len(serve_items)
        ):
            batch = CommandBatch()
            geometry = self.geometry
            channel_of = self.executor.mapper.channel_of
            write_frame = self.memory.write_frame
            for it in serve_items:
                rows = (
                    it.rows
                    if it.rows is not None
                    else primary_rows[id(it.primary)]
                )
                batch.mark()
                _serve_commands(
                    batch, geometry, channel_of, it.dest_frames, it.req.n_bits
                )
                for c, frame in enumerate(it.dest_frames):
                    write_frame(frame, rows[c])
            total, per_item = self.executor.controller.execute_batch(
                batch, split_ops=True
            )
            driver_acct = self.driver.stats.accounting
            for it, stats in zip(serve_items, per_item):
                acct = OpAccounting()
                acct.absorb(stats)
                acct.count_bits(it.req.n_bits)
                results[it.index] = OpResult(
                    op=it.req.op, accounting=acct, steps=0, localities={}
                )
                driver_acct = driver_acct.merged(acct)
            self.driver.stats.accounting = driver_acct
            self.stats.served_latency_s += total.latency
            self.stats.served_energy_j += total.energy
