"""Query planning, sub-result reuse, and kernel compilation.

The layer between the applications/serving tier and the batched driver
path: :class:`QueryPlanner` compiles each request stream into a
canonical operand DAG, eliminates common sub-expressions within a
coalesced wave and across the whole request stream, and serves repeated
sub-results out of a write-invalidated :class:`SubResultCache` at the
price of a row-buffer read instead of a full in-memory execution.

Recurring wave *shapes* additionally lower into flat numpy programs
(:mod:`repro.plan.compile`): preallocated command columns priced through
the real controller plus a leveled, grouped instruction list executed as
a handful of vectorized ufunc passes -- byte-identical simulated cost,
an order of magnitude less host wall-clock.  Programs live in a
:class:`ProgramCache` keyed by canonical DAG shape.

Enable it per runtime with ``PimRuntime(..., plan=True)``; everything
issued through ``pim_op`` / ``pim_op_many`` then plans automatically.
``QueryPlanner(..., compile=False)`` is the escape hatch back to the
fully interpreted wave execution.
"""

from repro.plan.cache import CacheEntry, ProgramCache, SubResultCache
from repro.plan.compile import ToHostProgram, WaveProgram
from repro.plan.planner import PlanStats, QueryPlanner, forward_rows
from repro.plan.repair import RepairEngine

__all__ = [
    "CacheEntry",
    "PlanStats",
    "ProgramCache",
    "QueryPlanner",
    "RepairEngine",
    "SubResultCache",
    "ToHostProgram",
    "WaveProgram",
    "forward_rows",
]
