"""Query planning and sub-result reuse for bulk bitwise streams.

The layer between the applications/serving tier and the batched driver
path: :class:`QueryPlanner` compiles each request stream into a
canonical operand DAG, eliminates common sub-expressions within a
coalesced wave and across the whole request stream, and serves repeated
sub-results out of a write-invalidated :class:`SubResultCache` at the
price of a row-buffer read instead of a full in-memory execution.

Enable it per runtime with ``PimRuntime(..., plan=True)``; everything
issued through ``pim_op`` / ``pim_op_many`` then plans automatically.
"""

from repro.plan.cache import CacheEntry, SubResultCache
from repro.plan.planner import PlanStats, QueryPlanner, forward_rows

__all__ = [
    "CacheEntry",
    "PlanStats",
    "QueryPlanner",
    "SubResultCache",
    "forward_rows",
]
