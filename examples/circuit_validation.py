#!/usr/bin/env python
"""Circuit-level walkthrough: the two modifications that make Pinatubo.

1. The modified current sense amplifier (paper Fig. 6): transient
   simulation of OR / AND / XOR sensing over the technology corners.
2. The latched local-wordline driver (paper Fig. 7): RESET + multi-row
   activation sequence, showing earlier rows holding while later rows
   latch.
3. The sensing-margin analysis behind the 128-row (PCM) and 2-row
   (STT-MRAM) limits.

Run:  python examples/circuit_validation.py
"""

from repro.circuits.csa_sim import CSATransientSim
from repro.circuits.lwl_sim import LWLDriverSim
from repro.circuits.validate import validate_csa_corners
from repro.nvm.margin import MarginAnalysis
from repro.nvm.technology import get_technology, list_technologies


def csa_demo() -> None:
    pcm = get_technology("pcm")
    sim = CSATransientSim(pcm)
    print("[CSA] Fig. 6 sequence (mode, a, b -> sensed bit):")
    for entry in sim.figure6_sequence():
        print(f"  {entry['mode'].value:>4s}({entry['a']}, {entry['b']}) "
              f"-> {entry['bit']}")
    trace = sim.read(pcm.r_low)
    t_resolve = trace.v_out.crossing_time(sim.config.vdd / 2)
    print(f"  read('1') output crosses VDD/2 at {t_resolve * 1e9:.2f} ns "
          f"(3-phase sensing, {sim.config.t_total * 1e9:.0f} ns budget)")

    print("\n[CSA] corner validation over all technologies:")
    for name in list_technologies():
        report = validate_csa_corners(get_technology(name), or_rows=128)
        status = "PASS" if report.all_pass else "FAIL"
        print(f"  {name:12s}: {report.n_pass}/{report.n_cases} corner cases {status}")


def lwl_demo() -> None:
    from repro.circuits.render import render_traces, render_waveform

    sim = LWLDriverSim(n_rows=16)
    rows = [1, 4, 9, 12]
    trace = sim.run_sequence(rows)
    print(f"\n[LWL] multi-row activation of rows {rows}:")
    print(f"  latched at end: {list(trace.latched_rows)}")
    wl = trace.wordline[rows[0]]
    t_half = wl.crossing_time(sim.config.vdd / 2)
    print(f"  first wordline rises through VDD/2 at {t_half * 1e9:.2f} ns "
          f"and holds at {wl.final:.2f} V after its pulse ends")
    print("\n  Fig. 7 waveforms (digital view, '^' = above VDD/2):")
    named = {"RESET": trace.reset}
    named.update({f"DEC_{r}": trace.decode[r] for r in rows})
    named.update({f"WL_{r}": trace.wordline[r] for r in rows})
    print("  " + render_traces(named, sim.config.vdd / 2).replace("\n", "\n  "))
    print("\n  first wordline, analog view:")
    print("  " + render_waveform(wl, height=6).replace("\n", "\n  "))


def margin_demo() -> None:
    print("\n[margins] multi-row OR limits per technology:")
    for name in list_technologies():
        tech = get_technology(name)
        analysis = MarginAnalysis(tech)
        print(f"  {name:12s}: ON/OFF={tech.on_off_ratio:7.1f}  "
              f"electrical limit {analysis.electrical_or_limit():4d} rows, "
              f"supported {analysis.max_or_rows():3d} rows "
              f"(2-row AND {'ok' if analysis.and_feasible(2) else 'infeasible'})")


if __name__ == "__main__":
    csa_demo()
    lwl_demo()
    margin_demo()
