#!/usr/bin/env python
"""Image segmentation with in-memory bit-plane operations.

Decomposes a synthetic camera frame into bit planes stored in PIM
memory, computes threshold and band masks entirely with bulk bitwise
operations (the bit-serial comparator), and verifies against numpy.

Run:  python examples/image_threshold.py
"""

import numpy as np

from repro.apps.imaging import (
    band_mask_pim,
    synthetic_image,
    threshold_mask_pim,
    threshold_trace,
    to_bit_planes,
)
from repro.baselines.simd import SimdCpu
from repro.core.model import PinatuboModel
from repro.runtime import PimRuntime


def main() -> None:
    image = synthetic_image(96, 96, seed=42)
    rt = PimRuntime.pcm()

    # load the 8 bit planes into PIM memory
    handles = []
    for plane in to_bit_planes(image):
        h = rt.pim_malloc(plane.size, "frame")
        rt.pim_write(h, plane)
        handles.append(h)
    print(f"frame {image.shape}: 8 bit planes of {image.size} pixels in PIM")

    # bright-object mask: pixel > 230
    mask_h = threshold_mask_pim(rt, handles, 230)
    mask = rt.pim_read(mask_h).reshape(image.shape)
    assert np.array_equal(mask, (image > 230).astype(np.uint8))
    print(f"threshold >230: {int(mask.sum())} bright pixels "
          f"(matches numpy: True)")

    # mid-band mask: 96 < pixel <= 160
    band_h = band_mask_pim(rt, handles, 96, 160)
    band = rt.pim_read(band_h).reshape(image.shape)
    expected = ((image > 96) & ~(image > 160)).astype(np.uint8)
    assert np.array_equal(band, expected)
    print(f"band (96,160]: {int(band.sum())} pixels (matches numpy: True)")

    print(f"in-memory ops issued: {rt.driver.stats.instructions}, "
          f"DDR data bytes during compute: 0")

    # evaluation: a video-rate pipeline (1080p, one threshold per frame)
    n_pixels = 1920 * 1080
    trace = threshold_trace(n_pixels, 128)
    cpu_cost = trace.price(SimdCpu.with_pcm())
    pim_cost = trace.price(PinatuboModel())
    print(f"\n1080p threshold: CPU {cpu_cost.bitwise_latency * 1e6:.1f} us "
          f"vs Pinatubo {pim_cost.bitwise_latency * 1e6:.1f} us per frame "
          f"({cpu_cost.bitwise_latency / pim_cost.bitwise_latency:.1f}x)")


if __name__ == "__main__":
    main()
